"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments that lack
the ``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Crypto-agile secure archival library reproducing "
        "'Secure Archival is Hard... Really Hard' (HotStorage '24)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
