"""Long-term verification of timestamp chains against a break timeline.

The verification rule is the paper's intuition made precise: "signing an old
signature with a new signature preserves the integrity of both as long as
the old signature has not been broken at the time the new signature was
computed."  Concretely, link i's scheme must still have been unbroken at the
epoch the *next* link was created (the last link's scheme must be unbroken
*now*): a renewal that lands after its predecessor's break epoch arrives too
late -- in the gap, a forger could have rewritten history and then obtained
an honest-looking renewal over the forgery.

:class:`ChainAuditor` returns a structured verdict rather than a boolean so
benchmarks and tests can distinguish the failure modes (bad signature,
broken-now head, late renewal, sequence break).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.registry import BreakTimeline
from repro.crypto.sha256 import sha256
from repro.integrity.timestamp import ChainSigner, TimestampChain, TimestampLink


@dataclass
class ChainVerdict:
    valid: bool
    checked_links: int
    failures: list[str] = field(default_factory=list)

    def explain(self) -> str:
        if self.valid:
            return f"chain valid ({self.checked_links} links)"
        return "; ".join(self.failures)


class ChainAuditor:
    """Verifies chains given the signers' verification callbacks."""

    def __init__(self, verifiers: dict[bytes, ChainSigner]):
        """*verifiers* maps signer identity bytes to the signer able to
        verify that identity's signatures (public operations only)."""
        self.verifiers = dict(verifiers)

    def register(self, signer: ChainSigner) -> None:
        self.verifiers[signer.public_identity()] = signer

    def audit(
        self,
        chain: TimestampChain,
        timeline: BreakTimeline,
        now_epoch: int,
    ) -> ChainVerdict:
        failures: list[str] = []
        prev_digest = b"\x00" * 32

        for position, link in enumerate(chain.links):
            # Structural linkage.
            if link.index != position:
                failures.append(f"link {position}: index {link.index} out of sequence")
            # Chain-link digests are public ledger state (anyone can recompute
            # them from the published links); no secret material to protect.
            if link.prev_digest != prev_digest:  # noqa: ARCH004 - public chain link
                failures.append(f"link {position}: does not extend predecessor")
            prev_digest = link.digest()

            # Signature validity (a cryptographic check, always required).
            verifier = self.verifiers.get(link.signer_identity)
            if verifier is None:
                failures.append(f"link {position}: unknown signer")
            elif not verifier.verify(link.signed_message(), link.signature):
                failures.append(f"link {position}: signature invalid")

            # Temporal validity: the scheme must have survived until the
            # moment it was superseded (or until now, for the head).
            superseded_at = (
                chain.links[position + 1].epoch
                if position + 1 < len(chain.links)
                else now_epoch
            )
            break_epoch = timeline.break_epoch(link.scheme)
            if break_epoch is not None and break_epoch <= superseded_at:
                if position + 1 < len(chain.links):
                    failures.append(
                        f"link {position}: scheme {link.scheme} broke at epoch "
                        f"{break_epoch}, before renewal at epoch {superseded_at}"
                    )
                else:
                    failures.append(
                        f"link {position} (head): scheme {link.scheme} broken at "
                        f"epoch {break_epoch} <= now ({now_epoch}) with no renewal"
                    )

        return ChainVerdict(
            valid=not failures, checked_links=len(chain.links), failures=failures
        )

    def audit_renewal_cadence(
        self, chain: TimestampChain, timeline: BreakTimeline, now_epoch: int
    ) -> ChainVerdict:
        """Convenience wrapper whose name documents intent at call sites."""
        return self.audit(chain, timeline, now_epoch)


def forged_link_after_break(
    chain: TimestampChain,
    forged_document: bytes,
    forger_signer: ChainSigner,
    epoch: int,
) -> TimestampLink:
    """Construct the forgery a post-break adversary would insert.

    Used by tests/benchmarks: with the toy-RSA modulus factored, the
    adversary signs an arbitrary document as if it had been timestamped long
    ago.  A chain that renewed in time still rejects it (the forged link
    cannot extend the *renewed* head); a chain that renewed late accepts the
    rewritten history, which is exactly the auditor's late-renewal failure.
    """
    unsigned = TimestampLink(
        index=len(chain.links),
        epoch=epoch,
        scheme=forger_signer.scheme_name,
        reference=sha256(forged_document),
        reference_kind="hash",
        prev_digest=chain.head_digest,
        signature=b"",
        signer_identity=forger_signer.public_identity(),
    )
    signature = forger_signer.sign(unsigned.signed_message())
    return TimestampLink(
        index=unsigned.index,
        epoch=unsigned.epoch,
        scheme=unsigned.scheme,
        reference=unsigned.reference,
        reference_kind=unsigned.reference_kind,
        prev_digest=unsigned.prev_digest,
        signature=signature,
        signer_identity=unsigned.signer_identity,
    )
