"""Storage audits: challenge-response possession checks over Merkle roots.

Long-term integrity is not only about signatures (Section 3.3): an archive
must also notice *silently* lost or corrupted data long before a reader
does, because archival reads are rare and media rots quietly.  The audit
protocol here is the standard Merkle challenge-response:

1. the node commits to its holdings: a Merkle root over (object id, digest)
   pairs, published (e.g., onto the timestamp chain or the HasDPSS ledger);
2. an auditor issues random challenges: "prove you hold object i";
3. the node answers with the object digest plus a Merkle membership proof
   AND must be able to produce bytes matching the digest.

A node that lost or bit-flipped an object cannot answer its challenge, so
auditing k random objects catches a fraction-f corruption with probability
1 - (1-f)^k -- the detection math the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.hmac_ import constant_time_eq
from repro.crypto.sha256 import sha256, sha256_hex
from repro.errors import IntegrityError, ParameterError
from repro.integrity.merkle import MerkleProof, MerkleTree
from repro.obs import metrics as _metrics


class AuditableNode(Protocol):
    """What the auditor needs from a storage node.

    A structural protocol rather than an import of
    ``repro.storage.node.StorageNode``: the layering DAG says integrity may
    not depend on storage (both sit above secretsharing as siblings), and
    the auditor genuinely needs only this four-member surface -- anything
    that can list, hand back, and raw-read objects is auditable, including
    the test doubles and adversarial responders the suite drives.  This
    replaced the last baselined ARCH009 edge (integrity.audit ->
    storage.node); the baseline is empty now and must stay that way.
    """

    @property
    def node_id(self) -> str: ...

    def object_ids(self) -> Iterable[str]: ...

    def get(self, object_id: str) -> bytes: ...

    def raw_bytes(self, object_id: str) -> bytes: ...


def _leaf(object_id: str, digest_hex: str) -> bytes:
    return object_id.encode() + b"\x00" + bytes.fromhex(digest_hex)


@dataclass(frozen=True)
class InventoryCommitment:
    """A node's published commitment to its holdings at one epoch."""

    node_id: str
    epoch: int
    root: bytes
    object_ids: tuple[str, ...]  # public listing; contents stay private


@dataclass(frozen=True)
class AuditChallenge:
    object_id: str
    leaf_index: int


@dataclass(frozen=True)
class AuditResponse:
    object_id: str
    digest_hex: str
    proof: MerkleProof
    #: Probe over the live bytes: H(nonce || data), proving possession now
    #: rather than replay of an old digest.
    freshness_tag: bytes


@dataclass
class AuditReport:
    node_id: str
    challenges: int
    passed: int
    failures: list[str]

    @property
    def clean(self) -> bool:
        return not self.failures


class StorageAuditor:
    """Issues commitments, challenges, and verdicts over storage nodes."""

    def commit_inventory(self, node: AuditableNode, epoch: int = 0) -> InventoryCommitment:
        object_ids = tuple(node.object_ids())
        if not object_ids:
            raise ParameterError(f"node {node.node_id} holds nothing to commit")
        leaves = [
            _leaf(object_id, sha256_hex(node.get(object_id)))
            for object_id in object_ids
        ]
        tree = MerkleTree(leaves)
        return InventoryCommitment(
            node_id=node.node_id, epoch=epoch, root=tree.root, object_ids=object_ids
        )

    def challenge(
        self, commitment: InventoryCommitment, rng: DeterministicRandom, count: int
    ) -> list[AuditChallenge]:
        if count < 1:
            raise ParameterError("need at least one challenge")
        count = min(count, len(commitment.object_ids))
        indices = rng.sample(range(len(commitment.object_ids)), count)
        return [
            AuditChallenge(
                object_id=commitment.object_ids[i], leaf_index=i
            )
            for i in indices
        ]

    @staticmethod
    def respond(
        node: AuditableNode,
        commitment: InventoryCommitment,
        challenge: AuditChallenge,
        nonce: bytes,
    ) -> AuditResponse:
        """The node's side: rebuild the proof and probe the live bytes.

        Note the rebuild uses the node's *current* contents -- a node that
        lost or altered data produces a proof that no longer matches the
        published root, which is the point.
        """
        leaves = []
        for object_id in commitment.object_ids:
            data = node.raw_bytes(object_id)
            leaves.append(_leaf(object_id, sha256_hex(data)))
        tree = MerkleTree(leaves)
        data = node.raw_bytes(challenge.object_id)
        return AuditResponse(
            object_id=challenge.object_id,
            digest_hex=sha256_hex(data),
            proof=tree.proof(challenge.leaf_index),
            freshness_tag=sha256(nonce + data),
        )

    def audit(
        self,
        node: AuditableNode,
        commitment: InventoryCommitment,
        rng: DeterministicRandom,
        challenges: int = 8,
        responder=None,
    ) -> AuditReport:
        """Run a full audit round; integrity failures become report entries.

        *responder* defaults to the honest :meth:`respond` (rebuild the tree
        from live bytes -- full-state binding: ANY corruption anywhere fails
        EVERY challenge).  Passing a :class:`CachedTreeResponder` models a
        node that replays its commitment-time tree; against that strategy
        detection degrades to per-object sampling, quantified by
        :func:`detection_probability`.
        """
        responder = responder or (
            lambda challenge, nonce: StorageAuditor.respond(
                node, commitment, challenge, nonce
            )
        )
        report = AuditReport(
            node_id=node.node_id, challenges=0, passed=0, failures=[]
        )
        for challenge in self.challenge(commitment, rng, challenges):
            report.challenges += 1
            _metrics.inc("audit_challenges_total")
            nonce = rng.bytes(16)
            try:
                response = responder(challenge, nonce)
            except IntegrityError as exc:
                self._record_failure(report, challenge, type(exc).__name__, str(exc))
                continue
            # The responder is caller-supplied (possibly adversarial) code;
            # any failure to answer IS the audit verdict, never a crash --
            # but the full message must survive into the report.
            except Exception as exc:  # noqa: broad-except-ok
                self._record_failure(
                    report,
                    challenge,
                    type(exc).__name__,
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            leaf = _leaf(response.object_id, response.digest_hex)
            if not MerkleTree.verify(commitment.root, leaf, response.proof):
                self._record_failure(
                    report,
                    challenge,
                    "proof-mismatch",
                    "proof does not match committed root",
                )
                continue
            # Spot retrieval: the challenged object's live bytes must hash
            # to the committed digest -- this is what a replayed tree
            # cannot fake for a rotted object.
            data = node.raw_bytes(challenge.object_id)
            if not constant_time_eq(sha256_hex(data), response.digest_hex):
                self._record_failure(
                    report,
                    challenge,
                    "digest-mismatch",
                    "live bytes do not match committed digest",
                )
                continue
            if not constant_time_eq(sha256(nonce + data), response.freshness_tag):
                self._record_failure(
                    report, challenge, "stale-freshness", "stale freshness tag"
                )
                continue
            report.passed += 1
            _metrics.inc("audit_passes_total")
        return report

    @staticmethod
    def _record_failure(
        report: AuditReport,
        challenge: AuditChallenge,
        failure_class: str,
        detail: str,
    ) -> None:
        report.failures.append(f"{challenge.object_id}: {detail}")
        _metrics.inc("audit_failures_total", failure_class=failure_class)


class CachedTreeResponder:
    """A cost-cutting (or cheating) node: answers from the tree it built at
    commitment time instead of re-reading its media.

    Its proofs always match the committed root, so only the spot-retrieval
    check on the *challenged* object can catch rot -- the per-object
    sampling regime of :func:`detection_probability`.
    """

    def __init__(self, node: AuditableNode, commitment: InventoryCommitment):
        self.node = node
        self.commitment = commitment
        self._digests = {
            object_id: sha256_hex(node.raw_bytes(object_id))
            for object_id in commitment.object_ids
        }
        self._tree = MerkleTree(
            [_leaf(oid, self._digests[oid]) for oid in commitment.object_ids]
        )

    def __call__(self, challenge: AuditChallenge, nonce: bytes) -> AuditResponse:
        data = self.node.raw_bytes(challenge.object_id)
        return AuditResponse(
            object_id=challenge.object_id,
            digest_hex=self._digests[challenge.object_id],
            proof=self._tree.proof(challenge.leaf_index),
            freshness_tag=sha256(nonce + data),
        )


def detection_probability(corrupted_fraction: float, challenges: int) -> float:
    """P[audit catches at least one bad object] = 1 - (1-f)^k."""
    if not 0 <= corrupted_fraction <= 1:
        raise ParameterError("fraction must be in [0, 1]")
    if challenges < 0:
        raise ParameterError("challenges must be >= 0")
    return 1 - (1 - corrupted_fraction) ** challenges
