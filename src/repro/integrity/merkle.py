"""Merkle hash trees with membership proofs.

Used by the timestamp authority to batch many documents into one signed
round (the original Haber-Stornetta deployment model) and by the archival
systems to summarize object inventories cheaply.

Domain separation: leaves are hashed with a 0x00 prefix and interior nodes
with 0x01, closing the classic second-preimage-across-levels confusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.sha256 import sha256
from repro.errors import IntegrityError, ParameterError


def _leaf_hash(data: bytes) -> bytes:
    return sha256(b"\x00" + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(b"\x01" + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf."""

    leaf_index: int
    #: (sibling_hash, sibling_is_left) pairs from leaf level to root.
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A static Merkle tree over a list of byte-string leaves."""

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ParameterError("Merkle tree needs at least one leaf")
        self.leaf_count = len(leaves)
        level = [_leaf_hash(leaf) for leaf in leaves]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                # Duplicate-last padding keeps the tree full.
                level = level + [level[-1]]
            level = [
                _node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def proof(self, leaf_index: int) -> MerkleProof:
        if not 0 <= leaf_index < self.leaf_count:
            raise ParameterError(f"leaf index {leaf_index} out of range")
        path = []
        index = leaf_index
        for level in self._levels[:-1]:
            padded = level + [level[-1]] if len(level) % 2 == 1 else level
            sibling_index = index ^ 1
            sibling_is_left = sibling_index < index
            path.append((padded[sibling_index], sibling_is_left))
            index //= 2
        return MerkleProof(leaf_index=leaf_index, path=tuple(path))

    @staticmethod
    def verify(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
        node = _leaf_hash(leaf)
        for sibling, sibling_is_left in proof.path:
            if sibling_is_left:
                node = _node_hash(sibling, node)
            else:
                node = _node_hash(node, sibling)
        # Merkle roots are published commitments, not secrets: the verifier
        # already holds both values, so a timing-safe compare buys nothing.
        return node == root  # noqa: ARCH004 - public commitment comparison

    @staticmethod
    def require_member(root: bytes, leaf: bytes, proof: MerkleProof) -> None:
        if not MerkleTree.verify(root, leaf, proof):
            raise IntegrityError("Merkle membership proof failed")
