"""Long-term integrity: Merkle trees, timestamp chains, chain auditing.

Paper, Section 3.3: "long-term integrity can be achieved with a chain of
digitally signed timestamps ... signing an old signature with a new
signature preserves the integrity of both as long as the old signature has
not been broken at the time the new signature was computed."  And LINCOS's
refinement: hashes inside the chain leak; information-theoretically hiding
commitments (Pedersen) do not.
"""

from repro.integrity.merkle import MerkleTree, MerkleProof
from repro.integrity.timestamp import (
    TimestampAuthority,
    TimestampChain,
    TimestampLink,
)
from repro.integrity.auditor import ChainAuditor, ChainVerdict

__all__ = [
    "MerkleTree",
    "MerkleProof",
    "TimestampAuthority",
    "TimestampChain",
    "TimestampLink",
    "ChainAuditor",
    "ChainVerdict",
]
