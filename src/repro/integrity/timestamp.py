"""Haber-Stornetta timestamp chains, with LINCOS's commitment variant.

A timestamp authority signs (payload reference, epoch, previous-link hash)
tuples; the chain is renewed by signing the whole prefix with a fresh,
stronger scheme before the old one breaks.  Verification semantics live in
:mod:`repro.integrity.auditor`.

Two payload-reference modes, the paper's exact contrast:

- ``"hash"`` -- the classic chain stores H(document).  Integrity holds, but
  the reference is only computationally hiding: an unbounded (or
  post-break) adversary can grind candidate documents, which "compromises
  the information-theoretic confidentiality of data" stored beside it.
- ``"pedersen"`` -- LINCOS's fix: store a Pedersen commitment instead.
  Perfectly hiding, still binding enough for integrity (computationally,
  via the discrete log).

Signature schemes are pluggable via :class:`ChainSigner`; the library ships
a hash-based signer (Merkle-Lamport) and the breakable toy-RSA signer so
renewal actually has something to race against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.crypto.commitments import PedersenCommitment, PedersenOpening
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.sha256 import sha256
from repro.crypto.signatures import MerkleSignature, RsaKeyPair, ToyRsaSignature
from repro.errors import IntegrityError, ParameterError


class ChainSigner(Protocol):
    """What the timestamp authority needs from a signature scheme."""

    scheme_name: str

    def sign(self, message: bytes) -> bytes: ...

    def verify(self, message: bytes, signature: bytes) -> bool: ...

    def public_identity(self) -> bytes: ...


class MerkleChainSigner:
    """Hash-based signer (Merkle-Lamport); the 'strong new scheme'."""

    scheme_name = "merkle-lamport"

    def __init__(self, rng: DeterministicRandom, height: int = 4):
        self._scheme = MerkleSignature(height, rng)

    def sign(self, message: bytes) -> bytes:
        return _encode_merkle_signature(self._scheme.sign(message))

    def verify(self, message: bytes, signature: bytes) -> bool:
        decoded = _decode_merkle_signature(signature)
        if decoded is None:
            return False
        return MerkleSignature.verify(self._scheme.public_root, message, decoded)

    def public_identity(self) -> bytes:
        return self._scheme.public_root


class RsaChainSigner:
    """Toy-RSA signer; the 'old scheme that will fall'."""

    scheme_name = "toy-rsa"

    def __init__(self, rng: DeterministicRandom, modulus_bits: int = 64):
        self._scheme = ToyRsaSignature(modulus_bits)
        self._keys: RsaKeyPair = self._scheme.generate(rng)

    def sign(self, message: bytes) -> bytes:
        signature = self._scheme.sign(self._keys, message)
        return signature.to_bytes((signature.bit_length() + 7) // 8 or 1, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self._scheme.verify(
            self._keys.public, message, int.from_bytes(signature, "big")
        )

    def public_identity(self) -> bytes:
        return self._keys.n.to_bytes((self._keys.n.bit_length() + 7) // 8, "big")

    @property
    def public_key(self) -> tuple[int, int]:
        return self._keys.public


@dataclass(frozen=True)
class TimestampLink:
    """One link: a signed (reference, epoch, prev) statement."""

    index: int
    epoch: int
    scheme: str
    reference: bytes  # H(doc) or serialized Pedersen commitment
    reference_kind: str  # "hash" | "pedersen" | "renewal"
    prev_digest: bytes
    signature: bytes
    signer_identity: bytes

    def signed_message(self) -> bytes:
        return (
            b"link:"
            + self.index.to_bytes(8, "big")
            + self.epoch.to_bytes(8, "big")
            + self.scheme.encode()
            + b":"
            + self.reference_kind.encode()
            + b":"
            + self.reference
            + self.prev_digest
        )

    def digest(self) -> bytes:
        return sha256(self.signed_message() + self.signature)


@dataclass
class TimestampChain:
    """An append-only chain of timestamp links."""

    links: list[TimestampLink] = field(default_factory=list)

    @property
    def head_digest(self) -> bytes:
        if not self.links:
            return b"\x00" * 32
        return self.links[-1].digest()

    def append(self, link: TimestampLink) -> None:
        expected_prev = self.head_digest
        # Hash-chain heads are public ledger state, recomputable by anyone
        # from the published links; constant-time comparison buys nothing.
        if link.prev_digest != expected_prev:  # noqa: ARCH004 - public chain link
            raise IntegrityError("link does not extend the current head")
        if link.index != len(self.links):
            raise IntegrityError("link index out of sequence")
        self.links.append(link)

    def __len__(self) -> int:
        return len(self.links)


class TimestampAuthority:
    """Issues links onto chains with its configured signer."""

    def __init__(self, signer: ChainSigner):
        self.signer = signer

    def timestamp_document(
        self,
        chain: TimestampChain,
        document: bytes,
        epoch: int,
        reference_kind: str = "hash",
        pedersen: PedersenCommitment | None = None,
        rng: DeterministicRandom | None = None,
    ) -> tuple[TimestampLink, PedersenOpening | None]:
        """Timestamp *document* onto *chain*; returns the link and, in
        pedersen mode, the opening the document owner must retain."""
        opening = None
        if reference_kind == "hash":
            reference = sha256(document)
        elif reference_kind == "pedersen":
            if pedersen is None or rng is None:
                raise ParameterError("pedersen mode needs a commitment scheme and rng")
            value = int.from_bytes(sha256(document), "big") % pedersen.group.q
            commitment, opening = pedersen.commit(value, rng)
            reference = commitment.to_bytes(
                (pedersen.group.p.bit_length() + 7) // 8, "big"
            )
        else:
            raise ParameterError(f"unknown reference kind {reference_kind!r}")

        link = self._make_link(chain, reference, reference_kind, epoch)
        chain.append(link)
        return link, opening

    def renew_chain(self, chain: TimestampChain, epoch: int) -> TimestampLink:
        """Re-timestamp the whole chain prefix under this authority's scheme
        -- the periodic renewal that keeps integrity alive across breaks."""
        prefix_digest = sha256(
            b"".join(link.digest() for link in chain.links) or b"empty"
        )
        link = self._make_link(chain, prefix_digest, "renewal", epoch)
        chain.append(link)
        return link

    def _make_link(
        self, chain: TimestampChain, reference: bytes, kind: str, epoch: int
    ) -> TimestampLink:
        if chain.links and epoch < chain.links[-1].epoch:
            raise ParameterError("chain epochs must be non-decreasing")
        unsigned = TimestampLink(
            index=len(chain.links),
            epoch=epoch,
            scheme=self.signer.scheme_name,
            reference=reference,
            reference_kind=kind,
            prev_digest=chain.head_digest,
            signature=b"",
            signer_identity=self.signer.public_identity(),
        )
        signature = self.signer.sign(unsigned.signed_message())
        return TimestampLink(
            index=unsigned.index,
            epoch=unsigned.epoch,
            scheme=unsigned.scheme,
            reference=unsigned.reference,
            reference_kind=unsigned.reference_kind,
            prev_digest=unsigned.prev_digest,
            signature=signature,
            signer_identity=unsigned.signer_identity,
        )


# -- chain (de)serialization ---------------------------------------------------------


def serialize_chain(chain: TimestampChain) -> str:
    """JSON-encode a chain for archival export.

    A timestamp chain is itself long-lived evidence: it must survive
    system migrations, so it needs a storage-format representation that a
    future verifier can parse without this library's object model.
    """
    import json

    return json.dumps(
        {
            "format": "repro-timestamp-chain-v1",
            "links": [
                {
                    "index": link.index,
                    "epoch": link.epoch,
                    "scheme": link.scheme,
                    "reference": link.reference.hex(),
                    "reference_kind": link.reference_kind,
                    "prev_digest": link.prev_digest.hex(),
                    "signature": link.signature.hex(),
                    "signer_identity": link.signer_identity.hex(),
                }
                for link in chain.links
            ],
        },
        indent=2,
    )


def deserialize_chain(blob: str) -> TimestampChain:
    """Inverse of :func:`serialize_chain`; validates linkage on load."""
    import json

    try:
        payload = json.loads(blob)
        if payload.get("format") != "repro-timestamp-chain-v1":
            raise IntegrityError("unknown chain serialization format")
        chain = TimestampChain()
        for raw in payload["links"]:
            chain.append(
                TimestampLink(
                    index=int(raw["index"]),
                    epoch=int(raw["epoch"]),
                    scheme=str(raw["scheme"]),
                    reference=bytes.fromhex(raw["reference"]),
                    reference_kind=str(raw["reference_kind"]),
                    prev_digest=bytes.fromhex(raw["prev_digest"]),
                    signature=bytes.fromhex(raw["signature"]),
                    signer_identity=bytes.fromhex(raw["signer_identity"]),
                )
            )
    except (KeyError, ValueError, TypeError) as exc:
        raise IntegrityError(f"malformed chain serialization: {exc}") from exc
    return chain


# -- Merkle signature (de)serialization -------------------------------------------


def _encode_merkle_signature(signature: dict) -> bytes:
    parts = [
        signature["index"].to_bytes(4, "big"),
        len(signature["auth_path"]).to_bytes(2, "big"),
        b"".join(signature["auth_path"]),
        signature["ots_signature"],
        b"".join(a + b for a, b in signature["ots_public"]),
    ]
    return b"".join(parts)


def _decode_merkle_signature(blob: bytes) -> dict | None:
    try:
        index = int.from_bytes(blob[:4], "big")
        path_len = int.from_bytes(blob[4:6], "big")
        offset = 6
        auth_path = [
            blob[offset + 32 * i : offset + 32 * (i + 1)] for i in range(path_len)
        ]
        offset += 32 * path_len
        ots_signature = blob[offset : offset + 32 * 256]
        offset += 32 * 256
        ots_public = tuple(
            (blob[offset + 64 * i : offset + 64 * i + 32],
             blob[offset + 64 * i + 32 : offset + 64 * (i + 1)])
            for i in range(256)
        )
        if len(blob) != offset + 64 * 256:
            return None
        return {
            "index": index,
            "auth_path": auth_path,
            "ots_signature": ots_signature,
            "ots_public": ots_public,
        }
    except (IndexError, ValueError):
        return None
