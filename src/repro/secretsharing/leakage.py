"""Local-leakage attacks and leakage-resilient secret sharing (LRSS).

Paper, Section 4: "Instead of stealing an entire secret share from the
archive, an adversary might leak only a few bits of information about a
share via some hidden side-channel.  Shamir's secret sharing is known to be
vulnerable to such leakage attacks [Benhamouda et al.]; several recent works
have proposed new leakage-resilient secret sharing (LRSS) schemes.
Evaluating LRSS's viability for archival systems is an open problem."

Two halves, both executable:

- :func:`local_leakage_attack` -- the concrete attack on *linear* schemes.
  Reconstruction is linear (secret = sum lambda_j * y_j with public
  lambda_j), so in characteristic 2 every bit of the secret is the XOR of
  one locally computable bit per share.  An adversary leaking exactly ONE
  bit from each share recovers a full secret bit with certainty -- no
  threshold violated, no share stolen.

- :class:`LeakageResilientSharing` -- an LRSS in the nonlinear-extractor
  style: the shares hide a uniform *source* w (Shamir-shared, with extra
  length as the leakage budget), and the message is masked by a nonlinear
  extraction from w.  Because the mask is not a linear function of the
  shares, the bit-XOR attack degrades to coin flipping.  Our extractor is
  instantiated with SHA-256 (a computational surrogate for the
  information-theoretic extractors in the LRSS literature -- see DESIGN.md's
  substitution table); the *leakage-budget accounting* is faithful: the
  scheme records how many leaked bits it tolerates, and the benchmark sweeps
  attacks against both schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.crypto.chacha20 import chacha20_keystream
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.kdf import hkdf
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import DecodingError, ParameterError
from repro.gmath.gf256 import GF256
from repro.gmath.poly import lagrange_coefficients_at_zero
from repro.secretsharing.base import Share, SplitResult, record_reconstruct, record_split
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.security import SecurityLevel

#: A leakage function: sees ONE share's payload, returns `bits` leaked bits.
LeakageFunction = Callable[[bytes], int]


@dataclass
class LeakageAttackResult:
    """Outcome of a local-leakage attack on one secret bit."""

    target_byte: int
    target_bit: int
    predicted_bit: int
    actual_bit: int
    bits_leaked_per_share: int

    @property
    def success(self) -> bool:
        return self.predicted_bit == self.actual_bit


def local_leakage_attack(
    scheme: ShamirSecretSharing,
    split: SplitResult,
    secret: bytes,
    target_byte: int = 0,
    target_bit: int = 0,
) -> LeakageAttackResult:
    """Run the 1-bit-per-share local leakage attack against Shamir.

    The adversary picks any t share indices (public), computes the public
    Lagrange coefficients, and asks each side channel for one bit: bit
    *target_bit* of ``lambda_j * payload[target_byte]``.  The XOR of the
    answers equals the corresponding secret bit, because reconstruction is
    GF(2^8)-linear and bit extraction commutes with XOR.
    """
    if not secret:
        raise ParameterError("empty secret")
    shares = list(split.shares)[: scheme.t]
    xs = [s.index for s in shares]
    lambdas = lagrange_coefficients_at_zero(GF256, xs)

    predicted = 0
    for coefficient, share in zip(lambdas, shares):
        # This is the *local* function: it reads only this share's bytes
        # (the coefficient is public, derived from indices alone).
        contribution = GF256.mul(coefficient, share.payload[target_byte])
        predicted ^= (contribution >> target_bit) & 1

    actual = (secret[target_byte] >> target_bit) & 1
    return LeakageAttackResult(
        target_byte=target_byte,
        target_bit=target_bit,
        predicted_bit=predicted,
        actual_bit=actual,
        bits_leaked_per_share=1,
    )


class LeakageResilientSharing:
    """Nonlinear-extractor LRSS: Shamir-share a padded source, mask the
    message with a nonlinear extraction.

    Parameters
    ----------
    n, t:
        Threshold parameters, as in Shamir.
    leakage_budget_bits:
        Total adversarial leakage (bits, across all shares) the source
        padding absorbs.  The source is ``ceil(budget/8) + 32`` bytes longer
        than the message, keeping the residual min-entropy of w above the
        extraction length even after budget bits leak.
    """

    name = "lrss"
    security_level = SecurityLevel.ITS_CONDITIONAL

    def __init__(self, n: int, t: int, leakage_budget_bits: int = 128):
        if leakage_budget_bits < 0:
            raise ParameterError("leakage budget must be >= 0")
        self.n = n
        self.t = t
        self.leakage_budget_bits = leakage_budget_bits
        self._inner = ShamirSecretSharing(n, t)

    @property
    def padding_bytes(self) -> int:
        return -(-self.leakage_budget_bits // 8) + 32

    def storage_overhead_for(self, message_length: int) -> float:
        source = message_length + self.padding_bytes
        return (self.n * source + message_length) / max(1, message_length)

    @staticmethod
    def _extract_mask(source: bytes, length: int) -> bytes:
        """Nonlinear extraction from the source, XOF-style: HKDF condenses
        the source to a key, ChaCha20 expands to the message length."""
        key = hkdf(source, 32, info=b"lrss-extractor")
        return chacha20_keystream(key, b"\x00" * 12, max(1, length))

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult:
        source = rng.bytes(len(data) + self.padding_bytes)
        mask = self._extract_mask(source, len(data))
        masked = (
            np.frombuffer(data, dtype=np.uint8)
            ^ np.frombuffer(mask[: len(data)], dtype=np.uint8)
        ).tobytes()
        inner = self._inner.split(source, rng)
        shares = tuple(
            Share(scheme=self.name, index=s.index, payload=s.payload)
            for s in inner.shares
        )
        record_split(self.name, len(data), self.n)
        return SplitResult(
            scheme=self.name,
            shares=shares,
            threshold=self.t,
            total=self.n,
            original_length=len(data),
            public={"masked_message": masked},
        )

    def reconstruct(self, split: SplitResult | Sequence[Share], masked_message: bytes | None = None) -> bytes:
        if isinstance(split, SplitResult):
            masked_message = split.public["masked_message"]
            share_list = list(split.shares)
        else:
            share_list = list(split)
            if masked_message is None:
                raise ParameterError("masked_message required when passing raw shares")
        inner_shares = [
            Share(scheme=self._inner.name, index=s.index, payload=s.payload)
            for s in share_list
        ]
        source = self._inner.reconstruct(inner_shares)
        if len(source) < len(masked_message):
            raise DecodingError("reconstructed source shorter than message")
        mask = self._extract_mask(source, len(masked_message))
        record_reconstruct(self.name, len(masked_message))
        return (
            np.frombuffer(masked_message, dtype=np.uint8)
            ^ np.frombuffer(mask[: len(masked_message)], dtype=np.uint8)
        ).tobytes()


def linear_attack_against_lrss(
    lrss: LeakageResilientSharing,
    split: SplitResult,
    secret: bytes,
    target_byte: int = 0,
    target_bit: int = 0,
) -> LeakageAttackResult:
    """Mount the same linear 1-bit attack against LRSS shares.

    The XOR of the leaked bits now reveals a bit of the *source* w, not of
    the message: the message bit is that source-extraction bit XORed through
    a nonlinear function the adversary cannot linearize.  The prediction is
    therefore uncorrelated with the real bit (~50% success across trials).
    """
    shares = list(split.shares)[: lrss.t]
    xs = [s.index for s in shares]
    lambdas = lagrange_coefficients_at_zero(GF256, xs)
    leaked_source_bit = 0
    for coefficient, share in zip(lambdas, shares):
        contribution = GF256.mul(coefficient, share.payload[target_byte])
        leaked_source_bit ^= (contribution >> target_bit) & 1
    # Best the adversary can do: combine the leaked source bit with the
    # public masked message bit and hope the extractor were linear.
    masked = split.public["masked_message"]
    predicted = leaked_source_bit ^ ((masked[target_byte] >> target_bit) & 1)
    actual = (secret[target_byte] >> target_bit) & 1
    return LeakageAttackResult(
        target_byte=target_byte,
        target_bit=target_bit,
        predicted_bit=predicted,
        actual_bit=actual,
        bits_leaked_per_share=1,
    )


register_primitive(
    name="lrss",
    kind=PrimitiveKind.SECRET_SHARING,
    description="Leakage-resilient secret sharing (nonlinear-extractor style)",
    hardness_assumption=None,  # leakage-bounded information-theoretic model
)
