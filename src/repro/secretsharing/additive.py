"""Additive n-of-n secret sharing (XOR splitting).

The degenerate threshold case t = n: shares are n - 1 uniform random strings
plus the XOR of all of them with the message.  Perfectly secret against any
n - 1 shares, zero availability slack (lose one share, lose everything).

Included both as the simplest correct baseline for property tests and
because several protocols (proactive renewal's pairwise masking, the BSM
channel) use XOR splitting internally.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import DecodingError, ParameterError
from repro.secretsharing.base import Share, SplitResult
from repro.security import SecurityLevel


class AdditiveSecretSharing:
    """n-of-n XOR sharing: all shares are required, any n-1 reveal nothing."""

    name = "additive"
    security_level = SecurityLevel.ITS_PERFECT

    def __init__(self, n: int):
        if n < 2:
            raise ParameterError("additive sharing needs n >= 2")
        self.n = n
        self.t = n  # reconstruction threshold equals the share count

    @property
    def storage_overhead(self) -> float:
        return float(self.n)

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult:
        message = np.frombuffer(data, dtype=np.uint8)
        randoms = [rng.uint8_array(message.size) for _ in range(self.n - 1)]
        last = message.copy()
        for r in randoms:
            last ^= r
        payloads = [r.tobytes() for r in randoms] + [last.tobytes()]
        shares = tuple(
            Share(scheme=self.name, index=i + 1, payload=p)
            for i, p in enumerate(payloads)
        )
        return SplitResult(
            scheme=self.name,
            shares=shares,
            threshold=self.n,
            total=self.n,
            original_length=len(data),
        )

    def reconstruct(self, shares: Sequence[Share] | SplitResult) -> bytes:
        share_list = list(shares.shares) if isinstance(shares, SplitResult) else list(shares)
        indices = {s.index for s in share_list}
        if indices != set(range(1, self.n + 1)):
            missing = sorted(set(range(1, self.n + 1)) - indices)
            raise DecodingError(f"additive sharing needs all {self.n} shares; missing {missing}")
        lengths = {len(s.payload) for s in share_list}
        if len(lengths) != 1:
            raise DecodingError(f"inconsistent share lengths: {sorted(lengths)}")
        acc = np.zeros(lengths.pop(), dtype=np.uint8)
        seen: set[int] = set()
        for share in share_list:
            if share.index in seen:
                continue
            seen.add(share.index)
            acc ^= np.frombuffer(share.payload, dtype=np.uint8)
        return acc.tobytes()


register_primitive(
    name="additive",
    kind=PrimitiveKind.SECRET_SHARING,
    description="n-of-n XOR secret sharing",
    hardness_assumption=None,
)
