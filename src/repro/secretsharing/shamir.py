"""Shamir's (t, n) threshold secret sharing over GF(256).

Paper, Section 3.2: "A generalization of the One-Time Pad is Shamir's secret
sharing.  It takes a message m as input, and outputs n shares s_1, ..., s_n,
with |s_i| = |m|, such that any subset of t <= n or more shares suffices to
recover m, but fewer than t shares leaves m perfectly secret."

The scheme is applied bytewise: byte position b of the message is the
constant term of an independent random polynomial of degree t-1, and share i
holds that polynomial's value at x = i across all byte positions.  The paper
notes (citing McEliece-Sarwate) that this is exactly a non-systematic [n, t]
Reed-Solomon code applied to (m, r_1, ..., r_{t-1}); ``tests/`` verifies the
equivalence against :class:`repro.gmath.reedsolomon.ReedSolomonCode`.

Storage cost: every share is as large as the message, so the overhead is a
full factor of n -- "the same overhead as replication with less availability"
(we tolerate only n - t losses).  This provably unavoidable cost (Beimel) is
the left anchor of the paper's efficiency/security trade-off.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import DecodingError, ParameterError
from repro.gmath.kernel import (
    gf256_matmul,
    lagrange_matrix_plan,
    rows_as_matrix,
    vandermonde_plan,
)
from repro.secretsharing.base import Share, SplitResult, record_reconstruct, record_split
from repro.security import SecurityLevel

_MAX_SHARES = 255


class ShamirSecretSharing:
    """Shamir threshold sharing with perfect (information-theoretic) secrecy."""

    name = "shamir"
    security_level = SecurityLevel.ITS_PERFECT

    def __init__(self, n: int, t: int):
        if not 1 <= t <= n <= _MAX_SHARES:
            raise ParameterError(f"need 1 <= t <= n <= {_MAX_SHARES}, got n={n} t={t}")
        self.n = n
        self.t = t
        #: x-coordinates of the shares; x = 0 is reserved for the secret.
        self.points = list(range(1, n + 1))

    @property
    def storage_overhead(self) -> float:
        """Each of n shares is message-sized: overhead = n (replication-like)."""
        return float(self.n)

    # -- splitting ----------------------------------------------------------------

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult:
        """Split *data* into n shares, any t of which reconstruct it.

        One batched kernel call: the share matrix is the cached (n, t)
        Vandermonde plan applied to the coefficient rows ``[secret, r_1,
        ..., r_{t-1}]`` -- n Horner passes collapsed into a single matmul.
        """
        secret = np.frombuffer(data, dtype=np.uint8)
        coefficients = np.empty((self.t, secret.size), dtype=np.uint8)
        coefficients[0] = secret
        if self.t > 1:
            # One bulk draw; byte-identical to t-1 consecutive row draws.
            coefficients[1:] = rng.uint8_array(
                (self.t - 1) * secret.size
            ).reshape(self.t - 1, secret.size)
        evaluated = gf256_matmul(
            vandermonde_plan(tuple(self.points), self.t), coefficients
        )
        shares = tuple(
            Share(scheme=self.name, index=x, payload=evaluated[i].tobytes())
            for i, x in enumerate(self.points)
        )
        record_split(self.name, len(data), self.n)
        return SplitResult(
            scheme=self.name,
            shares=shares,
            threshold=self.t,
            total=self.n,
            original_length=len(data),
        )

    # -- reconstruction --------------------------------------------------------------

    def reconstruct(self, shares: Sequence[Share] | SplitResult) -> bytes:
        """Recover the secret from any t distinct shares."""
        share_list = list(shares.shares) if isinstance(shares, SplitResult) else list(shares)
        chosen = self._select(share_list)
        xs = tuple(s.index for s in chosen)
        payload = rows_as_matrix(
            [np.frombuffer(s.payload, dtype=np.uint8) for s in chosen]
        )
        # Cached Lagrange-at-zero plan: reconstruction is one (1, t) matmul.
        acc = gf256_matmul(lagrange_matrix_plan(xs, (0,)), payload)[0]
        record_reconstruct(self.name, acc.size)
        return acc.tobytes()

    def _select(self, shares: Sequence[Share]) -> list[Share]:
        seen: dict[int, Share] = {}
        for share in shares:
            if not 1 <= share.index <= self.n:
                raise DecodingError(
                    f"share index {share.index} out of range for n={self.n}"
                )
            existing = seen.get(share.index)
            if existing is not None and existing.payload != share.payload:
                raise DecodingError(f"conflicting payloads for share {share.index}")
            seen.setdefault(share.index, share)
        if len(seen) < self.t:
            raise DecodingError(
                f"need {self.t} distinct shares to reconstruct, got {len(seen)}"
            )
        chosen = [seen[i] for i in sorted(seen)][: self.t]
        lengths = {len(s.payload) for s in chosen}
        if len(lengths) != 1:
            raise DecodingError(f"inconsistent share lengths: {sorted(lengths)}")
        return chosen

    # -- share algebra used by proactive renewal ----------------------------------------

    def zero_share_rows(self, length: int, rng: DeterministicRandom) -> list[np.ndarray]:
        """Coefficient rows of a random degree t-1 polynomial with zero
        constant term -- the renewal polynomial of proactive sharing."""
        zero = np.zeros(length, dtype=np.uint8)
        return [zero] + [rng.uint8_array(length) for _ in range(self.t - 1)]

    def evaluate_rows(self, coefficient_rows: list[np.ndarray], x: int) -> np.ndarray:
        """Evaluate vector-coefficient polynomial at share point x."""
        if x not in self.points:
            raise ParameterError(f"x={x} is not a share point of this scheme")
        plan = vandermonde_plan((x,), len(coefficient_rows))
        return gf256_matmul(plan, rows_as_matrix(coefficient_rows))[0]

    def evaluate_rows_at(
        self, coefficient_rows: list[np.ndarray], xs: Sequence[int]
    ) -> np.ndarray:
        """Evaluate vector-coefficient polynomial at many share points at
        once (one kernel call; proactive renewal's per-receiver loop)."""
        for x in xs:
            if x not in self.points:
                raise ParameterError(f"x={x} is not a share point of this scheme")
        plan = vandermonde_plan(tuple(xs), len(coefficient_rows))
        return gf256_matmul(plan, rows_as_matrix(coefficient_rows))


register_primitive(
    name="shamir",
    kind=PrimitiveKind.SECRET_SHARING,
    description="Shamir (t, n) threshold sharing over GF(256)",
    hardness_assumption=None,
)
