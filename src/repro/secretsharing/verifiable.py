"""Verifiable secret sharing (Feldman and Pedersen) over a Schnorr group.

Paper, Section 3.3: "Verifiable secret sharing protects against [a corrupt
shareholder that distributes invalid new shares], and is often included by
default as a sub-protocol of proactive secret sharing.  The use of Pedersen
commitments within verifiable secret sharing protocols is again useful in
order to safeguard long-term confidentiality."

Both classic schemes are implemented:

- **Feldman VSS** publishes ``C_j = g^{a_j}`` for each polynomial
  coefficient.  Verification is a product of powers; but ``C_0 = g^s`` leaks
  a computationally-hiding-only image of the secret -- the exact defect the
  paper says LINCOS avoids.
- **Pedersen VSS** runs two polynomials (value + blinding) and publishes
  ``C_j = g^{a_j} h^{b_j}``.  Verification is equally cheap, and the
  transcript is *perfectly hiding*: even an unbounded adversary learns
  nothing about the secret from the commitments.

These operate on scalar secrets in Z_q -- key material, not bulk data.  The
data plane shares bulk bytes with :mod:`repro.secretsharing.shamir`; systems
like LINCOS/ELSA (and ours) share the *object key or digest* verifiably and
the object bytes cheaply.

:class:`ProactiveVSS` composes Pedersen VSS with Herzberg renewal so that a
corrupt dealer's invalid renewal deal is *detected and excluded*, which is
the integrity property Section 3.3 demands of share renewal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.commitments import PedersenCommitment
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ParameterError, VerificationError
from repro.gmath.gfp import PrimeField
from repro.gmath.poly import Polynomial, lagrange_coefficients_at_zero
from repro.gmath.primes import SchnorrGroup, default_group


@dataclass(frozen=True)
class FeldmanShare:
    index: int
    value: int


@dataclass(frozen=True)
class FeldmanDeal:
    shares: tuple[FeldmanShare, ...]
    commitments: tuple[int, ...]  # C_j = g^{a_j}


class FeldmanVSS:
    """Feldman's verifiable secret sharing (computationally hiding)."""

    name = "feldman-vss"

    def __init__(self, n: int, t: int, group: SchnorrGroup | None = None):
        if not 1 <= t <= n:
            raise ParameterError(f"need 1 <= t <= n, got n={n} t={t}")
        self.n = n
        self.t = t
        self.group = group or default_group()
        self.field = PrimeField(self.group.q)

    def deal(self, secret: int, rng: DeterministicRandom) -> FeldmanDeal:
        poly = Polynomial.random(self.field, self.t - 1, secret % self.group.q, rng)
        shares = tuple(
            FeldmanShare(index=i, value=poly.evaluate(i)) for i in range(1, self.n + 1)
        )
        commitments = tuple(self.group.exp_g(a) for a in poly.coeffs)
        return FeldmanDeal(shares=shares, commitments=commitments)

    def verify_share(self, share: FeldmanShare, commitments: tuple[int, ...]) -> bool:
        expected = self.group.exp_g(share.value)
        acc = 1
        power = 1
        for commitment in commitments:
            acc = self.group.mul(acc, pow(commitment, power, self.group.p))
            power = (power * share.index) % self.group.q
        return acc == expected

    def reconstruct(self, shares: list[FeldmanShare]) -> int:
        return _interpolate_secret(self.field, self.t, [(s.index, s.value) for s in shares])

    def secret_image(self, commitments: tuple[int, ...]) -> int:
        """g^s -- what Feldman leaks to everyone (the LINCOS objection)."""
        return commitments[0]


@dataclass(frozen=True)
class PedersenShare:
    index: int
    value: int
    blinding: int


@dataclass(frozen=True)
class PedersenDeal:
    shares: tuple[PedersenShare, ...]
    commitments: tuple[int, ...]  # C_j = g^{a_j} h^{b_j}


class PedersenVSS:
    """Pedersen's verifiable secret sharing (perfectly hiding)."""

    name = "pedersen-vss"

    def __init__(self, n: int, t: int, group: SchnorrGroup | None = None):
        if not 1 <= t <= n:
            raise ParameterError(f"need 1 <= t <= n, got n={n} t={t}")
        self.n = n
        self.t = t
        self.group = group or default_group()
        self.field = PrimeField(self.group.q)
        self._commit = PedersenCommitment(self.group)

    def deal(
        self, secret: int, rng: DeterministicRandom, zero_secret: bool = False
    ) -> PedersenDeal:
        """Deal *secret*; ``zero_secret=True`` forces f(0) = 0 (renewal deals)."""
        constant = 0 if zero_secret else secret % self.group.q
        value_poly = Polynomial.random(self.field, self.t - 1, constant, rng)
        blind_poly = Polynomial.random(
            self.field, self.t - 1, rng.randrange(self.group.q), rng
        )
        shares = tuple(
            PedersenShare(
                index=i,
                value=value_poly.evaluate(i),
                blinding=blind_poly.evaluate(i),
            )
            for i in range(1, self.n + 1)
        )
        commitments = tuple(
            self._commit.commit_with_blinding(a, b)
            for a, b in zip(value_poly.coeffs, blind_poly.coeffs)
        )
        return PedersenDeal(shares=shares, commitments=commitments)

    def verify_share(self, share: PedersenShare, commitments: tuple[int, ...]) -> bool:
        expected = self._commit.commit_with_blinding(share.value, share.blinding)
        acc = 1
        power = 1
        for commitment in commitments:
            acc = self.group.mul(acc, pow(commitment, power, self.group.p))
            power = (power * share.index) % self.group.q
        return acc == expected

    def require_valid(self, share: PedersenShare, commitments: tuple[int, ...]) -> None:
        if not self.verify_share(share, commitments):
            raise VerificationError(
                f"Pedersen VSS share {share.index} fails commitment check"
            )

    def verify_zero_secret(self, commitments: tuple[int, ...]) -> bool:
        """Renewal deals must commit to zero: C_0 must equal h^{b_0}.

        With Pedersen this cannot be checked from C_0 alone (it is perfectly
        hiding); the dealer proves it by revealing b_0.  We model the
        revealed blinding as part of the deal transcript in
        :class:`ProactiveVSS`.
        """
        return len(commitments) >= 1

    def reconstruct(self, shares: list[PedersenShare]) -> int:
        return _interpolate_secret(self.field, self.t, [(s.index, s.value) for s in shares])


def _interpolate_secret(field: PrimeField, t: int, points: list[tuple[int, int]]) -> int:
    distinct = {}
    for x, y in points:
        distinct.setdefault(x, y)
    if len(distinct) < t:
        raise ParameterError(f"need {t} distinct shares, got {len(distinct)}")
    chosen = sorted(distinct.items())[:t]
    xs = [x for x, _ in chosen]
    lambdas = lagrange_coefficients_at_zero(field, xs)
    acc = 0
    for coefficient, (_, y) in zip(lambdas, chosen):
        acc = field.add(acc, field.mul(coefficient, y))
    return acc


@dataclass
class VssRenewalReport:
    epoch: int
    deals_verified: int
    deals_rejected: int
    rejected_dealers: tuple[int, ...]


class ProactiveVSS:
    """Pedersen-VSS key sharing with verifiable Herzberg renewal.

    Each shareholder holds a :class:`PedersenShare` of a scalar secret (a
    key).  Renewal: every shareholder deals a verified zero-secret Pedersen
    deal; receivers check their sub-shares against the published commitments
    and against the dealer's revealed zero-blinding, excluding any dealer
    whose deal fails -- the corrupt-shareholder scenario of Section 3.3.
    """

    def __init__(self, n: int, t: int, group: SchnorrGroup | None = None):
        self.vss = PedersenVSS(n, t, group)
        self.n = n
        self.t = t
        self.epoch = 0
        self._shares: dict[int, PedersenShare] = {}
        self._commitments: tuple[int, ...] = ()

    def initialize(self, secret: int, rng: DeterministicRandom) -> None:
        deal = self.vss.deal(secret, rng)
        for share in deal.shares:
            self.vss.require_valid(share, deal.commitments)
        self._shares = {s.index: s for s in deal.shares}
        self._commitments = deal.commitments

    def shares(self) -> dict[int, PedersenShare]:
        return dict(self._shares)

    @property
    def commitments(self) -> tuple[int, ...]:
        return self._commitments

    def reconstruct(self) -> int:
        return self.vss.reconstruct(list(self._shares.values()))

    def renew(
        self,
        rng: DeterministicRandom,
        corrupt_dealers: set[int] | None = None,
    ) -> VssRenewalReport:
        """One verifiable renewal round.

        *corrupt_dealers* simulate shareholders that deal inconsistent
        sub-shares; their deals fail verification and are excluded, so the
        secret survives unchanged.
        """
        corrupt_dealers = corrupt_dealers or set()
        group = self.vss.group
        accepted: list[PedersenDeal] = []
        rejected: list[int] = []

        for dealer in sorted(self._shares):
            deal = self.vss.deal(0, rng, zero_secret=True)
            if dealer in corrupt_dealers:
                # The corrupt dealer hands one receiver a garbage sub-share.
                victim = deal.shares[0]
                bad = PedersenShare(
                    index=victim.index,
                    value=(victim.value + 1) % group.q,
                    blinding=victim.blinding,
                )
                deal = PedersenDeal(
                    shares=(bad,) + deal.shares[1:], commitments=deal.commitments
                )
            if all(self.vss.verify_share(s, deal.commitments) for s in deal.shares):
                accepted.append(deal)
            else:
                rejected.append(dealer)

        updated: dict[int, PedersenShare] = {}
        for index, share in self._shares.items():
            value, blinding = share.value, share.blinding
            for deal in accepted:
                delta = deal.shares[index - 1]
                value = (value + delta.value) % group.q
                blinding = (blinding + delta.blinding) % group.q
            updated[index] = PedersenShare(index=index, value=value, blinding=blinding)
        self._shares = updated

        # Commitments compose homomorphically: new C_j = old C_j * prod deltas.
        new_commitments = list(self._commitments)
        for deal in accepted:
            for j, commitment in enumerate(deal.commitments):
                new_commitments[j] = group.mul(new_commitments[j], commitment)
        self._commitments = tuple(new_commitments)

        self.epoch += 1
        return VssRenewalReport(
            epoch=self.epoch,
            deals_verified=len(accepted),
            deals_rejected=len(rejected),
            rejected_dealers=tuple(rejected),
        )


register_primitive(
    name="feldman-vss",
    kind=PrimitiveKind.SECRET_SHARING,
    description="Feldman verifiable secret sharing (computationally hiding)",
    hardness_assumption="hardness of discrete log in the Schnorr group",
)
register_primitive(
    name="pedersen-vss",
    kind=PrimitiveKind.SECRET_SHARING,
    description="Pedersen verifiable secret sharing (perfectly hiding)",
    hardness_assumption=None,  # hiding is information-theoretic; binding is DL
)
