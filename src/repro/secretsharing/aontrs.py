"""AONT-RS dispersal (Resch-Plank, FAST '11) -- the Cleversafe encoding.

Pipeline per the paper: apply the all-or-nothing transform (the key ends up
inside the package, masked by a digest of the ciphertext), then spread the
package across n storage nodes with a systematic [n, k] Reed-Solomon code.

Properties the benchmarks exercise:

- storage overhead ~= n/k (low -- Table 1 files AONT-RS under "Low"),
- availability: any k of n shards reconstruct,
- confidentiality: *computational only*.  Fewer than k shards reveal nothing
  to a PPT adversary, but once the underlying cipher or hash breaks, "an
  attacker trivially knows the key and can recover plaintext from even a
  single share" -- reproduced by pairing the weak-cipher AONT with the
  brute-force attack in the HNDL benchmark.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.aont import aont_package_array, aont_unpackage_array
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import DecodingError, ParameterError
from repro.gmath.reedsolomon import ReedSolomonCode, Shard
from repro.secretsharing.base import Share, SplitResult, record_reconstruct, record_split
from repro.security import SecurityLevel


class AontRsDispersal:
    """AONT + systematic [n, k] Reed-Solomon dispersal."""

    name = "aont-rs"
    security_level = SecurityLevel.COMPUTATIONAL

    def __init__(self, n: int, k: int):
        if not 1 <= k < n:
            raise ParameterError(f"AONT-RS needs 1 <= k < n, got n={n} k={k}")
        self.n = n
        self.k = k
        self.code = ReedSolomonCode(n, k)

    @property
    def storage_overhead(self) -> float:
        """n/k erasure-code overhead (the +32-byte AONT tail is amortized)."""
        return self.n / self.k

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult:
        # Zero-copy pipeline: the AONT package stays an ndarray from the CTR
        # slab through RS row-splitting; bytes materialize only per shard.
        package = aont_package_array(data, rng)
        shards = self.code.encode(package)
        shares = tuple(
            Share(scheme=self.name, index=shard.index, payload=shard.data)
            for shard in shards
        )
        record_split(self.name, len(data), self.n)
        return SplitResult(
            scheme=self.name,
            shares=shares,
            threshold=self.k,
            total=self.n,
            original_length=len(data),
            public={"package_length": package_length_bytes(len(package))},
        )

    def reconstruct(
        self,
        shares: Sequence[Share] | SplitResult,
        original_length: int | None = None,
    ) -> bytes:
        if isinstance(shares, SplitResult):
            package_length = int.from_bytes(shares.public["package_length"], "big")
            share_list = list(shares.shares)
        else:
            share_list = list(shares)
            if original_length is None:
                raise ParameterError("original_length required when passing raw shares")
            package_length = original_length + 32
        shards = [Shard(index=s.index, data=s.payload) for s in share_list]
        if len({s.index for s in shards}) < self.k:
            raise DecodingError(f"AONT-RS needs {self.k} distinct shards")
        package = self.code.decode_array(shards, package_length)
        plain = aont_unpackage_array(package)
        record_reconstruct(self.name, len(plain))
        return plain.tobytes()


def package_length_bytes(length: int) -> bytes:
    """Fixed-width encoding of the package length for public metadata."""
    return length.to_bytes(8, "big")


register_primitive(
    name="aont-rs",
    kind=PrimitiveKind.SECRET_SHARING,
    description="AONT + Reed-Solomon dispersal (Resch-Plank)",
    hardness_assumption="AES is a PRP and SHA-256 is preimage-resistant",
)
