"""Proactive secret sharing: Herzberg-style share renewal.

Paper, Section 3.2: against a mobile adversary that eventually steals a
threshold of shares, "it is desirable for the system to have a means of
'refreshing' the shares, rendering stolen shares obsolete.  This can be
accomplished via proactive secret sharing: an information-theoretic
distributed protocol that re-randomizes shares."  The paper immediately
flags the cost: "share renewal requires every shareholder to send a share to
each shareholder.  This incurs high communication costs."

This module is the *data plane*: bulk byte-level renewal for Shamir-shared
objects, with explicit communication accounting so the proactive-renewal
benchmark can reproduce the O(n^2) transfer cost.  Dealing-consistency
verification happens on the key plane (scalar Pedersen VSS in
:mod:`repro.secretsharing.verifiable`), mirroring how LINCOS/ELSA separate
the two; here each renewal message carries a hash tag so in-transit
corruption is detected.

Protocol per renewal epoch (Herzberg et al., CRYPTO '95):

1. every shareholder i samples a random degree t-1 polynomial D_i with
   D_i(0) = 0;
2. i sends D_i(x_j) to every other shareholder j  (n*(n-1) messages);
3. every j replaces its share: s_j <- s_j + sum_i D_i(x_j).

The shared secret is unchanged (all deltas vanish at x = 0) but the share
vector is re-randomized, so shares stolen in different epochs cannot be
combined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.hmac_ import constant_time_eq
from repro.crypto.sha256 import sha256
from repro.errors import IntegrityError, ParameterError
from repro.secretsharing.base import Share, SplitResult
from repro.secretsharing.shamir import ShamirSecretSharing


@dataclass
class RenewalReport:
    """Accounting for one renewal epoch (feeds the cost benchmark)."""

    epoch: int
    n: int
    messages: int
    bytes_sent: int
    corrupted_messages_detected: int = 0

    @property
    def bytes_per_shareholder(self) -> float:
        return self.bytes_sent / self.n


@dataclass
class RecoveryReport:
    """Accounting and transcript of one lost-share recovery."""

    lost_index: int
    helpers: tuple[int, ...]
    messages: int
    bytes_sent: int
    #: The blinded contributions as sent (for secrecy tests: each one is
    #: uniform; only their XOR is the share).
    contributions: dict[int, bytes] = field(default_factory=dict)


@dataclass
class EpochShare:
    """A share tagged with the renewal epoch it belongs to."""

    share: Share
    epoch: int


@dataclass
class _Holder:
    index: int
    payload: np.ndarray
    #: Deltas received during the current renewal round, by sender index.
    inbox: dict[int, np.ndarray] = field(default_factory=dict)


class ProactiveShareGroup:
    """A set of shareholders jointly holding one Shamir-shared object."""

    def __init__(self, scheme: ShamirSecretSharing, split: SplitResult):
        if split.scheme != scheme.name:
            raise ParameterError(
                f"split was produced by {split.scheme!r}, expected {scheme.name!r}"
            )
        self.scheme = scheme
        self.epoch = 0
        self.original_length = split.original_length
        self._holders = {
            share.index: _Holder(
                index=share.index,
                payload=np.frombuffer(share.payload, dtype=np.uint8).copy(),
            )
            for share in split.shares
        }

    # -- views -------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._holders)

    def share_of(self, index: int) -> EpochShare:
        """The adversary's (or a reader's) view of holder *index* right now."""
        holder = self._holders[index]
        return EpochShare(
            share=Share(
                scheme=self.scheme.name,
                index=holder.index,
                payload=holder.payload.tobytes(),
            ),
            epoch=self.epoch,
        )

    def all_shares(self) -> list[EpochShare]:
        return [self.share_of(i) for i in sorted(self._holders)]

    def reconstruct(self) -> bytes:
        shares = [es.share for es in self.all_shares()[: self.scheme.t]]
        return self.scheme.reconstruct(shares)[: self.original_length]

    # -- the renewal protocol -------------------------------------------------------

    def renew(
        self,
        rng: DeterministicRandom,
        tamper: dict[tuple[int, int], bytes] | None = None,
    ) -> RenewalReport:
        """Run one Herzberg renewal round.

        *tamper* optionally maps (sender, receiver) to substituted payloads,
        letting tests and the adversary harness inject in-transit corruption;
        tampered messages are detected by their hash tags and dropped, and
        the sender's delta is discarded group-wide (the honest-majority
        response: an accused dealer's contribution is excluded).
        """
        tamper = tamper or {}
        share_len = len(next(iter(self._holders.values())).payload)

        messages = 0
        bytes_sent = 0
        detected = 0
        excluded_senders: set[int] = set()

        # Phase 1+2: every holder deals a zero-secret polynomial and sends
        # sub-shares with integrity tags.  All n sub-shares of one dealer
        # come out of a single batched kernel call.
        deliveries: dict[int, dict[int, np.ndarray]] = {i: {} for i in self._holders}
        receivers = sorted(self._holders)
        for sender in receivers:
            delta_rows = self.scheme.zero_share_rows(share_len, rng)
            sub_shares = self.scheme.evaluate_rows_at(delta_rows, receivers)
            for position, receiver in enumerate(receivers):
                sub_share = sub_shares[position]
                tag = sha256(sub_share.tobytes())
                wire_payload = tamper.get((sender, receiver), sub_share.tobytes())
                messages += 1
                bytes_sent += len(wire_payload) + len(tag)
                if not constant_time_eq(sha256(wire_payload), tag):
                    detected += 1
                    excluded_senders.add(sender)
                    continue
                deliveries[receiver][sender] = np.frombuffer(
                    wire_payload, dtype=np.uint8
                )

        # Phase 3: apply all surviving deltas.
        for receiver, holder in self._holders.items():
            for sender, delta in deliveries[receiver].items():
                if sender in excluded_senders:
                    continue
                holder.payload ^= delta

        self.epoch += 1
        return RenewalReport(
            epoch=self.epoch,
            n=self.n,
            messages=messages,
            bytes_sent=bytes_sent,
            corrupted_messages_detected=detected,
        )

    # -- lost-share recovery (Herzberg's second protocol) ------------------------------

    def recover_share(
        self, lost_index: int, rng: DeterministicRandom
    ) -> "RecoveryReport":
        """Rebuild holder *lost_index*'s share without exposing the secret.

        A crashed or replaced node must get its share back, but no helper
        may learn it (and the recovering node must learn nothing beyond its
        own share).  Herzberg et al.'s recovery protocol: a subset B of t
        healthy holders computes ``f(x_lost) = sum lambda_i f(x_i)`` as a
        *blinded* sum -- each pair in B exchanges a random pad, each helper
        sends its Lagrange-weighted share XOR its pads, and the pads cancel
        only in the total.  Any t-1 of the contributions are uniform noise.
        """
        if lost_index not in self._holders:
            raise ParameterError(f"no holder with index {lost_index}")
        helpers = [i for i in sorted(self._holders) if i != lost_index][
            : self.scheme.t
        ]
        if len(helpers) < self.scheme.t:
            raise ParameterError(
                f"need {self.scheme.t} healthy helpers, have {len(helpers)}"
            )
        from repro.gmath.gf256 import GF256
        from repro.gmath.kernel import lagrange_matrix_plan

        share_len = len(self._holders[helpers[0]].payload)
        # Lagrange coefficients targeting x = lost_index instead of zero
        # (cached plan: repeated recoveries of one index reuse the row).
        lambdas = [
            int(v)
            for v in lagrange_matrix_plan(tuple(helpers), (lost_index,))[0]
        ]

        # Pairwise pads: helpers i < k share pad p_{ik}; i XORs it in, k
        # XORs it in too, so every pad appears exactly twice and cancels.
        pads: dict[tuple[int, int], np.ndarray] = {}
        for a_index, i in enumerate(helpers):
            for k in helpers[a_index + 1 :]:
                pads[(i, k)] = rng.uint8_array(share_len)

        contributions: dict[int, np.ndarray] = {}
        messages = 0
        bytes_sent = 0
        for coefficient, i in zip(lambdas, helpers):
            blinded = GF256.scalar_mul_vec(
                coefficient, self._holders[i].payload
            ).copy() if coefficient else np.zeros(share_len, dtype=np.uint8)
            for (a, b), pad in pads.items():
                if i in (a, b):
                    blinded ^= pad
            contributions[i] = blinded
            messages += 1
            bytes_sent += share_len
        # Pad exchange traffic: one message per pair.
        messages += len(pads)
        bytes_sent += len(pads) * share_len

        recovered = np.zeros(share_len, dtype=np.uint8)
        for blinded in contributions.values():
            recovered ^= blinded
        self._holders[lost_index].payload = recovered
        return RecoveryReport(
            lost_index=lost_index,
            helpers=tuple(helpers),
            messages=messages,
            bytes_sent=bytes_sent,
            contributions={i: c.tobytes() for i, c in contributions.items()},
        )

    # -- adversary-facing helpers ------------------------------------------------------

    def try_reconstruct_mixed_epochs(self, stolen: list[EpochShare]) -> bytes | None:
        """What an adversary holding shares from *different* epochs gets.

        Returns the reconstruction if all shares are from the current epoch
        set and meet the threshold; otherwise returns the (wrong) bytes a
        naive combination would yield -- callers compare against the real
        secret to demonstrate staleness.  Returns None below threshold.
        """
        distinct = {es.share.index: es for es in stolen}
        if len(distinct) < self.scheme.t:
            return None
        chosen = list(distinct.values())[: self.scheme.t]
        try:
            return self.scheme.reconstruct([es.share for es in chosen])[
                : self.original_length
            ]
        except IntegrityError:
            return None
