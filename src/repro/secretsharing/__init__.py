"""Secret-sharing schemes and dispersal encodings.

This package implements every data encoding on the paper's Figure 1 axis
that involves splitting data across storage nodes, plus the protocols that
keep such encodings alive over archival time:

- ``shamir`` -- Shamir's (t, n) threshold scheme over GF(256) (perfect
  secrecy, n-times storage).
- ``additive`` -- n-of-n XOR sharing (the degenerate but instructive case).
- ``packed`` -- Franklin-Yung packed sharing: k secrets per polynomial,
  trading threshold slack for an n/k-style storage cost.
- ``proactive`` -- Herzberg share renewal: re-randomize shares each epoch so
  a mobile adversary's stolen shares expire.
- ``verifiable`` -- Feldman and Pedersen VSS over a Schnorr group (scalar
  secrets, used for key material).
- ``redistribution`` -- Wong-Wang-Wing verifiable secret redistribution:
  change (n, t) without ever reconstructing.
- ``leakage`` -- the local-leakage attack on linear schemes and a
  leakage-resilient construction that defeats it.
- ``aontrs`` -- Resch-Plank AONT-RS dispersal (computational, low cost).
"""

from repro.secretsharing.base import Share, SplitResult
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.secretsharing.additive import AdditiveSecretSharing
from repro.secretsharing.packed import PackedSecretSharing
from repro.secretsharing.aontrs import AontRsDispersal

__all__ = [
    "Share",
    "SplitResult",
    "ShamirSecretSharing",
    "AdditiveSecretSharing",
    "PackedSecretSharing",
    "AontRsDispersal",
]
