"""Distributed key generation (Pedersen DKG).

HasDPSS-style decentralized key management must *create* keys without any
single dealer ever knowing them -- otherwise the dealer is the single point
of trust the architecture exists to remove.  Pedersen's DKG: every party
deals a Pedersen-VSS sharing of its own random value; parties whose deals
verify form the qualified set; each participant's final share is the sum of
the sub-shares it received from qualified dealers, so the group key is the
sum of qualified dealers' values -- uniformly random as long as ONE dealer
was honest, and never materialized anywhere.

The resulting share set is directly compatible with
:class:`repro.secretsharing.verifiable.ProactiveVSS`-style renewal (same
Pedersen share/commitment shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError
from repro.gmath.primes import SchnorrGroup, default_group
from repro.secretsharing.verifiable import PedersenDeal, PedersenShare, PedersenVSS


@dataclass
class DkgResult:
    """Outcome of one DKG run."""

    shares: dict[int, PedersenShare]
    commitments: tuple[int, ...]
    qualified: tuple[int, ...]
    disqualified: tuple[int, ...]

    def reconstruct_for_test(self, vss: PedersenVSS) -> int:
        """Reassemble the group secret (tests only -- the whole point of
        DKG is that no honest execution ever does this)."""
        return vss.reconstruct(list(self.shares.values()))


class DistributedKeyGeneration:
    """Pedersen DKG over n parties with threshold t."""

    def __init__(self, n: int, t: int, group: SchnorrGroup | None = None):
        if not 1 <= t <= n:
            raise ParameterError(f"need 1 <= t <= n, got n={n} t={t}")
        self.n = n
        self.t = t
        self.group = group or default_group()
        self.vss = PedersenVSS(n, t, self.group)

    def run(
        self,
        rng: DeterministicRandom,
        corrupt_dealers: set[int] | None = None,
    ) -> DkgResult:
        """Execute the protocol.

        *corrupt_dealers* deal one inconsistent sub-share each; their deals
        fail verification and they are excluded from the qualified set, so
        the group key remains well-defined and uniform.
        """
        corrupt_dealers = corrupt_dealers or set()
        deals: dict[int, PedersenDeal] = {}
        contributions: dict[int, int] = {}
        for dealer in range(1, self.n + 1):
            value = rng.randrange(self.group.q)
            contributions[dealer] = value
            deal = self.vss.deal(value, rng)
            if dealer in corrupt_dealers:
                victim = deal.shares[0]
                bad = PedersenShare(
                    index=victim.index,
                    value=(victim.value + 1) % self.group.q,
                    blinding=victim.blinding,
                )
                deal = PedersenDeal(
                    shares=(bad,) + deal.shares[1:], commitments=deal.commitments
                )
            deals[dealer] = deal

        qualified = [
            dealer
            for dealer, deal in deals.items()
            if all(self.vss.verify_share(s, deal.commitments) for s in deal.shares)
        ]
        if not qualified:
            raise ParameterError("DKG failed: no dealer produced a valid deal")
        disqualified = [d for d in deals if d not in qualified]

        # Each party sums the sub-shares received from qualified dealers.
        shares: dict[int, PedersenShare] = {}
        for index in range(1, self.n + 1):
            value = 0
            blinding = 0
            for dealer in qualified:
                sub = deals[dealer].shares[index - 1]
                value = (value + sub.value) % self.group.q
                blinding = (blinding + sub.blinding) % self.group.q
            shares[index] = PedersenShare(index=index, value=value, blinding=blinding)

        # Commitments combine homomorphically across qualified deals.
        combined = [1] * self.t
        for dealer in qualified:
            for j, commitment in enumerate(deals[dealer].commitments):
                combined[j] = self.group.mul(combined[j], commitment)

        # Internal consistency: the group secret is the qualified sum.
        self._expected_secret_for_test = (
            sum(contributions[d] for d in qualified) % self.group.q
        )
        return DkgResult(
            shares=shares,
            commitments=tuple(combined),
            qualified=tuple(qualified),
            disqualified=tuple(disqualified),
        )
