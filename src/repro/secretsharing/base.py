"""Common share containers and the scheme interface.

Every splitting scheme in the package produces :class:`Share` objects and a
:class:`SplitResult` wrapper carrying whatever public metadata the scheme
needs at reconstruction time (original length, packing width, public masked
values...).  Keeping metadata explicit and *public by construction* forces
each scheme to be honest about what an adversary holding a share actually
sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.crypto.drbg import DeterministicRandom
from repro.obs import metrics as _metrics
from repro.security import SecurityLevel, redact_secret


@dataclass(frozen=True)
class Share:
    """One share of a split object.

    Attributes
    ----------
    scheme:
        Name of the producing scheme (e.g. ``"shamir"``).
    index:
        The shareholder index; for polynomial schemes this is the x-value.
    payload:
        The share bytes an adversary stealing this share would obtain.
    """

    scheme: str
    index: int
    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return (
            f"Share(scheme={self.scheme!r}, index={self.index}, "
            f"payload={redact_secret(self.payload)})"
        )


@dataclass(frozen=True)
class SplitResult:
    """Shares plus the public metadata needed to reconstruct."""

    scheme: str
    shares: tuple[Share, ...]
    threshold: int
    total: int
    original_length: int
    #: Scheme-specific public values (treated as known to the adversary).
    public: dict = field(default_factory=dict)

    @property
    def stored_bytes(self) -> int:
        """Total bytes that hit storage media (shares + public metadata)."""
        public_bytes = sum(
            len(v) for v in self.public.values() if isinstance(v, (bytes, bytearray))
        )
        return sum(len(s) for s in self.shares) + public_bytes

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per plaintext byte -- the Figure 1 y-axis."""
        if self.original_length == 0:
            return float(self.total)
        return self.stored_bytes / self.original_length


class SecretSharingScheme(Protocol):
    """Structural interface implemented by every scheme in this package."""

    name: str
    security_level: SecurityLevel

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult: ...

    def reconstruct(self, result_or_shares: SplitResult | Sequence[Share], **kwargs) -> bytes: ...


# -- instrumentation helpers shared by every scheme ----------------------------


def record_split(scheme: str, plaintext_bytes: int, shares_produced: int) -> None:
    """Account one split: plaintext consumed and shares emitted."""
    _metrics.inc("secretsharing_splits_total", scheme=scheme)
    _metrics.inc("secretsharing_encode_bytes_total", plaintext_bytes, scheme=scheme)
    _metrics.inc("secretsharing_shares_produced_total", shares_produced, scheme=scheme)


def record_reconstruct(scheme: str, plaintext_bytes: int) -> None:
    """Account one reconstruction: plaintext recovered."""
    _metrics.inc("secretsharing_reconstructs_total", scheme=scheme)
    _metrics.inc("secretsharing_decode_bytes_total", plaintext_bytes, scheme=scheme)
