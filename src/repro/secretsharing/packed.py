"""Packed (Franklin-Yung) secret sharing over GF(256).

Figure 1 of the paper places "Packed Secret Sharing" strictly below Shamir on
the storage-cost axis at comparable security: by encoding *k* secrets into
one polynomial of degree t + k - 1, each share is only 1/k-th of the message,
for an overhead of n/k instead of n.

The price is threshold slack: privacy still holds against any t shares, but
reconstruction now needs t + k shares (so the loss tolerance drops to
n - t - k).  This trade is exactly the kind of "more storage-efficient, same
information-theoretic guarantee, weaker availability" point the paper's
trade-off discussion centers on.

Construction: the k message chunks are the polynomial's values at k reserved
evaluation points (the top of the field, 255 downward); t uniformly random
values at the first t share points make the polynomial uniform conditioned on
the secrets.  Shares are evaluations at points 1..n.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import DecodingError, ParameterError
from repro.gmath.gf256 import GF256
from repro.gmath.kernel import gf256_matmul, lagrange_matrix_plan, rows_as_matrix
from repro.secretsharing.base import Share, SplitResult, record_reconstruct, record_split
from repro.security import SecurityLevel


class PackedSecretSharing:
    """(t, k, n) packed sharing: t-privacy, k secrets, t+k to reconstruct."""

    name = "packed"
    security_level = SecurityLevel.ITS_PERFECT

    def __init__(self, n: int, t: int, k: int):
        if t < 1 or k < 1:
            raise ParameterError("t and k must be >= 1")
        if n < t + k:
            raise ParameterError(f"need n >= t + k shares to reconstruct (n={n}, t={t}, k={k})")
        if n + k > 255:
            raise ParameterError(f"n + k must be <= 255 over GF(256), got {n + k}")
        self.n = n
        self.t = t
        self.k = k
        self.share_points = list(range(1, n + 1))
        #: Reserved points carrying the message chunks (disjoint from shares).
        self.secret_points = [255 - j for j in range(k)]
        #: Interpolation anchors: the k secret points plus t share points.
        self.anchor_points = self.secret_points + self.share_points[: t]

    @property
    def reconstruction_threshold(self) -> int:
        return self.t + self.k

    @property
    def storage_overhead(self) -> float:
        """Each share is 1/k of the message: overhead = n / k."""
        return self.n / self.k

    # -- splitting ------------------------------------------------------------------

    def split(self, data: bytes, rng: DeterministicRandom) -> SplitResult:
        chunk_rows, original = self._chunk(data)
        random_rows = [rng.uint8_array(chunk_rows[0].size) for _ in range(self.t)]
        anchor_rows = rows_as_matrix(chunk_rows + random_rows)

        # P(x) for the first t share points *is* the random value; the
        # remaining n - t shares are one cached-plan kernel call.
        tail_points = tuple(self.share_points[self.t :])
        tail = (
            gf256_matmul(
                lagrange_matrix_plan(tuple(self.anchor_points), tail_points),
                anchor_rows,
            )
            if tail_points
            else None
        )
        shares = []
        for i, x in enumerate(self.share_points):
            payload = random_rows[i] if i < self.t else tail[i - self.t]
            shares.append(Share(scheme=self.name, index=x, payload=payload.tobytes()))
        record_split(self.name, original, self.n)
        return SplitResult(
            scheme=self.name,
            shares=tuple(shares),
            threshold=self.reconstruction_threshold,
            total=self.n,
            original_length=original,
        )

    def reconstruct(self, shares: Sequence[Share] | SplitResult, original_length: int | None = None) -> bytes:
        if isinstance(shares, SplitResult):
            if original_length is None:
                original_length = shares.original_length
            share_list = list(shares.shares)
        else:
            share_list = list(shares)
            if original_length is None:
                raise ParameterError("original_length required when passing raw shares")
        chosen = self._select(share_list)
        xs = tuple(s.index for s in chosen)
        rows = rows_as_matrix(
            [np.frombuffer(s.payload, dtype=np.uint8) for s in chosen]
        )
        chunk_rows = gf256_matmul(
            lagrange_matrix_plan(xs, tuple(self.secret_points)), rows
        )
        flat = chunk_rows.reshape(-1)
        if original_length > flat.size:
            raise DecodingError("original_length exceeds reconstructed size")
        record_reconstruct(self.name, original_length)
        return flat[:original_length].tobytes()

    # -- helpers ---------------------------------------------------------------------

    def _chunk(self, data: bytes) -> tuple[list[np.ndarray], int]:
        original = len(data)
        row_len = max(1, -(-original // self.k))
        padded = np.zeros(row_len * self.k, dtype=np.uint8)
        padded[:original] = np.frombuffer(data, dtype=np.uint8)
        return [padded[i * row_len : (i + 1) * row_len] for i in range(self.k)], original

    # -- proactive renewal support ---------------------------------------------------

    def renewal_delta_rows(self, length: int, rng: DeterministicRandom) -> list[np.ndarray]:
        """Coefficient rows of a random renewal polynomial for packed shares.

        Herzberg renewal for Shamir uses deltas vanishing at x = 0; packed
        sharing stores k secrets at k reserved points, so a valid delta
        must vanish at ALL of them: delta(x) = Z(x) * r(x), where
        ``Z(x) = prod_j (x - s_j)`` and r is random of degree t - 1.  The
        product has degree t + k - 1 -- the scheme's degree -- so adding
        ``delta(x_i)`` to every share re-randomizes the sharing while every
        packed secret is untouched.
        """
        zero_poly = [1]  # coefficients of Z(x), ascending
        for secret_point in self.secret_points:
            # Multiply by (x - s) = (x + s) in characteristic 2.
            next_coeffs = [0] * (len(zero_poly) + 1)
            for degree, coefficient in enumerate(zero_poly):
                next_coeffs[degree + 1] ^= coefficient
                next_coeffs[degree] ^= GF256.mul(coefficient, secret_point)
            zero_poly = next_coeffs
        random_rows = [rng.uint8_array(length) for _ in range(self.t)]
        # delta coefficients: convolution of Z (scalars) with r (byte rows).
        delta_rows = [
            np.zeros(length, dtype=np.uint8)
            for _ in range(len(zero_poly) + self.t - 1)
        ]
        for z_degree, z_coefficient in enumerate(zero_poly):
            if not z_coefficient:
                continue
            for r_degree, row in enumerate(random_rows):
                delta_rows[z_degree + r_degree] ^= GF256.scalar_mul_vec(
                    z_coefficient, row
                )
        return delta_rows

    def evaluate_delta(self, delta_rows: list[np.ndarray], x: int) -> np.ndarray:
        """Evaluate renewal delta rows at a share point."""
        if x not in self.share_points:
            raise ParameterError(f"x={x} is not a share point")
        return GF256.poly_eval_vec(delta_rows, x)

    @staticmethod
    def _interpolate_rows(xs: list[int], rows: list[np.ndarray], x: int) -> np.ndarray:
        """Evaluate at *x* the polynomial through (xs[i], rows[i])."""
        plan = lagrange_matrix_plan(tuple(xs), (x,))
        return gf256_matmul(plan, rows_as_matrix(rows))[0]

    def _select(self, shares: Sequence[Share]) -> list[Share]:
        seen: dict[int, Share] = {}
        for share in shares:
            if share.index not in self.share_points:
                raise DecodingError(f"share index {share.index} invalid for n={self.n}")
            seen.setdefault(share.index, share)
        needed = self.reconstruction_threshold
        if len(seen) < needed:
            raise DecodingError(
                f"packed sharing needs {needed} shares (t + k), got {len(seen)}"
            )
        chosen = [seen[i] for i in sorted(seen)][:needed]
        lengths = {len(s.payload) for s in chosen}
        if len(lengths) != 1:
            raise DecodingError(f"inconsistent share lengths: {sorted(lengths)}")
        return chosen


register_primitive(
    name="packed",
    kind=PrimitiveKind.SECRET_SHARING,
    description="Franklin-Yung packed secret sharing (k secrets per polynomial)",
    hardness_assumption=None,
)
