"""Verifiable secret redistribution (Wong, Wang, Wing -- SISW '02).

The paper cites the "VSR Archive" as a proactive scheme "with the desirable
feature of adding or removing shareholders in each share renewal phase":
shares under an (n, t) scheme are redistributed to a *different* (n', t')
scheme without ever reconstructing the secret anywhere.

Protocol (data plane, bytewise over GF(256)):

1. an authorized subset B (|B| = t) of old shareholders is selected;
2. every i in B re-shares its own share s_i under the new (n', t') scheme,
   producing sub-shares ss_{i,j} for each new shareholder j;
3. new shareholder j combines: s'_j = sum_{i in B} lambda_i * ss_{i,j},
   where lambda_i are B's Lagrange coefficients at zero.

Correctness: the combined polynomial g(x) = sum lambda_i f_i(x) has
g(0) = sum lambda_i s_i = secret, and degree t' - 1.  Privacy: each old
share is itself perfectly hidden in its sub-shares, so new shareholders
learn nothing about old shares and vice versa -- old and new share sets
cannot be mixed, which is also what expires shares stolen before the
redistribution.

Like renewal, every message carries a hash tag (in-transit integrity); the
dealing-consistency verification of the full Wong et al. protocol is modeled
on the key plane by :class:`repro.secretsharing.verifiable.ProactiveVSS`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError
from repro.gmath.gf256 import GF256
from repro.gmath.poly import lagrange_coefficients_at_zero
from repro.secretsharing.base import Share, SplitResult
from repro.secretsharing.shamir import ShamirSecretSharing


@dataclass
class RedistributionReport:
    """Accounting for one redistribution (old (n,t) -> new (n',t'))."""

    old_n: int
    old_t: int
    new_n: int
    new_t: int
    messages: int
    bytes_sent: int


def redistribute(
    old_scheme: ShamirSecretSharing,
    old_shares: list[Share],
    new_scheme: ShamirSecretSharing,
    original_length: int,
    rng: DeterministicRandom,
) -> tuple[SplitResult, RedistributionReport]:
    """Redistribute *old_shares* to *new_scheme* without reconstruction.

    Returns the new split plus the communication accounting.  Any t distinct
    old shares suffice; extra shares are ignored.
    """
    distinct: dict[int, Share] = {}
    for share in old_shares:
        distinct.setdefault(share.index, share)
    if len(distinct) < old_scheme.t:
        raise ParameterError(
            f"redistribution needs {old_scheme.t} old shares, got {len(distinct)}"
        )
    subset = [distinct[i] for i in sorted(distinct)][: old_scheme.t]
    xs = [s.index for s in subset]
    lambdas = lagrange_coefficients_at_zero(GF256, xs)

    share_len = len(subset[0].payload)
    messages = 0
    bytes_sent = 0

    # Sub-share each old share under the new scheme, then combine.
    combined = {
        j: np.zeros(share_len, dtype=np.uint8) for j in new_scheme.points
    }
    for coefficient, old_share in zip(lambdas, subset):
        sub_split = new_scheme.split(old_share.payload, rng)
        for sub_share in sub_split.shares:
            messages += 1
            bytes_sent += len(sub_share.payload) + 32  # payload + hash tag
            if coefficient:
                combined[sub_share.index] ^= GF256.scalar_mul_vec(
                    coefficient, np.frombuffer(sub_share.payload, dtype=np.uint8)
                )

    new_shares = tuple(
        Share(scheme=new_scheme.name, index=j, payload=combined[j].tobytes())
        for j in new_scheme.points
    )
    result = SplitResult(
        scheme=new_scheme.name,
        shares=new_shares,
        threshold=new_scheme.t,
        total=new_scheme.n,
        original_length=original_length,
    )
    report = RedistributionReport(
        old_n=old_scheme.n,
        old_t=old_scheme.t,
        new_n=new_scheme.n,
        new_t=new_scheme.t,
        messages=messages,
        bytes_sent=bytes_sent,
    )
    return result, report
