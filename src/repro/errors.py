"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at API boundaries while still distinguishing the precise
failure mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A caller supplied structurally invalid parameters (e.g. t > n)."""


class DecodingError(ReproError):
    """An erasure/secret decoding failed (too few shares, bad indices...)."""


class IntegrityError(ReproError):
    """A stored object, share, or chain failed an integrity check."""


class VerificationError(IntegrityError):
    """A verifiable-secret-sharing or commitment verification failed."""


class CipherBrokenError(ReproError):
    """An operation required a primitive the break timeline marks as broken."""


class StillSecureError(ReproError):
    """An attack failed because the primitives it targets still hold."""


class KeyManagementError(ReproError):
    """Key material was missing, expired, or inconsistent."""


class StorageError(ReproError):
    """A storage node or placement operation failed."""


class NodeUnavailableError(StorageError):
    """The targeted storage node is offline or failed."""


class ObjectNotFoundError(StorageError, KeyError):
    """No object with the requested identifier exists on the node."""


class DeadlineExceededError(StorageError):
    """A storage operation's (simulated) latency exceeded its deadline.

    Raised by the fault-injection layer when an injected latency rule pushes
    one operation past the per-op deadline priced from the
    :mod:`repro.storage.archive_model` throughput figures.  Transient by
    definition: the retry policy treats it like an offline node.
    """


class ServiceError(ReproError):
    """The archive service front-end refused or failed a request."""


class OverloadError(ServiceError):
    """Admission control rejected a request because the queue is full.

    The typed signal the paper-scale service uses for load shedding: callers
    are expected to back off and retry rather than pile onto a saturated
    archive.
    """


class QuotaExhaustedError(ServiceError):
    """A tenant's token-bucket quota has no tokens for this request."""


class ChannelError(ReproError):
    """A secure channel could not be established or has been exhausted."""


class AdversaryError(ReproError):
    """An adversary simulation was configured inconsistently."""


class RetentionLockedError(ReproError):
    """Deletion was refused because a retention lock is still active."""
