"""Observability: metrics, tracing, and profiling hooks.

The paper's thesis is a *measured* cost/security trade-off; this package is
the measurement substrate.  Three pieces, all dependency-free:

- :mod:`repro.obs.metrics` -- process-wide registry of counters, gauges, and
  exponential-bucket histograms (swap with ``use_registry()`` for isolation);
- :mod:`repro.obs.tracing` -- ``span()`` context manager for nested
  wall-clock/CPU traces with structured logging;
- :mod:`repro.obs.profiling` -- the ``@profiled`` decorator hook.

Every hot layer (secret sharing, crypto, storage, integrity, the archive
facade) records here; ``SecureArchive.metrics_snapshot()`` and
``python -m repro.analysis --metrics`` read it back out.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_registry,
    use_registry,
)
from repro.obs.profiling import profiled
from repro.obs.tracing import Span, current_span, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "current_span",
    "exponential_buckets",
    "get_registry",
    "inc",
    "observe",
    "profiled",
    "set_gauge",
    "set_registry",
    "span",
    "use_registry",
]
