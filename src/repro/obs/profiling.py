"""``@profiled``: span-per-call profiling hooks for named functions.

Decorating a function wraps every call in a :func:`repro.obs.tracing.span`
named after it (override with ``name=``), so its wall/CPU distribution shows
up in the registry as ``span_wall_seconds{span=<name>}`` alongside a
``profiled_calls_total{fn=<name>}`` counter -- the "cite a histogram, not a
hunch" hook for functions that are not naturally span-shaped call sites.

Usage::

    @profiled
    def renew(...): ...

    @profiled(name="audit.respond")
    def respond(...): ...
"""

from __future__ import annotations

import functools

from repro.obs import metrics
from repro.obs.tracing import span

__all__ = ["profiled"]


def profiled(fn=None, *, name: str | None = None):
    """Wrap *fn* so each call runs inside a span and bumps a call counter."""

    def decorate(func):
        label = name or f"{func.__module__.rsplit('.', 1)[-1]}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            metrics.inc("profiled_calls_total", fn=label)
            with span(label):
                return func(*args, **kwargs)

        wrapper.__profiled_name__ = label
        return wrapper

    if fn is not None:  # bare @profiled form
        return decorate(fn)
    return decorate
