"""Process-wide metrics: counters, gauges, and exponential-bucket histograms.

The archival pipeline is a byte-touching machine whose costs the paper
tabulates (Figure 1's storage axis, Table 1's bands, the Section 3.2
re-encryption arithmetic); this module is how the reproduction *measures*
instead of estimating.  It is dependency-free (stdlib only) so every layer
-- down to the GF(256) substrate -- can record into it without import
cycles or optional extras.

Naming convention (enforced socially, documented in DESIGN.md):

    <subsystem>_<noun>_<unit>

e.g. ``secretsharing_encode_bytes_total``, ``storage_shares_lost_total``,
``span_wall_seconds``.  Counters end in ``_total``; histograms end in their
unit (``_seconds``, ``_bytes``).  Labels qualify a metric without changing
its identity: ``storage_shares_lost_total{reason=offline}``.

Registry discipline: one process-wide registry by default (instrumentation
deep in the library has no instance to hang state on), swappable for test
isolation via :func:`use_registry` / :func:`set_registry`.  Snapshots are
deterministic: plain dicts with sorted keys, no timestamps.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Sequence

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "get_registry",
    "set_registry",
    "use_registry",
    "inc",
    "observe",
    "set_gauge",
]


class Counter:
    """A monotonically increasing count (events, bytes, shares...).

    ``inc`` is a read-modify-write (``self.value += amount`` is a LOAD,
    an ADD, and a STORE the interpreter may interleave), and counters are
    bumped from kernel/batch worker threads -- so it runs under a
    per-counter lock.  Uncontended acquisition is tens of nanoseconds;
    a lost increment is an observability lie that lasts forever.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ParameterError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (objects held, nodes online...).

    ``set`` is a single STORE_ATTR of an immutable float -- last-writer-wins
    is the documented gauge semantics, so it stays lock-free (allowlisted as
    GIL-atomic in ``[tool.archlint.concurrency]``).  ``inc``/``dec`` are
    read-modify-writes and take the per-gauge lock.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Bucket upper bounds ``start * factor**i`` for ``i in range(count)``.

    Exponential buckets cover the microsecond-to-seconds span archival
    operations actually occupy with a fixed, small bucket count.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ParameterError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default duration buckets: 1 us .. ~4 s in x4 steps (12 buckets + overflow).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 4.0, 12)


class Histogram:
    """Distribution sketch: exponential buckets plus count/sum/min/max.

    ``observe`` updates five fields that must stay mutually consistent
    (``sum/count`` is the mean; bucket totals must equal ``count``), so the
    whole update runs under a per-histogram lock -- there is no GIL-atomic
    story for a five-field invariant.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ParameterError("histogram bounds must be sorted and non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        # One extra bucket for observations above the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (q in [0, 1]) from the buckets.

        Linear interpolation inside the bucket holding the quantile rank --
        the standard Prometheus ``histogram_quantile`` estimator -- clamped
        to the observed min/max so tails never extrapolate past real data.
        Deterministic: a pure function of the bucket counts, so two
        identically-seeded runs report byte-identical percentiles.
        """
        if not 0 <= q <= 1:
            raise ParameterError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                value = lower + (upper - lower) * max(fraction, 0.0)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def quantiles(self, qs: Sequence[float]) -> dict[float, float]:
        """``{q: quantile(q)}`` for every *q* in *qs*."""
        return {q: self.quantile(q) for q in qs}


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_name(name: str, label_key: tuple[tuple[str, str], ...]) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds every metric of one measurement domain (usually: the process)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- metric accessors (create on first use) --------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(bounds))
        return metric

    # -- bulk operations -------------------------------------------------------

    def reset(self) -> None:
        """Drop every metric (test isolation; benchmarks between runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """A deterministic, JSON-able view of every metric.

        Counters/gauges map rendered name -> value; histograms map rendered
        name -> ``{count, sum, mean, min, max, buckets}`` where ``buckets``
        is a list of ``[upper_bound, count]`` pairs (only non-empty buckets,
        ``None`` bound for the overflow bucket).

        Safe to call while worker threads record: the registry lock pins the
        metric dicts (a racing first-use ``setdefault`` would otherwise
        resize them mid-iteration), and each histogram is read under its own
        lock so count/sum/buckets are one consistent cut, never a torn view
        where the buckets have an observation the sum hasn't.
        """
        with self._lock:
            counter_items = list(self._counters.items())
            gauge_items = list(self._gauges.items())
            histogram_items = list(self._histograms.items())
        counters = {
            _render_name(name, labels): metric.value
            for (name, labels), metric in counter_items
        }
        gauges = {
            _render_name(name, labels): metric.value
            for (name, labels), metric in gauge_items
        }
        histograms = {}
        for (name, labels), metric in histogram_items:
            bounds = list(metric.bounds) + [None]
            with metric._lock:
                histograms[_render_name(name, labels)] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "buckets": [
                        [bounds[i], c]
                        for i, c in enumerate(metric.bucket_counts)
                        if c
                    ],
                }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


#: The process-wide registry deep instrumentation records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The currently active registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily install *registry* (a fresh one by default) as active.

    The idiom for isolated measurement::

        with use_registry() as reg:
            archive.store("doc", data)
        reg.snapshot()
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# -- module-level shorthands used by instrumentation sites ---------------------
#
# These resolve the active registry per call, so code that pre-imports them
# still records into whatever registry a test has installed.


def inc(name: str, amount: int | float = 1, **labels) -> None:
    _REGISTRY.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels) -> None:
    _REGISTRY.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels) -> None:
    _REGISTRY.gauge(name, **labels).set(value)
