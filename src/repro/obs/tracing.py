"""Nested wall-clock/CPU spans with structured logging output.

A span measures one operation end to end::

    with span("archive.store", object_id="doc") as s:
        ...
    s.wall_s  # seconds elapsed

Spans nest: a ``retrieve`` span opened inside a ``renew`` span records its
parent and depth, so a trace of one maintenance epoch reads as a tree.  On
exit every span

- feeds ``span_wall_seconds{span=<name>}`` and ``span_cpu_seconds{span=...}``
  histograms plus a ``spans_total{span=...}`` counter in the active
  :mod:`repro.obs.metrics` registry, and
- emits one structured DEBUG line on the ``repro.obs.trace`` logger
  (``span=<name> depth=<d> wall_ms=<w> cpu_ms=<c> ...labels``), so tracing
  costs nothing unless that logger is enabled.

Thread safety: the span stack is thread-local; concurrent threads produce
independent trees over the shared registry.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager

from repro.obs import metrics

__all__ = ["Span", "span", "current_span"]

logger = logging.getLogger("repro.obs.trace")

_STACK = threading.local()


def _stack() -> list["Span"]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


class Span:
    """One timed operation; exposed while open and after close."""

    __slots__ = (
        "name",
        "labels",
        "parent",
        "depth",
        "children",
        "wall_s",
        "cpu_s",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(self, name: str, labels: dict, parent: "Span | None"):
        self.name = name
        self.labels = labels
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        if parent is not None:
            parent.children.append(self)

    def _close(self) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, depth={self.depth}, "
            f"wall_ms={self.wall_s * 1e3:.3f}, children={len(self.children)})"
        )


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **labels):
    """Open a named span; on exit record its timings and log one line."""
    s = Span(name, labels, current_span())
    stack = _stack()
    stack.append(s)
    try:
        yield s
    finally:
        stack.pop()
        s._close()
        metrics.inc("spans_total", span=name)
        metrics.observe("span_wall_seconds", s.wall_s, span=name)
        metrics.observe("span_cpu_seconds", s.cpu_s, span=name)
        if logger.isEnabledFor(logging.DEBUG):
            extra = "".join(f" {k}={v}" for k, v in sorted(labels.items()))
            logger.debug(
                "span=%s depth=%d wall_ms=%.3f cpu_ms=%.3f%s",
                name,
                s.depth,
                s.wall_s * 1e3,
                s.cpu_s * 1e3,
                extra,
            )
