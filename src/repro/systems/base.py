"""Common machinery for the Table 1 archival systems.

Each system is a client-side pipeline over a fleet of
:class:`repro.storage.node.StorageNode` instances:

    plaintext --encode--> share payloads --transit channel--> nodes

The base class owns the plumbing every system shares -- placement, the
transit transcript (what an eavesdropper on the wire collects), storage
accounting, and the adversary-facing hooks -- so each subclass is mostly its
encoding pipeline plus its harvest semantics.

Adversary hooks
---------------
``transcript``
    Every wire transmission ever sent, for the harvesting adversary.
``steal_at_rest(object_id, share_indices)``
    The at-rest haul a compromise of those nodes yields.
``attempt_recovery(stolen, timeline, epoch)``
    What that haul is worth: returns plaintext or raises while the system's
    defenses hold.  Computational systems gate on the break timeline via the
    escrow convention (see ``repro.channels.base``); information-theoretic
    systems gate on share counts only.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.channels.base import Transmission
from repro.channels.tls import TlsLikeChannel
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.errors import ObjectNotFoundError, ParameterError
from repro.obs import metrics as _metrics
from repro.security import SecurityNotion, StorageCostBand
from repro.storage.faults import DegradedReadReport
from repro.storage.node import StorageNode
from repro.storage.placement import Placement, PlacementPolicy


@dataclass
class StoreReceipt:
    """Everything the system retains client-side about one stored object."""

    object_id: str
    original_length: int
    placement: Placement
    #: Scheme-specific public metadata (share counts, masked values...).
    metadata: dict = field(default_factory=dict)
    #: Sealed simulation-only material read through the escrow convention.
    escrow: dict = field(default_factory=dict, repr=False)


@dataclass
class TranscriptEntry:
    node_id: str
    object_id: str
    transmission: Transmission


class ArchivalSystem(abc.ABC):
    """Base class: subclasses set the class attributes and the pipeline."""

    #: Human name as it appears in Table 1.
    name: str = "abstract"
    #: Citation key from the paper.
    citation: str = ""
    #: Registry names of the primitives at-rest confidentiality rests on
    #: (empty tuple = information-theoretic at rest).
    at_rest_relies_on: tuple[str, ...] = ()

    def __init__(
        self,
        nodes: list[StorageNode],
        rng: DeterministicRandom,
        require_distinct_providers: bool = True,
    ):
        if not nodes:
            raise ParameterError("an archival system needs storage nodes")
        self.nodes = nodes
        self.rng = rng
        self.placement_policy = PlacementPolicy(
            nodes, require_distinct_providers=require_distinct_providers
        )
        self.transit = self._make_transit_channel()
        self.transcript: list[TranscriptEntry] = []
        self._receipts: dict[str, StoreReceipt] = {}
        self._plaintext_bytes = 0
        self.epoch = 0
        #: Degraded-read report of the most recent fetch (None before any).
        self.last_read_report: DegradedReadReport | None = None
        #: Tier migrator (repro.storage.tiering.TierMigrator) when tiering
        #: is enabled; None keeps placement untiered and byte-identical.
        self.tiering = None

    # -- transit -------------------------------------------------------------------

    def _make_transit_channel(self):
        """Default transit is TLS-like; LINCOS overrides with QKD."""
        return TlsLikeChannel(self.rng)

    @property
    def transit_security(self) -> SecurityNotion:
        return self.transit.notion

    def _send_share(self, node: StorageNode, object_id: str, index: int, payload: bytes) -> None:
        """Ship one share over the transit channel and store it."""
        transmission = self.transit.send(payload)
        self.transcript.append(
            TranscriptEntry(
                node_id=node.node_id, object_id=object_id, transmission=transmission
            )
        )
        delivered = self.transit.receive(transmission)
        self.placement_policy.put_with_retry(
            node, f"{object_id}/share-{index}", delivered, epoch=self.epoch
        )

    def _store_shares(
        self, object_id: str, payload_by_index: dict[int, bytes]
    ) -> Placement:
        tier_layout = None
        if self.tiering is not None:
            tier_layout = self.tiering.layout_for(object_id, sorted(payload_by_index))
        placement = self.placement_policy.place(
            object_id, sorted(payload_by_index), tier_layout=tier_layout
        )
        for index, node_id in placement.node_by_share.items():
            self._send_share(
                self.placement_policy.node(node_id),
                object_id,
                index,
                payload_by_index[index],
            )
        return placement

    def _fetch_shares(
        self, receipt: StoreReceipt, need: int | None = None
    ) -> dict[int, bytes]:
        """Degraded-read fetch: stop once *need* decodable shares arrived.

        The per-fetch :class:`DegradedReadReport` lands in
        :attr:`last_read_report`; systems finish their retrieve with
        :meth:`_finish_read` so corrupted shares get repaired on read.
        """
        shares, report = self.placement_policy.fetch_degraded(
            receipt.placement, need=need
        )
        self.last_read_report = report
        return shares

    def _finish_read(self, object_id: str, data: bytes) -> bytes:
        """Post-decode hook every retrieve runs: schedule repair-on-read
        for shares whose integrity check failed during the fetch."""
        report = self.last_read_report
        if report is not None and report.repair_candidates and not report.shares_repaired:
            self._repair_on_read(object_id, data, report)
            self.last_read_report = report
        return data

    def _repair_on_read(
        self, object_id: str, data: bytes, report: DegradedReadReport
    ) -> None:
        """Replace a degraded object's shares with a fresh encoding.

        The generic repair is a re-store: drop the old placement (including
        the rotted shares that failed their digests) and run the system's
        own ``store`` pipeline again with the just-decoded plaintext.
        Subclasses with a cheaper re-encode path override this.
        """
        receipt = self.receipt(object_id)
        self.placement_policy.delete(receipt.placement)
        plaintext_bytes = self._plaintext_bytes
        # Drop the stale receipt so the re-store records cleanly (a repair
        # is the one legitimate same-id store; _record rejects all others).
        del self._receipts[object_id]
        self._repair_store(object_id, data)
        # A repair is not new ingest; keep the overhead accounting honest.
        self._plaintext_bytes = plaintext_bytes
        report.shares_repaired = len(report.repair_candidates)
        _metrics.inc("repairs_on_read_total", report.shares_repaired)

    def _repair_store(self, object_id: str, data: bytes) -> None:
        """The store call a repair uses; systems whose ``store`` takes
        per-object parameters override this to preserve them."""
        self.store(object_id, data)

    def retrieve_with_report(
        self, object_id: str
    ) -> tuple[bytes, DegradedReadReport | None]:
        """Retrieve plus the degraded-read report of that retrieval."""
        self.last_read_report = None
        data = self.retrieve(object_id)
        return data, self.last_read_report

    # -- public API ------------------------------------------------------------------

    @abc.abstractmethod
    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        """Encode and disperse *data*; returns (and records) the receipt."""

    @abc.abstractmethod
    def retrieve(self, object_id: str) -> bytes:
        """Fetch shares and decode the object."""

    def receipt(self, object_id: str) -> StoreReceipt:
        try:
            return self._receipts[object_id]
        except KeyError:
            raise ObjectNotFoundError(f"{self.name}: no object {object_id!r}") from None

    def _record(self, receipt: StoreReceipt) -> StoreReceipt:
        # A silent overwrite would orphan the old object's shares on the
        # nodes and double-count plaintext bytes, corrupting
        # storage_overhead(); duplicate ids are a caller error.
        if receipt.object_id in self._receipts:
            raise ParameterError(
                f"{self.name}: object {receipt.object_id!r} already stored "
                "(delete it before re-storing)"
            )
        self._receipts[receipt.object_id] = receipt
        self._plaintext_bytes += receipt.original_length
        return receipt

    # -- measured classification (feeds the Table 1 bench) ------------------------------

    def storage_overhead(self) -> float:
        """Measured stored-bytes / plaintext-bytes across all objects."""
        if self._plaintext_bytes == 0:
            raise ParameterError("store something before measuring overhead")
        return self.placement_policy.total_bytes_stored() / self._plaintext_bytes

    def storage_cost_band(self) -> StorageCostBand:
        return StorageCostBand.classify_overhead(self.storage_overhead())

    @property
    def at_rest_security(self) -> SecurityNotion:
        if not self.at_rest_relies_on:
            return SecurityNotion.INFORMATION_THEORETIC
        return SecurityNotion.COMPUTATIONAL

    # -- adversary hooks ------------------------------------------------------------------

    def steal_at_rest(
        self, object_id: str, share_indices: list[int] | None = None
    ) -> dict[int, bytes]:
        """What compromising the nodes holding those shares yields."""
        receipt = self.receipt(object_id)
        stolen: dict[int, bytes] = {}
        for index, node_id in receipt.placement.node_by_share.items():
            if share_indices is not None and index not in share_indices:
                continue
            node = self.placement_policy.node(node_id)
            haul = node.adversary_read_all(self.epoch)
            key = f"{object_id}/share-{index}"
            if key in haul:
                stolen[index] = haul[key]
        return stolen

    @abc.abstractmethod
    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        """Adversary's decode of *stolen* at *epoch*; raise while secure."""

    def at_rest_breakable(self, timeline: BreakTimeline, epoch: int) -> bool:
        """Are all primitives the at-rest encoding relies on broken?"""
        if not self.at_rest_relies_on:
            return False
        return all(timeline.is_broken(p, epoch) for p in self.at_rest_relies_on)

    def _require_at_rest_broken(self, timeline: BreakTimeline, epoch: int) -> None:
        from repro.errors import StillSecureError

        if not self.at_rest_breakable(timeline, epoch):
            raise StillSecureError(
                f"{self.name}: at-rest primitives {self.at_rest_relies_on} "
                f"still hold at epoch {epoch}"
            )
