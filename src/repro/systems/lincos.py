"""LINCOS (Braun et al., ASIA CCS '17).

"LINCOS: A Storage System Providing Long-Term Integrity, Authenticity, and
Confidentiality" -- the paper's exemplar of the all-information-theoretic
corner: Table 1 classifies it ITS in transit, ITS at rest, High cost.

The three pillars, all implemented:

- **at rest**: Shamir-shared objects across independent providers;
- **in transit**: QKD links deliver one-time pads to each provider; sends
  block on available key material, so the system surfaces the paper's
  "specialized infrastructure / engineering challenges" as measurable key
  generation time and per-link cost;
- **integrity**: a timestamp chain whose references are *Pedersen
  commitments* rather than hashes -- LINCOS's "key observation", keeping
  the chain from leaking anything about the committed data even to an
  unbounded adversary.
"""

from __future__ import annotations

from repro.channels.qkd import QkdLink
from repro.crypto.commitments import PedersenCommitment
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError
from repro.integrity.timestamp import (
    MerkleChainSigner,
    TimestampAuthority,
    TimestampChain,
)
from repro.secretsharing.base import Share
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.systems.base import ArchivalSystem, StoreReceipt


class Lincos(ArchivalSystem):
    """QKD transit + Shamir storage + commitment timestamp chain."""

    name = "LINCOS"
    citation = "[12]"
    at_rest_relies_on = ()  # Shamir: information-theoretic

    def __init__(self, nodes, rng, n: int = 5, t: int = 3, qkd_key_rate: float = 1e6):
        # Needed by _make_transit_channel, which the base __init__ calls.
        self.qkd_key_rate = qkd_key_rate
        super().__init__(nodes, rng)
        self.scheme = ShamirSecretSharing(n, t)
        self.commitments = PedersenCommitment()
        self.chain = TimestampChain()
        self.authority = TimestampAuthority(MerkleChainSigner(rng, height=6))
        self.key_generation_seconds = 0.0

    def _make_transit_channel(self):
        return QkdLink(self.rng, key_rate_bytes_per_s=self.qkd_key_rate)

    def _send_share(self, node, object_id, index, payload):
        # QKD pads are consumable: generate exactly what this send needs and
        # account for the wall-clock the link spends doing it.
        needed = self.transit.seconds_needed_for(len(payload))
        if needed > 0:
            self.transit.advance_time(needed)
            self.key_generation_seconds += needed
        super()._send_share(node, object_id, index, payload)

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        split = self.scheme.split(data, self.rng)
        payloads = {share.index: share.payload for share in split.shares}
        placement = self._store_shares(object_id, payloads)
        # Timestamp the object under a perfectly hiding commitment.
        link, opening = self.authority.timestamp_document(
            self.chain,
            data,
            epoch=self.epoch,
            reference_kind="pedersen",
            pedersen=self.commitments,
            rng=self.rng,
        )
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "n": self.scheme.n,
                "t": self.scheme.t,
                "chain_index": link.index,
            },
            escrow={"commitment_opening": opening},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: any t shares reconstruct the polynomial.
        fetched = self._fetch_shares(receipt, need=self.scheme.t)
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in fetched.items()
        ]
        if len(shares) < self.scheme.t:
            raise DecodingError(
                f"{object_id}: only {len(shares)} shares available, "
                f"need {self.scheme.t}"
            )
        data = self.scheme.reconstruct(shares)[: receipt.original_length]
        return self._finish_read(object_id, data)

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        """ITS at rest: only a threshold of shares ever works."""
        del timeline, epoch
        receipt = self.receipt(object_id)
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in stolen.items()
        ]
        return self.scheme.reconstruct(shares)[: receipt.original_length]

    # -- integrity service --------------------------------------------------------------

    def renew_chain(self, epoch: int) -> None:
        self.authority.renew_chain(self.chain, epoch)
