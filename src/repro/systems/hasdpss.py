"""HasDPSS (Zhang et al., CIKM '23): decentralized key management with
dynamic proactive secret sharing over a ledger.

Table 1: Computational transit / ITS at rest / High cost.  The paper's
Section 4 points at HasDPSS as evidence that "the concrete design and
implementation of secret-shared archives may benefit from the literature on
key-management systems".

Modeled components:

- **data plane**: archived objects are Shamir-shared across the committee's
  storage nodes (ITS at rest, n-times cost);
- **key plane**: a master secret lives in a :class:`ProactiveVSS` group;
  per-object authentication tags derive from it through the **hierarchical
  access structure** (a path-keyed HKDF tree: holding a folder's derived key
  grants its subtree, nothing above it);
- **ledger**: every deal's Pedersen commitments and every committee change
  are recorded on the simulated blockchain, so any party can audit share
  validity without learning anything (the commitments are perfectly hiding);
- **dynamism**: :meth:`change_committee` redistributes the data shares to a
  new (n', t') and re-deals the key plane, recording the epoch on the
  ledger.
"""

from __future__ import annotations

from repro.crypto.hmac_ import hmac_sha256
from repro.crypto.kdf import derive_subkey
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, IntegrityError, ParameterError
from repro.secretsharing.base import Share
from repro.secretsharing.redistribution import redistribute
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.secretsharing.verifiable import ProactiveVSS
from repro.systems.base import ArchivalSystem, StoreReceipt
from repro.systems.ledger import LedgerEntry, SimulatedLedger


class HasDpss(ArchivalSystem):
    """DPSS-managed archive with hierarchical access and a ledger."""

    name = "HasDPSS"
    citation = "[70]"
    at_rest_relies_on = ()

    def __init__(self, nodes, rng, n: int = 5, t: int = 3):
        super().__init__(nodes, rng)
        self.scheme = ShamirSecretSharing(n, t)
        self.ledger = SimulatedLedger()
        self.key_plane = ProactiveVSS(n, t)
        master = rng.randrange(1, self.key_plane.vss.group.q)
        self.key_plane.initialize(master, rng)
        self._master_bytes = master.to_bytes(32, "big")
        self.ledger.append(
            [
                LedgerEntry(
                    kind="key-deal",
                    content={
                        "commitments": [str(c) for c in self.key_plane.commitments],
                        "n": n,
                        "t": t,
                    },
                )
            ]
        )

    # -- hierarchical access structure -------------------------------------------------

    def derive_path_key(self, path: str) -> bytes:
        """Key for *path*; deriving from an ancestor's key works too, so a
        folder grant covers its subtree (hierarchical access structure)."""
        key = self._master_bytes
        for component in [p for p in path.split("/") if p]:
            key = derive_subkey(key, f"child:{component}")
        return key

    @staticmethod
    def derive_descendant_key(ancestor_key: bytes, relative_path: str) -> bytes:
        key = ancestor_key
        for component in [p for p in relative_path.split("/") if p]:
            key = derive_subkey(key, f"child:{component}")
        return key

    # -- store / retrieve ------------------------------------------------------------------

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        split = self.scheme.split(data, self.rng)
        payloads = {s.index: s.payload for s in split.shares}
        placement = self._store_shares(object_id, payloads)
        # Authentication tag under the object's hierarchical key, recorded
        # on the ledger so retrievals can be audited.
        tag = hmac_sha256(self.derive_path_key(object_id), data)
        self.ledger.append(
            [
                LedgerEntry(
                    kind="object",
                    content={
                        "object_id": object_id,
                        "tag": tag.hex(),
                        "n": self.scheme.n,
                        "t": self.scheme.t,
                    },
                )
            ]
        )
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={"n": self.scheme.n, "t": self.scheme.t, "tag": tag.hex()},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: any t committee shares reconstruct.
        fetched = self._fetch_shares(receipt, need=receipt.metadata["t"])
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in fetched.items()
        ]
        scheme = ShamirSecretSharing(receipt.metadata["n"], receipt.metadata["t"])
        if len(shares) < scheme.t:
            raise DecodingError(
                f"{object_id}: need {scheme.t} shares, have {len(shares)}"
            )
        data = scheme.reconstruct(shares)[: receipt.original_length]
        expected = hmac_sha256(self.derive_path_key(object_id), data)
        if expected.hex() != receipt.metadata["tag"]:
            raise IntegrityError(f"{object_id}: authentication tag mismatch")
        return self._finish_read(object_id, data)

    # -- dynamism ------------------------------------------------------------------------------

    def change_committee(self, new_n: int, new_t: int) -> None:
        """DPSS committee change: redistribute data shares, re-deal keys."""
        if not 1 <= new_t <= new_n:
            raise ParameterError(f"invalid committee parameters n={new_n} t={new_t}")
        new_scheme = ShamirSecretSharing(new_n, new_t)
        for object_id in list(self._receipts):
            receipt = self.receipt(object_id)
            old_scheme = ShamirSecretSharing(
                receipt.metadata["n"], receipt.metadata["t"]
            )
            fetched = self._fetch_shares(receipt)
            old_shares = [
                Share(scheme="shamir", index=i, payload=p)
                for i, p in fetched.items()
            ]
            new_split, _ = redistribute(
                old_scheme, old_shares, new_scheme, receipt.original_length, self.rng
            )
            self.placement_policy.delete(receipt.placement)
            receipt.placement = self._store_shares(
                object_id, {s.index: s.payload for s in new_split.shares}
            )
            receipt.metadata.update({"n": new_n, "t": new_t})
        # Key plane: fresh proactive round plus a new deal record.
        self.key_plane.renew(self.rng)
        self.scheme = new_scheme
        self.ledger.append(
            [
                LedgerEntry(
                    kind="committee-change",
                    content={
                        "n": new_n,
                        "t": new_t,
                        "commitments": [str(c) for c in self.key_plane.commitments],
                    },
                )
            ]
        )

    def audit_ledger(self) -> None:
        self.ledger.verify()

    # -- adversary ---------------------------------------------------------------------------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        del timeline, epoch
        receipt = self.receipt(object_id)
        scheme = ShamirSecretSharing(receipt.metadata["n"], receipt.metadata["t"])
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in stolen.items()
        ]
        return scheme.reconstruct(shares)[: receipt.original_length]
