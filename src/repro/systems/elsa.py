"""An ELSA-style archive: share the keys, encrypt the data (Muth et al.).

The paper cites ELSA ("efficient long-term secure storage of large
datasets") among the LINCOS follow-ups.  Its engineering idea is the one
every practical secret-shared archive gravitates to: bulk data is encrypted
once with a fast symmetric cipher and stored erasure-coded (cheap), while
only the *keys* live in a proactively renewed verifiable-secret-sharing
committee (expensive machinery, but over 32-byte secrets).

This system is included as an extension beyond Table 1 because it is the
cleanest illustration of the paper's trade-off *inside* one design:

- storage overhead ~ n/k (low!), key-plane costs are negligible;
- proactive key renewal is cheap (scalar VSS, not n^2 x object bytes);
- BUT the bulk ciphertext is computationally protected, so a harvesting
  adversary who steals shards today decrypts them when the cipher falls --
  the key committee's information-theoretic security protects the *keys*,
  not the harvested *data*.  `attempt_recovery` reproduces exactly that
  split: threshold-many key shares open everything immediately; otherwise
  recovery waits for the cipher's break epoch.
"""

from __future__ import annotations

from repro.crypto.aes import AesCtrCipher
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, ParameterError
from repro.gmath.reedsolomon import ReedSolomonCode, Shard
from repro.secretsharing.verifiable import ProactiveVSS
from repro.systems.base import ArchivalSystem, StoreReceipt

#: VSS escrow limb width (see KeyManager.ESCROW_LIMB_BYTES rationale).
_LIMB = 15


class ElsaStyleArchive(ArchivalSystem):
    """Erasure-coded symmetric data plane + proactive-VSS key plane."""

    name = "ELSA-style"
    citation = "[47]"
    at_rest_relies_on = ("aes-256-ctr",)

    def __init__(self, nodes, rng, n: int = 6, k: int = 4, key_committee_t: int = 3):
        super().__init__(nodes, rng)
        if not 1 <= k < n:
            raise ParameterError(f"need 1 <= k < n, got n={n} k={k}")
        self.code = ReedSolomonCode(n, k)
        self.cipher = AesCtrCipher(key_size=32)
        self.committee_n = n
        self.committee_t = key_committee_t
        #: Per object: the VSS groups holding its key limbs.
        self._key_groups: dict[str, list[ProactiveVSS]] = {}
        self.key_plane_renewals = 0

    # -- key plane -------------------------------------------------------------------

    def _escrow_key(self, object_id: str, key: bytes) -> None:
        groups = []
        for offset in range(0, len(key), _LIMB):
            group = ProactiveVSS(self.committee_n, self.committee_t)
            group.initialize(int.from_bytes(key[offset : offset + _LIMB], "big"), self.rng)
            groups.append(group)
        self._key_groups[object_id] = groups

    def _recover_key(self, object_id: str) -> bytes:
        key = b""
        remaining = 32
        for group in self._key_groups[object_id]:
            limb_len = min(_LIMB, remaining)
            key += group.reconstruct().to_bytes(limb_len, "big")
            remaining -= limb_len
        return key

    def renew_key_plane(self) -> None:
        """Proactive renewal of every object's key committee -- note the
        cost: a few scalar messages per object, independent of object size.
        This is ELSA's entire efficiency claim."""
        for groups in self._key_groups.values():
            for group in groups:
                group.renew(self.rng)
        self.key_plane_renewals += 1

    # -- data plane -------------------------------------------------------------------

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        key = self.rng.bytes(32)
        nonce = self.rng.bytes(12)
        ciphertext = self.cipher.encrypt(key, nonce, data)
        self._escrow_key(object_id, key)
        shards = self.code.encode(ciphertext)
        payloads = {shard.index: shard.data for shard in shards}
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "n": self.code.n,
                "k": self.code.k,
                "nonce": nonce.hex(),
                "ciphertext_length": len(ciphertext),
                "threshold": self.code.k,
            },
            escrow={"key": key},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: any k erasure shards decode the ciphertext.
        fetched = self._fetch_shares(receipt, need=self.code.k)
        if len(fetched) < self.code.k:
            raise DecodingError(
                f"{object_id}: only {len(fetched)} shards available, "
                f"need {self.code.k}"
            )
        shards = [Shard(index=i, data=p) for i, p in fetched.items()]
        ciphertext = self.code.decode(shards, receipt.metadata["ciphertext_length"])
        key = self._recover_key(object_id)
        nonce = bytes.fromhex(receipt.metadata["nonce"])
        return self._finish_read(
            object_id, self.cipher.decrypt(key, nonce, ciphertext)
        )

    # -- adversary --------------------------------------------------------------------

    def steal_key_shares(self, object_id: str, count: int) -> dict[int, list]:
        """Compromise *count* key-committee members (all limbs each)."""
        groups = self._key_groups[object_id]
        stolen: dict[int, list] = {}
        for index in list(range(1, self.committee_n + 1))[:count]:
            stolen[index] = [group.shares()[index] for group in groups]
        return stolen

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
        stolen_key_shares: dict[int, list] | None = None,
    ) -> bytes:
        receipt = self.receipt(object_id)
        if len(stolen) < self.code.k:
            raise DecodingError(
                f"{object_id}: adversary needs {self.code.k} shards "
                f"for the ciphertext"
            )
        shards = [Shard(index=i, data=p) for i, p in stolen.items()]
        ciphertext = self.code.decode(shards, receipt.metadata["ciphertext_length"])
        nonce = bytes.fromhex(receipt.metadata["nonce"])

        if stolen_key_shares and len(stolen_key_shares) >= self.committee_t:
            # Threshold compromise of the key committee: reconstruct the key
            # the honest way -- no cryptanalysis involved.
            groups = self._key_groups[object_id]
            key = b""
            remaining = 32
            for limb_index, group in enumerate(groups):
                limb_shares = [
                    shares[limb_index] for shares in stolen_key_shares.values()
                ]
                limb_len = min(_LIMB, remaining)
                value = group.vss.reconstruct(limb_shares)
                # Honest limbs always fit (15 bytes < q); a stale/mixed haul
                # reconstructs an arbitrary group element -- truncate rather
                # than crash, since garbage-in is the expected outcome.
                value %= 1 << (8 * limb_len)
                key += value.to_bytes(limb_len, "big")
                remaining -= limb_len
            return self.cipher.decrypt(key, nonce, ciphertext)

        # Otherwise: harvested ciphertext waits for the cipher to fall.
        self._require_at_rest_broken(timeline, epoch)
        return self.cipher.decrypt(receipt.escrow["key"], nonce, ciphertext)
