"""PASIS (Ganger et al., CMU): the configurable threshold-scheme engine.

Paper, Sections 3.2/4: PASIS "investigated several approaches but left users
to decide which one was best for their data" -- the original "no one size
fits all" position.  Table 1 reflects that: at-rest confidentiality "ITS
(sometimes)", storage cost "Low-High", both depending on the per-object
policy.

Three policies, selectable per stored object:

- ``REPLICATION`` -- r full copies: no confidentiality, lowest complexity;
- ``ERASURE`` -- systematic [n, k] Reed-Solomon: no confidentiality (the
  first k shards are plaintext), n/k cost;
- ``SHAMIR`` -- (t, n) secret sharing: perfect secrecy, n-times cost.

The measured Table 1 row therefore depends on the workload mix, which is
exactly what the benchmark demonstrates by sweeping it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, ParameterError
from repro.gmath.reedsolomon import ReedSolomonCode, Shard
from repro.secretsharing.base import Share
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.security import SecurityNotion
from repro.systems.base import ArchivalSystem, StoreReceipt


class PasisPolicy(enum.Enum):
    REPLICATION = "replication"
    ERASURE = "erasure"
    SHAMIR = "shamir"

    @property
    def confidential(self) -> bool:
        return self is PasisPolicy.SHAMIR


@dataclass(frozen=True)
class PasisParameters:
    policy: PasisPolicy
    n: int
    threshold: int  # copies needed / k / t depending on policy


class Pasis(ArchivalSystem):
    """Per-object policy engine over a shared provider fleet."""

    name = "PASIS"
    citation = "[27]"
    at_rest_relies_on = ()  # resolved per object; see at_rest_security_for

    def __init__(self, nodes, rng, default_parameters: PasisParameters | None = None):
        super().__init__(nodes, rng)
        self.default_parameters = default_parameters or PasisParameters(
            PasisPolicy.SHAMIR, n=5, threshold=3
        )
        self._parameters: dict[str, PasisParameters] = {}

    # -- policy-dependent classification ------------------------------------------------

    def at_rest_security_for(self, object_id: str) -> SecurityNotion:
        params = self._parameters[object_id]
        if params.policy.confidential:
            return SecurityNotion.INFORMATION_THEORETIC
        return SecurityNotion.NONE

    @property
    def at_rest_security(self) -> SecurityNotion:
        """Fleet-level answer: ITS only if *every* stored object used a
        confidential policy -- Table 1's 'ITS (sometimes)'."""
        if not self._parameters:
            return SecurityNotion.NONE
        notions = {self.at_rest_security_for(oid) for oid in self._parameters}
        if notions == {SecurityNotion.INFORMATION_THEORETIC}:
            return SecurityNotion.INFORMATION_THEORETIC
        return SecurityNotion.NONE

    # -- store / retrieve ------------------------------------------------------------------

    def store(
        self,
        object_id: str,
        data: bytes,
        parameters: PasisParameters | None = None,
    ) -> StoreReceipt:
        params = parameters or self.default_parameters
        payloads = self._encode(data, params)
        placement = self._store_shares(object_id, payloads)
        self._parameters[object_id] = params
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "policy": params.policy.value,
                "n": params.n,
                "threshold": params.threshold,
            },
        )
        return self._record(receipt)

    def _encode(self, data: bytes, params: PasisParameters) -> dict[int, bytes]:
        if params.policy is PasisPolicy.REPLICATION:
            if params.n < 1:
                raise ParameterError("replication needs n >= 1")
            return {i: data for i in range(params.n)}
        if params.policy is PasisPolicy.ERASURE:
            code = ReedSolomonCode(params.n, params.threshold)
            return {s.index: s.data for s in code.encode(data)}
        scheme = ShamirSecretSharing(params.n, params.threshold)
        return {s.index: s.payload for s in scheme.split(data, self.rng).shares}

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: the per-object policy's threshold is the quorum.
        fetched = self._fetch_shares(receipt, need=receipt.metadata["threshold"])
        return self._finish_read(
            object_id, self._decode(object_id, fetched, receipt.original_length)
        )

    def _repair_store(self, object_id: str, data: bytes) -> None:
        # Repair must keep the object's own policy, not the default one.
        self.store(object_id, data, self._parameters[object_id])

    def _decode(
        self, object_id: str, shares: dict[int, bytes], original_length: int
    ) -> bytes:
        params = self._parameters[object_id]
        if not shares:
            raise DecodingError(f"{object_id}: no shares available")
        if params.policy is PasisPolicy.REPLICATION:
            return next(iter(shares.values()))[:original_length]
        if params.policy is PasisPolicy.ERASURE:
            code = ReedSolomonCode(params.n, params.threshold)
            shards = [Shard(index=i, data=p) for i, p in shares.items()]
            return code.decode(shards, original_length)
        scheme = ShamirSecretSharing(params.n, params.threshold)
        share_objs = [
            Share(scheme="shamir", index=i, payload=p) for i, p in shares.items()
        ]
        return scheme.reconstruct(share_objs)[:original_length]

    # -- adversary ------------------------------------------------------------------------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        """Replication/erasure yield plaintext immediately (no
        confidentiality); Shamir requires a threshold -- and never breaks."""
        del timeline, epoch
        receipt = self.receipt(object_id)
        return self._decode(object_id, stolen, receipt.original_length)
