"""A simulated append-only ledger (the HasDPSS 'blockchain' substrate).

HasDPSS "leverages modern blockchain and proactive secret-sharing
techniques to realize a robust and decentralized key-management system"
(paper Section 4).  What the key-management protocol actually needs from a
blockchain is narrow: an immutable, highly available public bulletin board
for share commitments and committee-change records.  This module provides
exactly that surface (see DESIGN.md's substitution table): hash-chained
blocks, append/verify, and tamper detection -- no consensus simulation,
because a single logical ledger with integrity checking exercises the same
client code paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.sha256 import sha256_hex
from repro.errors import IntegrityError, ParameterError


@dataclass(frozen=True)
class LedgerEntry:
    """One record: an opaque kind tag plus JSON-serializable content."""

    kind: str
    content: dict

    def canonical(self) -> str:
        return json.dumps(
            {"kind": self.kind, "content": self.content}, sort_keys=True
        )


@dataclass
class Block:
    height: int
    prev_hash: str
    entries: list[LedgerEntry]

    def block_hash(self) -> str:
        body = self.prev_hash + "|" + "|".join(e.canonical() for e in self.entries)
        return sha256_hex(f"{self.height}:{body}".encode())


class SimulatedLedger:
    """Hash-chained append-only log with integrity verification."""

    GENESIS_HASH = "0" * 64

    def __init__(self) -> None:
        self._blocks: list[Block] = []

    @property
    def height(self) -> int:
        return len(self._blocks)

    @property
    def head_hash(self) -> str:
        if not self._blocks:
            return self.GENESIS_HASH
        return self._blocks[-1].block_hash()

    def append(self, entries: list[LedgerEntry]) -> Block:
        if not entries:
            raise ParameterError("a block needs at least one entry")
        block = Block(
            height=self.height, prev_hash=self.head_hash, entries=list(entries)
        )
        self._blocks.append(block)
        return block

    def entries(self, kind: str | None = None) -> list[LedgerEntry]:
        out = []
        for block in self._blocks:
            for entry in block.entries:
                if kind is None or entry.kind == kind:
                    out.append(entry)
        return out

    def verify(self) -> None:
        """Raise IntegrityError if any block fails the hash chain."""
        prev = self.GENESIS_HASH
        for expected_height, block in enumerate(self._blocks):
            if block.height != expected_height:
                raise IntegrityError(f"block height {block.height} out of sequence")
            if block.prev_hash != prev:
                raise IntegrityError(f"block {block.height} breaks the hash chain")
            prev = block.block_hash()

    def tamper(self, height: int, entry_index: int, new_content: dict) -> None:
        """Adversarial in-place edit -- verify() must catch it afterwards."""
        block = self._blocks[height]
        old = block.entries[entry_index]
        block.entries[entry_index] = LedgerEntry(kind=old.kind, content=new_content)
