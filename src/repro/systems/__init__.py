"""The archival systems surveyed in Table 1, each as a working pipeline.

Every system here implements the same :class:`repro.systems.base.ArchivalSystem`
interface -- store / retrieve over dispersed storage nodes through an
explicit transit channel -- so the Table 1 benchmark can *measure* each
row's classification (confidentiality in transit, at rest, storage cost)
instead of transcribing it:

========================  =======================  ==================  ==========
System                    In transit               At rest             Cost
========================  =======================  ==================  ==========
ArchiveSafeLT             Computational (TLS)      Computational       Low
AONT-RS                   Computational (TLS)      Computational       Low
HasDPSS                   Computational (TLS)      ITS                 High
LINCOS                    ITS (QKD)                ITS                 High
PASIS                     Computational (TLS)      ITS (sometimes)     Low-High
POTSHARDS                 Computational (TLS)      ITS                 High
VSR Archive               Computational (TLS)      ITS                 High
AWS/Azure/Google Cloud    Computational (TLS)      Computational       Low
========================  =======================  ==================  ==========

A ninth system, :class:`repro.systems.elsa.ElsaStyleArchive`, extends the
table with the ELSA design point the paper cites as a LINCOS follow-up
(cheap erasure-coded data plane, proactive-VSS key plane).
"""

from repro.systems.base import ArchivalSystem, StoreReceipt
from repro.systems.cloud import CloudProviderArchive
from repro.systems.archivesafelt import ArchiveSafeLT
from repro.systems.aontrs_system import AontRsArchive
from repro.systems.potshards import Potshards
from repro.systems.lincos import Lincos
from repro.systems.pasis import Pasis, PasisPolicy
from repro.systems.vsr import VsrArchive
from repro.systems.hasdpss import HasDpss
from repro.systems.elsa import ElsaStyleArchive

__all__ = [
    "ArchivalSystem",
    "StoreReceipt",
    "CloudProviderArchive",
    "ArchiveSafeLT",
    "AontRsArchive",
    "Potshards",
    "Lincos",
    "Pasis",
    "PasisPolicy",
    "VsrArchive",
    "HasDpss",
    "ElsaStyleArchive",
]
