"""The commercial-cloud baseline: "simply uses AES".

Paper, Section 3.2: "apart from AONT-RS, every other commercially available
archival system we are aware of simply uses AES (e.g., AWS, Google Cloud,
Azure)."  Table 1 files them together: Computational / Computational / Low.

The model: one provider (no administrative dispersal), AES-256-CTR at rest
with a provider-managed key (the KMS), TLS in transit, an optional internal
replication factor for durability.  The harvest path is the pure form of
Harvest Now, Decrypt Later: steal the ciphertext whenever, wait for the AES
break epoch, decrypt -- the KMS key is irrelevant to a cryptanalytic
adversary, which is the paper's whole point.
"""

from __future__ import annotations

from repro.crypto.aes import AesCtrCipher
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError
from repro.systems.base import ArchivalSystem, StoreReceipt


class CloudProviderArchive(ArchivalSystem):
    """AWS/Azure/GCS-style archive: AES at rest, TLS in transit."""

    name = "AWS/Azure/Google Cloud"
    citation = "[1-3]"
    at_rest_relies_on = ("aes-256-ctr",)

    def __init__(self, nodes, rng, replication: int = 1):
        # A single provider's internal fleet: independence not required.
        super().__init__(nodes, rng, require_distinct_providers=False)
        if replication < 1:
            raise DecodingError("replication must be >= 1")
        self.replication = replication
        self.cipher = AesCtrCipher(key_size=32)
        #: Provider-side key management service: object id -> (key, nonce).
        self._kms: dict[str, tuple[bytes, bytes]] = {}

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        key = self.rng.bytes(32)
        nonce = self.rng.bytes(12)
        self._kms[object_id] = (key, nonce)
        ciphertext = self.cipher.encrypt(key, nonce, data)
        payloads = {i: ciphertext for i in range(self.replication)}
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={"replication": self.replication},
            # What a successful AES cryptanalysis of this object would
            # yield: the data key (escrow convention, see channels.base).
            escrow={"key": key, "nonce": nonce},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: the first intact replica is enough.
        shares = self._fetch_shares(receipt, need=1)
        if not shares:
            raise DecodingError(f"no replica of {object_id} is available")
        ciphertext = next(iter(shares.values()))
        key, nonce = self._kms[object_id]
        return self._finish_read(object_id, self.cipher.decrypt(key, nonce, ciphertext))

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        """Any single stolen replica suffices -- once AES falls."""
        if not stolen:
            raise DecodingError(f"{object_id}: adversary holds no replicas")
        self._require_at_rest_broken(timeline, epoch)
        receipt = self.receipt(object_id)
        key, nonce = receipt.escrow["key"], receipt.escrow["nonce"]
        return self.cipher.decrypt(key, nonce, next(iter(stolen.values())))
