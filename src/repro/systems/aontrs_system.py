"""The AONT-RS dispersed archive (Cleversafe / IBM Cloud Object Storage).

Table 1: Computational / Computational / Low.  The encoding is
:class:`repro.secretsharing.aontrs.AontRsDispersal`; this system adds the
deployment: shards across independent providers, TLS transit, and the two
adversary outcomes the paper highlights --

- below k shards, recovery additionally requires the cipher *and* hash to
  fall (then "an attacker trivially knows the key and can recover plaintext
  from even a single share");
- at k or more shards, recovery is immediate with *no* broken primitives:
  the AONT's key is inside the package.  "Eliminates the need for key
  management" cuts both ways.
"""

from __future__ import annotations

from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError
from repro.secretsharing.aontrs import AontRsDispersal
from repro.systems.base import ArchivalSystem, StoreReceipt


class AontRsArchive(ArchivalSystem):
    """AONT-RS across independent providers."""

    name = "AONT-RS"
    citation = "[53]"
    at_rest_relies_on = ("aes-256-ctr", "sha256")

    def __init__(self, nodes, rng, n: int = 6, k: int = 4):
        super().__init__(nodes, rng)
        self.dispersal = AontRsDispersal(n, k)

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        split = self.dispersal.split(data, self.rng)
        payloads = {share.index: share.payload for share in split.shares}
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "n": self.dispersal.n,
                "k": self.dispersal.k,
                "package_length": len(data) + 32,
            },
            # Post-break recovery from < k shards is granted by escrow (the
            # real attack reconstructs the AONT key from broken primitives).
            escrow={"plaintext": bytes(data)},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: any k decodable shards suffice.
        shares = self._fetch_shares(receipt, need=self.dispersal.k)
        if len(shares) < self.dispersal.k:
            raise DecodingError(
                f"{object_id}: only {len(shares)} shards available, "
                f"need {self.dispersal.k}"
            )
        from repro.secretsharing.base import Share

        share_objs = [
            Share(scheme="aont-rs", index=i, payload=p) for i, p in shares.items()
        ]
        data = self.dispersal.reconstruct(
            share_objs, original_length=receipt.original_length
        )
        return self._finish_read(object_id, data)

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        receipt = self.receipt(object_id)
        if len(stolen) >= self.dispersal.k:
            # Threshold theft: the AONT opens with no cryptanalysis at all.
            from repro.secretsharing.base import Share

            share_objs = [
                Share(scheme="aont-rs", index=i, payload=p)
                for i, p in stolen.items()
            ]
            return self.dispersal.reconstruct(
                share_objs, original_length=receipt.original_length
            )
        if not stolen:
            raise DecodingError(f"{object_id}: adversary holds no shards")
        # Sub-threshold theft: needs the cipher and hash broken.
        self._require_at_rest_broken(timeline, epoch)
        return receipt.escrow["plaintext"]
