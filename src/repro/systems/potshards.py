"""POTSHARDS (Storer et al., ACM TOS '09).

"POTSHARDS was the first work to design and evaluate a full archival system
based on Shamir's secret sharing.  In POTSHARDS, each share is uploaded to
an administratively independent storage provider, thereby avoiding a single
point of trust or failure" (paper Section 3.2).  Table 1: Computational
transit / ITS at rest / High cost.

Faithful structural features:

- **Two-level splitting**: an XOR secret-split for secrecy above a Shamir
  split per fragment for availability -- compromise of a full Shamir group
  still yields only one XOR fragment.
- **No encryption keys anywhere**: confidentiality comes from the splitting
  alone, so there is nothing for a future cryptanalyst to break; the
  attempt-recovery path never consults the break timeline.
- **Approximate pointers**: each shard carries a pointer *window* naming the
  id range its sibling shards live in, supporting index-loss recovery by
  bounded scan (:meth:`recover_without_index`) without giving an adversary
  exact linkage.
- The measured storage overhead is ``xor_ways * shamir_n`` -- the "high
  storage overhead ... provably unavoidable consequence of perfect secrecy"
  the paper attributes to this class of systems.
"""

from __future__ import annotations

from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, ParameterError
from repro.secretsharing.additive import AdditiveSecretSharing
from repro.secretsharing.base import Share
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.systems.base import ArchivalSystem, StoreReceipt

#: Width of the approximate-pointer window, in shard-id slots.  A window
#: of w means an adversary seeing one shard learns only that siblings are
#: among w candidates; recovery scans at most w ids per hop.
POINTER_WINDOW = 16


def _shard_index(fragment: int, shamir_index: int) -> int:
    """Flatten (fragment, shamir point) into one placement index."""
    return fragment * 100 + shamir_index


def _unflatten(index: int) -> tuple[int, int]:
    return index // 100, index % 100


class Potshards(ArchivalSystem):
    """Two-level secret-split archive over independent providers."""

    name = "POTSHARDS"
    citation = "[63]"
    at_rest_relies_on = ()  # keyless: pure information-theoretic splitting

    def __init__(self, nodes, rng, xor_ways: int = 2, shamir_n: int = 4, shamir_t: int = 3):
        super().__init__(nodes, rng)
        if xor_ways < 2:
            raise ParameterError("POTSHARDS uses at least a 2-way secrecy split")
        self.xor_ways = xor_ways
        self.secrecy = AdditiveSecretSharing(xor_ways)
        self.availability = ShamirSecretSharing(shamir_n, shamir_t)

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        fragments = self.secrecy.split(data, self.rng)
        payloads: dict[int, bytes] = {}
        for fragment_share in fragments.shares:
            shamir_split = self.availability.split(fragment_share.payload, self.rng)
            for shard in shamir_split.shares:
                index = _shard_index(fragment_share.index, shard.index)
                payloads[index] = self._with_pointer(object_id, index, shard.payload)
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "xor_ways": self.xor_ways,
                "shamir_n": self.availability.n,
                "shamir_t": self.availability.t,
            },
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Two-level assembly has no single quorum; try every placed shard.
        shares = self._fetch_shares(receipt)
        return self._finish_read(
            object_id, self._assemble(shares, receipt.original_length)
        )

    # -- the adversary path: pure share-counting, never timeline-gated ----------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        del timeline, epoch  # keyless design: cryptanalysis is irrelevant
        receipt = self.receipt(object_id)
        return self._assemble(stolen, receipt.original_length)

    # -- index-loss disaster recovery ----------------------------------------------------

    def recover_without_index(self, start_shard_payload: bytes, original_length: int) -> bytes:
        """Rebuild an object from ONE shard by walking approximate pointers.

        Models POTSHARDS' recovery story: a user who lost all metadata scans
        the (bounded) pointer windows across providers, gathering sibling
        shards until both levels reconstruct.
        """
        object_id, _, _ = self._parse_pointer(start_shard_payload)
        gathered: dict[int, bytes] = {}
        for node in self.nodes:
            if not node.online:
                continue
            for stored_id in node.object_ids():
                if stored_id.startswith(f"{object_id}/share-"):
                    index = int(stored_id.rsplit("-", 1)[1])
                    gathered[index] = node.get(stored_id)
        return self._assemble(gathered, original_length)

    # -- internals ----------------------------------------------------------------------------

    def _with_pointer(self, object_id: str, index: int, payload: bytes) -> bytes:
        """Prefix the shard with its approximate pointer window."""
        window_base = (index // POINTER_WINDOW) * POINTER_WINDOW
        header = (
            object_id.encode()
            + b"|"
            + window_base.to_bytes(4, "big")
            + POINTER_WINDOW.to_bytes(4, "big")
            + b"|"
        )
        return header + payload

    @staticmethod
    def _parse_pointer(shard: bytes) -> tuple[str, int, bytes]:
        try:
            name, rest = shard.split(b"|", 1)
            window_base = int.from_bytes(rest[:4], "big")
            payload = rest.split(b"|", 1)[1]
        except (ValueError, IndexError):
            raise DecodingError("malformed POTSHARDS shard") from None
        return name.decode(), window_base, payload

    def _assemble(self, shards: dict[int, bytes], original_length: int) -> bytes:
        by_fragment: dict[int, list[Share]] = {}
        for index, payload in shards.items():
            fragment, shamir_index = _unflatten(index)
            _, _, body = self._parse_pointer(payload)
            by_fragment.setdefault(fragment, []).append(
                Share(scheme="shamir", index=shamir_index, payload=body)
            )
        fragment_shares = []
        for fragment in range(1, self.xor_ways + 1):
            available = by_fragment.get(fragment, [])
            if len(available) < self.availability.t:
                raise DecodingError(
                    f"fragment {fragment}: {len(available)} shards held, "
                    f"{self.availability.t} required"
                )
            fragment_shares.append(
                Share(
                    scheme="additive",
                    index=fragment,
                    payload=self.availability.reconstruct(available),
                )
            )
        return self.secrecy.reconstruct(fragment_shares)[:original_length]
