"""The VSR Archive (Wong, Wang, Wing -- SISW '02).

Paper, Section 3.2: "Wong et al. suggest using a version of proactive secret
sharing for secure archival with the desirable feature of adding or removing
shareholders in each share renewal phase."  Table 1: Computational transit /
ITS at rest / High cost.

The system composes:

- Shamir sharing at rest across independent providers;
- periodic *verifiable secret redistribution* (not just renewal): each
  refresh can move to a different (n', t'), onboarding or retiring
  providers, via :func:`repro.secretsharing.redistribution.redistribute`;
- old shares are destroyed after redistribution, so a mobile adversary's
  pre-refresh haul cannot combine with post-refresh shares (different
  polynomials *and* possibly different thresholds).

Communication accounting from every redistribution is retained so the cost
benchmark can reproduce "this incurs high communication costs ... may become
impractical for the same reasons as re-encryption."
"""

from __future__ import annotations

from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, ParameterError
from repro.secretsharing.base import Share
from repro.secretsharing.redistribution import RedistributionReport, redistribute
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.systems.base import ArchivalSystem, StoreReceipt


class VsrArchive(ArchivalSystem):
    """Shamir archive with verifiable secret redistribution."""

    name = "VSR Archive"
    citation = "[67]"
    at_rest_relies_on = ()

    def __init__(self, nodes, rng, n: int = 5, t: int = 3):
        super().__init__(nodes, rng)
        self.scheme = ShamirSecretSharing(n, t)
        self.redistribution_reports: list[RedistributionReport] = []
        #: Epoch tag carried by every live share set, bumped per refresh.
        self.share_generation = 0

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        split = self.scheme.split(data, self.rng)
        payloads = {s.index: s.payload for s in split.shares}
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "n": self.scheme.n,
                "t": self.scheme.t,
                "generation": self.share_generation,
            },
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        scheme = self._scheme_for(receipt)
        # Degraded read: any t shares of the current generation suffice.
        fetched = self._fetch_shares(receipt, need=scheme.t)
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in fetched.items()
        ]
        if len(shares) < scheme.t:
            raise DecodingError(
                f"{object_id}: need {scheme.t} shares, have {len(shares)}"
            )
        data = scheme.reconstruct(shares)[: receipt.original_length]
        return self._finish_read(object_id, data)

    def _scheme_for(self, receipt: StoreReceipt) -> ShamirSecretSharing:
        return ShamirSecretSharing(receipt.metadata["n"], receipt.metadata["t"])

    # -- redistribution ------------------------------------------------------------------

    def redistribute_all(self, new_n: int, new_t: int) -> list[RedistributionReport]:
        """Move every object to a fresh (new_n, new_t) share set.

        The old shares are deleted from the nodes afterwards -- leaving them
        would hand a mobile adversary a frozen, never-refreshed target.
        """
        if not 1 <= new_t <= new_n:
            raise ParameterError(f"invalid new parameters n={new_n} t={new_t}")
        new_scheme = ShamirSecretSharing(new_n, new_t)
        reports = []
        for object_id in list(self._receipts):
            receipt = self.receipt(object_id)
            old_scheme = self._scheme_for(receipt)
            fetched = self._fetch_shares(receipt)
            old_shares = [
                Share(scheme="shamir", index=i, payload=p)
                for i, p in fetched.items()
            ]
            new_split, report = redistribute(
                old_scheme, old_shares, new_scheme, receipt.original_length, self.rng
            )
            reports.append(report)

            self.placement_policy.delete(receipt.placement)
            payloads = {s.index: s.payload for s in new_split.shares}
            placement = self._store_shares(object_id, payloads)
            receipt.placement = placement
            receipt.metadata.update(
                {"n": new_n, "t": new_t, "generation": self.share_generation + 1}
            )
        self.scheme = new_scheme
        self.share_generation += 1
        self.redistribution_reports.extend(reports)
        return reports

    # -- adversary -----------------------------------------------------------------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        del timeline, epoch
        receipt = self.receipt(object_id)
        scheme = self._scheme_for(receipt)
        shares = [
            Share(scheme="shamir", index=i, payload=p) for i, p in stolen.items()
        ]
        return scheme.reconstruct(shares)[: receipt.original_length]
