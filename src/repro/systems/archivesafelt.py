"""ArchiveSafeLT (Sabry & Samavi, ACSAC '22): cascade-cipher layering.

Paper, Section 3.2: "One could avoid the I/O cost of re-encryption -- at the
cost of storing a growing history of encryption keys -- by using multiple
layers of different encryption schemes to hedge against the threat of any
one or more ciphers being broken. ... ArchiveSafeLT also proposes wrapping
data in new layers of encryption if enough of the old layers are broken,
though this runs into the same I/O issues as re-encryption."

Modeled faithfully:

- objects are stored under a cascade (default AES-256 over ChaCha20), with
  independent per-layer keys kept in a client-side key history;
- :meth:`respond_to_break` checks how many layers the timeline has broken
  and, below a survival margin, wraps every stored object in a fresh layer
  -- charging the read+write I/O through the returned byte count so the
  re-encryption benchmark can compare wrapping vs full re-encryption;
- the harvest path honors the combiner guarantee: recovery requires *every*
  layer present on the stolen ciphertext to be broken at the attempt epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AesCtrCipher
from repro.crypto.cascade import CascadeCipher, CascadeLayer
from repro.crypto.chacha20 import ChaCha20Cipher
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, StillSecureError
from repro.systems.base import ArchivalSystem, StoreReceipt


@dataclass
class WrapReport:
    """I/O accounting for one layer-wrapping campaign."""

    objects_wrapped: int
    bytes_read: int
    bytes_written: int
    new_layer: str


class ArchiveSafeLT(ArchivalSystem):
    """Cascade-layered archive with break-triggered wrapping."""

    name = "ArchiveSafeLT"
    citation = "[56]"
    # Initial layers; grows as wrapping responds to breaks.
    at_rest_relies_on = ("aes-256-ctr", "chacha20")

    #: Wrap when fewer than this many layers remain unbroken.
    SURVIVAL_MARGIN = 1

    def __init__(self, nodes, rng, replication: int = 1):
        super().__init__(nodes, rng, require_distinct_providers=False)
        self.replication = max(1, replication)
        self._ciphers = {
            "aes-256-ctr": AesCtrCipher(key_size=32),
            "chacha20": ChaCha20Cipher(),
        }
        #: Per-object ordered key history: list of (cipher_name, key, nonce).
        self._key_history: dict[str, list[tuple[str, bytes, bytes]]] = {}

    # -- cascade plumbing -----------------------------------------------------------

    def _cascade_for(
        self, object_id: str, layer_count: int | None = None
    ) -> tuple[CascadeCipher, list[bytes]]:
        history = self._key_history[object_id]
        if layer_count is not None:
            history = history[:layer_count]
        layers = []
        keys = []
        for cipher_name, key, nonce in history:
            layers.append(CascadeLayer(self._ciphers[cipher_name], nonce))
            keys.append(key)
        return CascadeCipher(layers), keys

    @staticmethod
    def _seal(layer_count: int, ciphertext: bytes) -> bytes:
        """Stored payloads carry their layer count: copies stolen before a
        wrap must decode (and be attacked) under the layers they actually
        have, not the current history."""
        return layer_count.to_bytes(2, "big") + ciphertext

    @staticmethod
    def _unseal(payload: bytes) -> tuple[int, bytes]:
        return int.from_bytes(payload[:2], "big"), payload[2:]

    def _new_layer_material(self, cipher_name: str) -> tuple[str, bytes, bytes]:
        cipher = self._ciphers[cipher_name]
        return cipher_name, self.rng.bytes(cipher.key_size), self.rng.bytes(cipher.nonce_size)

    # -- public API --------------------------------------------------------------------

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        self._key_history[object_id] = [
            self._new_layer_material("chacha20"),
            self._new_layer_material("aes-256-ctr"),
        ]
        cascade, keys = self._cascade_for(object_id)
        ciphertext = self._seal(cascade.depth, cascade.encrypt(keys, data))
        payloads = {i: ciphertext for i in range(self.replication)}
        placement = self._store_shares(object_id, payloads)
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={"layers": [name for name, _, _ in self._key_history[object_id]]},
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        receipt = self.receipt(object_id)
        # Degraded read: one intact sealed replica is enough.
        shares = self._fetch_shares(receipt, need=1)
        if not shares:
            raise DecodingError(f"no replica of {object_id} available")
        layer_count, body = self._unseal(next(iter(shares.values())))
        cascade, keys = self._cascade_for(object_id, layer_count)
        return self._finish_read(object_id, cascade.decrypt(keys, body))

    # -- break response -------------------------------------------------------------------

    def unbroken_layer_count(self, object_id: str, timeline: BreakTimeline, epoch: int) -> int:
        return sum(
            1
            for cipher_name, _, _ in self._key_history[object_id]
            if not timeline.is_broken(cipher_name, epoch)
        )

    def respond_to_break(
        self, timeline: BreakTimeline, epoch: int, new_layer_cipher: str = "chacha20"
    ) -> WrapReport | None:
        """Wrap all objects in a fresh layer if the margin is violated.

        Returns the I/O accounting, or None if no wrapping was needed.
        ArchiveSafeLT's selling point is avoiding *decryption* during the
        response; its weakness (which the report quantifies) is that the
        read-and-rewrite I/O is the same as re-encryption's.
        """
        needs_wrap = [
            object_id
            for object_id in self._key_history
            if self.unbroken_layer_count(object_id, timeline, epoch)
            <= self.SURVIVAL_MARGIN
        ]
        if not needs_wrap:
            return None
        bytes_read = 0
        bytes_written = 0
        for object_id in needs_wrap:
            receipt = self.receipt(object_id)
            shares = self._fetch_shares(receipt)
            if not shares:
                raise DecodingError(f"cannot wrap {object_id}: no replica available")
            old_count, old_body = self._unseal(next(iter(shares.values())))
            bytes_read += len(old_body) * len(shares)

            material = self._new_layer_material(new_layer_cipher)
            self._key_history[object_id].append(material)
            cipher = self._ciphers[new_layer_cipher]
            new_body = cipher.encrypt(material[1], material[2], old_body)
            new_payload = self._seal(len(self._key_history[object_id]), new_body)
            for index, node_id in receipt.placement.node_by_share.items():
                node = self.placement_policy.node(node_id)
                node.put(f"{object_id}/share-{index}", new_payload, epoch=epoch)
                bytes_written += len(new_body)
            receipt.metadata["layers"] = [
                name for name, _, _ in self._key_history[object_id]
            ]
        return WrapReport(
            objects_wrapped=len(needs_wrap),
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            new_layer=new_layer_cipher,
        )

    # -- adversary ---------------------------------------------------------------------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        """Combiner guarantee: need every layer on the stolen copy broken.

        Note the HNDL subtlety the benchmark exploits: the layers that count
        are the ones on the ciphertext *as stolen* -- wrapping performed
        after the theft does not protect the harvested copy.
        """
        if not stolen:
            raise DecodingError(f"{object_id}: adversary holds no replicas")
        layer_count, body = self._unseal(next(iter(stolen.values())))
        layer_names = [
            name for name, _, _ in self._key_history[object_id][:layer_count]
        ]
        unbroken = [
            name for name in layer_names if not timeline.is_broken(name, epoch)
        ]
        if unbroken:
            raise StillSecureError(
                f"{self.name}: layers {unbroken} still hold at epoch {epoch}"
            )
        cascade, keys = self._cascade_for(object_id, layer_count)
        return cascade.decrypt(keys, body)
