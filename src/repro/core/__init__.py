"""Core: the crypto-agile secure-archive framework and its analyses.

This package is the paper's contribution made executable:

- ``classifier`` -- derives each system's Table 1 row (transit/at-rest
  notions, storage band) from its actual components and measurements;
- ``tradeoff`` -- the Figure 1 engine: measured storage cost x classified
  security level for every data encoding;
- ``keymgmt`` -- key manager with rotation history (the "growing history of
  encryption keys" cascade systems carry);
- ``scheduler`` -- epoch clock tying break timelines, share-renewal
  cadences, and timestamp-chain renewals together;
- ``reencryption`` -- the planner that turns "cipher X just broke" into a
  costed response (re-encrypt vs wrap vs nothing-needed-ITS);
- ``archive`` / ``policy`` -- the SecureArchive facade: pick a policy point
  on the efficiency/security trade-off, get a working archive.
"""

from repro.core.classifier import SecurityClassifier, SystemClassification
from repro.core.tradeoff import TradeoffAnalyzer, EncodingPoint
from repro.core.keymgmt import KeyManager, ManagedKey
from repro.core.scheduler import EpochScheduler
from repro.core.reencryption import ReencryptionPlanner, ResponsePlan
from repro.core.policy import ArchivePolicy, ConfidentialityTarget
from repro.core.archive import SecureArchive
from repro.core.advisor import Recommendation, Requirements, recommend

__all__ = [
    "SecurityClassifier",
    "SystemClassification",
    "TradeoffAnalyzer",
    "EncodingPoint",
    "KeyManager",
    "ManagedKey",
    "EpochScheduler",
    "ReencryptionPlanner",
    "ResponsePlan",
    "ArchivePolicy",
    "ConfidentialityTarget",
    "SecureArchive",
    "Recommendation",
    "Requirements",
    "recommend",
]
