"""The epoch scheduler: the archive's long-term clock.

Archival security is a race between maintenance cadences and adversarial
timelines: timestamp chains must renew before their signature scheme breaks,
shares must refresh faster than the mobile adversary accumulates them, and
break events must trigger re-encryption or wrapping campaigns.  The
scheduler ties those cadences to one epoch counter (an epoch is a year by
default) and fires registered actions in deterministic order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.registry import BreakTimeline
from repro.errors import ParameterError

#: An action: called with the epoch number when due.
ScheduledAction = Callable[[int], None]


@dataclass
class _Recurring:
    name: str
    every: int
    action: ScheduledAction
    start: int


@dataclass
class EpochScheduler:
    """Deterministic epoch clock with recurring actions and break hooks."""

    timeline: BreakTimeline
    years_per_epoch: float = 1.0
    epoch: int = 0
    _recurring: list[_Recurring] = field(default_factory=list)
    _break_hooks: list[Callable[[int, list[str]], None]] = field(default_factory=list)
    _fired_breaks: set[str] = field(default_factory=set)
    log: list[str] = field(default_factory=list)

    def every(self, epochs: int, name: str, action: ScheduledAction) -> None:
        """Run *action* every *epochs* epochs (first run after one period)."""
        if epochs < 1:
            raise ParameterError("cadence must be >= 1 epoch")
        self._recurring.append(
            _Recurring(name=name, every=epochs, action=action, start=self.epoch)
        )

    def on_break(self, hook: Callable[[int, list[str]], None]) -> None:
        """Call *hook(epoch, newly_broken_names)* when primitives fall."""
        self._break_hooks.append(hook)

    def advance(self, epochs: int = 1) -> None:
        """Step the clock, firing recurring actions and break hooks."""
        if epochs < 1:
            raise ParameterError("advance by at least one epoch")
        for _ in range(epochs):
            self.epoch += 1
            newly_broken = [
                name
                for name in self.timeline.broken_primitives(self.epoch)
                if name not in self._fired_breaks
            ]
            if newly_broken:
                self._fired_breaks.update(newly_broken)
                self.log.append(
                    f"epoch {self.epoch}: broken {', '.join(newly_broken)}"
                )
                for hook in self._break_hooks:
                    hook(self.epoch, newly_broken)
            for recurring in self._recurring:
                elapsed = self.epoch - recurring.start
                if elapsed > 0 and elapsed % recurring.every == 0:
                    self.log.append(f"epoch {self.epoch}: run {recurring.name}")
                    recurring.action(self.epoch)

    @property
    def years(self) -> float:
        return self.epoch * self.years_per_epoch
