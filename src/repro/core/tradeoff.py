"""The Figure 1 engine: storage cost vs. security level, measured.

The paper's Figure 1 is a qualitative quadrant plot of data encodings:

    y-axis: storage cost          x-axis: security level
    - Replication (high cost, no confidentiality)
    - Erasure coding (low cost, no confidentiality)
    - Traditional encryption (low cost, computational)
    - Entropically secure encryption (low cost, conditional ITS)
    - Packed secret sharing (mid cost, ITS)
    - Secret sharing (high cost, ITS)
    - Leakage-resilient secret sharing (highest cost, ITS under leakage)
    - the smiley face: low cost + ITS, where nothing sits

:class:`TradeoffAnalyzer` regenerates the plot from *measurements*: each
encoding is run over a corpus, its stored-bytes/plaintext-bytes ratio is
measured, and its security level is classified.  The benchmark then asserts
the paper's qualitative orderings (who is above/right of whom).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classifier import SecurityClassifier
from repro.crypto.aes import AesCtrCipher
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.entropic import EntropicEncryption
from repro.errors import ParameterError
from repro.gmath.reedsolomon import ReedSolomonCode
from repro.secretsharing.aontrs import AontRsDispersal
from repro.secretsharing.leakage import LeakageResilientSharing
from repro.secretsharing.packed import PackedSecretSharing
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.security import SecurityLevel


@dataclass(frozen=True)
class EncodingPoint:
    """One encoding's measured position in the Figure 1 plane."""

    name: str
    label: str
    security_level: SecurityLevel
    storage_overhead: float
    note: str = ""

    @property
    def coordinates(self) -> tuple[int, float]:
        """(x = security rank, y = storage overhead)."""
        return (self.security_level.rank, self.storage_overhead)


class TradeoffAnalyzer:
    """Measures every Figure 1 encoding over a common corpus."""

    def __init__(self, n: int = 5, t: int = 3, pack_width: int = 2):
        if pack_width < 1:
            raise ParameterError("pack width must be >= 1")
        self.n = n
        self.t = t
        self.pack_width = pack_width
        self.classifier = SecurityClassifier()

    def analyze(
        self, object_size: int = 1 << 16, objects: int = 4, seed: int = 2024
    ) -> list[EncodingPoint]:
        rng = DeterministicRandom(seed)
        corpus = [rng.bytes(object_size) for _ in range(objects)]
        total_plain = sum(len(c) for c in corpus)
        points: list[EncodingPoint] = []

        # Replication: n full copies (availability-matched with sharing).
        points.append(
            EncodingPoint(
                name="replication",
                label="Replication",
                security_level=SecurityLevel.NONE,
                storage_overhead=float(self.n),
                note="n full plaintext copies",
            )
        )

        # Erasure coding: [n, t] systematic RS.
        code = ReedSolomonCode(self.n, self.t)
        stored = sum(
            sum(len(s.data) for s in code.encode(c)) for c in corpus
        )
        points.append(
            EncodingPoint(
                name="erasure",
                label="Erasure Coding",
                security_level=SecurityLevel.NONE,
                storage_overhead=stored / total_plain,
                note="systematic shards are plaintext",
            )
        )

        # Traditional encryption: AES-256-CTR, one stored ciphertext.
        cipher = AesCtrCipher()
        stored = sum(
            len(cipher.encrypt(rng.bytes(32), rng.bytes(12), c)) + 32
            for c in corpus
        )
        points.append(
            EncodingPoint(
                name="traditional-encryption",
                label="Traditional Encryption",
                security_level=self.classifier.classify_encoding_level("aes-256-ctr"),
                storage_overhead=stored / total_plain,
                note="all computationally secure encryption",
            )
        )

        # AONT-RS sits with traditional encryption on the security axis but
        # adds erasure-coded availability.
        aont = AontRsDispersal(self.n, self.t)
        stored = sum(aont.split(c, rng).stored_bytes for c in corpus)
        points.append(
            EncodingPoint(
                name="aont-rs",
                label="AONT-RS",
                security_level=self.classifier.classify_encoding_level(
                    "aont-rs", SecurityLevel.COMPUTATIONAL
                ),
                storage_overhead=stored / total_plain,
                note="computational; no key management",
            )
        )

        # Entropically secure encryption: conditional ITS at ~1x cost.
        entropic = EntropicEncryption()
        stored = sum(
            len(entropic.encrypt(entropic.generate_key(rng), c, rng).masked) + 16
            for c in corpus
        )
        points.append(
            EncodingPoint(
                name="entropic",
                label="Entropically Secure Encryption",
                security_level=self.classifier.classify_encoding_level(
                    "entropic", SecurityLevel.ITS_CONDITIONAL
                ),
                storage_overhead=stored / total_plain,
                note="ITS only for high-min-entropy messages",
            )
        )

        # Packed secret sharing.
        packed = PackedSecretSharing(self.n + self.pack_width, self.t, self.pack_width)
        stored = sum(packed.split(c, rng).stored_bytes for c in corpus)
        points.append(
            EncodingPoint(
                name="packed",
                label="Packed Secret Sharing",
                security_level=self.classifier.classify_encoding_level(
                    "packed", SecurityLevel.ITS_PERFECT
                ),
                storage_overhead=stored / total_plain,
                note=f"k={self.pack_width} secrets per polynomial",
            )
        )

        # Shamir secret sharing.
        shamir = ShamirSecretSharing(self.n, self.t)
        stored = sum(shamir.split(c, rng).stored_bytes for c in corpus)
        points.append(
            EncodingPoint(
                name="shamir",
                label="Secret Sharing",
                security_level=self.classifier.classify_encoding_level(
                    "shamir", SecurityLevel.ITS_PERFECT
                ),
                storage_overhead=stored / total_plain,
                note="perfect secrecy; overhead = n",
            )
        )

        # Leakage-resilient secret sharing: strictly above Shamir in cost.
        lrss = LeakageResilientSharing(self.n, self.t, leakage_budget_bits=256)
        stored = sum(lrss.split(c, rng).stored_bytes for c in corpus)
        points.append(
            EncodingPoint(
                name="lrss",
                label="Leakage Resilient Secret Sharing",
                security_level=self.classifier.classify_encoding_level(
                    "lrss", SecurityLevel.ITS_CONDITIONAL
                ),
                storage_overhead=stored / total_plain,
                note="ITS under bounded local leakage",
            )
        )

        return points

    # -- rendering ---------------------------------------------------------------------

    @staticmethod
    def render_quadrant(points: list[EncodingPoint], cost_split: float = 2.5) -> str:
        """ASCII rendition of Figure 1's quadrants."""
        high_cost = [p for p in points if p.storage_overhead >= cost_split]
        low_cost = [p for p in points if p.storage_overhead < cost_split]

        def half(subset: list[EncodingPoint]) -> tuple[str, str]:
            weak = ", ".join(
                p.label for p in subset if p.security_level < SecurityLevel.ITS_CONDITIONAL
            )
            strong = ", ".join(
                p.label for p in subset if p.security_level >= SecurityLevel.ITS_CONDITIONAL
            )
            return weak or "-", strong or "-"

        top_left, top_right = half(sorted(high_cost, key=lambda p: p.coordinates))
        bottom_left, bottom_right = half(sorted(low_cost, key=lambda p: p.coordinates))
        lines = [
            "Storage Cost ^",
            f"  HIGH | {top_left:<50} | {top_right}",
            "       |" + "-" * 60,
            f"   LOW | {bottom_left:<50} | {bottom_right}  <-- :)",
            "       +" + "-" * 30 + "> Security Level",
            "         (left: none/computational, right: information-theoretic)",
        ]
        return "\n".join(lines)
