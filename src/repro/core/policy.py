"""Archive policies: named points on the efficiency/security trade-off.

The paper concludes there is "no one size fits all" -- so the facade makes
the choice explicit.  A policy states the confidentiality target and the
dispersal parameters; :class:`repro.core.archive.SecureArchive` maps it to
an encoding:

- ``COMPUTATIONAL`` -> AONT-RS (the paper's practical/commercial point:
  low cost, no key management, HNDL-vulnerable);
- ``LONG_TERM`` -> Shamir + proactive renewal (the POTSHARDS/LINCOS point:
  n-times cost, immune to cryptographic obsolescence);
- ``LONG_TERM_ECONOMY`` -> packed sharing (same notion, n/k cost, weaker
  loss tolerance);
- ``LONG_TERM_LEAKAGE_HARDENED`` -> LRSS (highest cost, survives bounded
  side-channel leakage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParameterError


class ConfidentialityTarget(enum.Enum):
    COMPUTATIONAL = "computational"
    LONG_TERM = "long-term"  # information-theoretic
    LONG_TERM_ECONOMY = "long-term-economy"  # packed ITS
    LONG_TERM_LEAKAGE_HARDENED = "long-term-leakage-hardened"  # LRSS


@dataclass(frozen=True)
class ArchivePolicy:
    """What the archive owner wants, in their terms."""

    target: ConfidentialityTarget
    #: Dispersal width (number of providers used per object).
    n: int = 5
    #: Reconstruction threshold (privacy threshold for ITS targets).
    t: int = 3
    #: Packing width for LONG_TERM_ECONOMY.
    pack_width: int = 2
    #: Leakage budget (bits) for LONG_TERM_LEAKAGE_HARDENED.
    leakage_budget_bits: int = 128
    #: Proactive renewal cadence in epochs (None disables renewal).
    renew_every_epochs: int | None = 1

    def __post_init__(self) -> None:
        if not 1 <= self.t <= self.n:
            raise ParameterError(f"need 1 <= t <= n, got n={self.n} t={self.t}")
        if self.target is ConfidentialityTarget.LONG_TERM_ECONOMY:
            if self.n < self.t + self.pack_width:
                raise ParameterError(
                    "packed sharing needs n >= t + pack_width to reconstruct"
                )
        if self.renew_every_epochs is not None and self.renew_every_epochs < 1:
            raise ParameterError("renewal cadence must be >= 1 epoch")

    @property
    def information_theoretic(self) -> bool:
        return self.target is not ConfidentialityTarget.COMPUTATIONAL


#: Ready-made policies for the examples and docs.
PRACTICAL_COMPUTATIONAL = ArchivePolicy(
    target=ConfidentialityTarget.COMPUTATIONAL, n=6, t=4, renew_every_epochs=None
)
CENTURY_SAFE = ArchivePolicy(target=ConfidentialityTarget.LONG_TERM, n=5, t=3)
CENTURY_SAFE_ECONOMY = ArchivePolicy(
    target=ConfidentialityTarget.LONG_TERM_ECONOMY, n=7, t=3, pack_width=3
)
