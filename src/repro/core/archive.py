"""SecureArchive: the policy-driven facade over the whole library.

This is the public entry point a downstream user starts with (see
``examples/quickstart.py``): pick an :class:`repro.core.policy.ArchivePolicy`
and a node fleet, then store/retrieve; the facade wires up the encoding the
policy implies, disperses shares across independent providers, timestamps
every object onto an integrity chain, and runs the long-term maintenance
(proactive share renewal, chain re-signing) when the epoch clock advances.

The archive *is* an :class:`repro.systems.base.ArchivalSystem`, so all
adversary harnesses (HNDL, mobile) and the classifier work on it directly.
"""

from __future__ import annotations

import os
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.policy import ArchivePolicy, ConfidentialityTarget
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.commitments import PedersenCommitment
from repro.crypto.registry import BreakTimeline
from repro.errors import (
    DecodingError,
    ObjectNotFoundError,
    ParameterError,
    RetentionLockedError,
)
from repro.integrity.timestamp import (
    MerkleChainSigner,
    TimestampAuthority,
    TimestampChain,
)
from repro.obs import metrics as _metrics
from repro.obs.profiling import profiled
from repro.obs.tracing import span
from repro.secretsharing.aontrs import AontRsDispersal
from repro.secretsharing.base import Share
from repro.secretsharing.leakage import LeakageResilientSharing
from repro.secretsharing.packed import PackedSecretSharing
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.systems.base import ArchivalSystem, StoreReceipt


@dataclass
class MaintenanceReport:
    """What one epoch of maintenance did and what it cost."""

    epoch: int
    objects_renewed: int = 0
    renewal_bytes: int = 0
    chain_renewed: bool = False
    #: Tier migrations this epoch's background pass made (0 untiered).
    objects_promoted: int = 0
    objects_demoted: int = 0
    migration_bytes: int = 0
    notes: list[str] = field(default_factory=list)


class SecureArchive(ArchivalSystem):
    """Policy-driven secure archive.

    **Client concurrency.**  Public operations serialize on a per-archive
    re-entrant lock: parallelism lives *inside* an operation (batch encode
    fan-out, kernel sharding), never across operations -- the archive rng,
    placement state, receipts, and timestamp chain must be consumed in a
    deterministic order or two identically seeded archives would diverge.
    Concurrent clients therefore see their calls executed in *some*
    sequential order, each call atomic, and the retrieved plaintexts are
    byte-identical to a sequential run (share bytes depend on rng
    interleaving across clients, plaintexts never do).  The lock is
    re-entrant because the composite operations (``store_large`` /
    ``retrieve_large``) call other public operations while holding it.
    """

    name = "SecureArchive"
    citation = "(this work)"

    #: Merkle-signer tree height: 2**height one-time keys per signer before
    #: rollover.  A class attribute so simulations that build many archives
    #: can trade signer capacity for construction speed (keygen is linear
    #: in the key count); rollover semantics are identical at any height.
    SIGNER_HEIGHT = 8

    def __init__(self, policy: ArchivePolicy, nodes, rng):
        self.policy = policy
        self._scheme = self._build_scheme(policy)
        # Serializes the public client surface (see the class docstring);
        # taken by every store/retrieve/maintenance entry point.
        self._client_lock = threading.RLock()
        super().__init__(nodes, rng)
        self.chain = TimestampChain()
        self.authority = TimestampAuthority(
            MerkleChainSigner(rng, height=self.SIGNER_HEIGHT)
        )
        #: Every signer the archive has ever used, for auditors: hash-based
        #: signatures are finite-use, so long-lived chains rotate signers.
        self.signer_history = [self.authority.signer]
        self.commitments = PedersenCommitment()
        self._manifests: dict[str, dict] = {}
        self._retention: dict[str, int] = {}

    # -- tiering -----------------------------------------------------------------------

    def enable_tiering(self, migrator=None):
        """Turn on tiered placement and policy-driven migration.

        Call after construction, before the first store, on a fleet built
        with :func:`repro.storage.tiering.make_tiered_fleet` (nodes carry
        tier labels).  The *migrator* (a default-policy
        :class:`repro.storage.tiering.TierMigrator` when omitted) is bound
        to this archive -- migration rides the proactive-renewal pipeline
        -- and its registry/tracker are installed on the placement policy
        so stores honor per-share tier layouts, fetches try hot media
        first, and every user read feeds the access counters.  Returns the
        bound migrator.
        """
        from repro.storage.tiering import TierMigrator

        migrator = migrator or TierMigrator()
        migrator.bind(self, data_shares=self.policy.t)
        self.tiering = migrator
        self.placement_policy.tiers = migrator.registry
        self.placement_policy.tracker = migrator.tracker
        return migrator

    # The base class uses a class attribute; the facade's value depends on
    # the instance's policy, so it is a property here.
    @property
    def at_rest_relies_on(self) -> tuple[str, ...]:  # type: ignore[override]
        if self.policy.target is ConfidentialityTarget.COMPUTATIONAL:
            return ("aes-256-ctr", "sha256")
        return ()

    @staticmethod
    def _build_scheme(policy: ArchivePolicy):
        if policy.target is ConfidentialityTarget.COMPUTATIONAL:
            return AontRsDispersal(policy.n, policy.t)
        if policy.target is ConfidentialityTarget.LONG_TERM:
            return ShamirSecretSharing(policy.n, policy.t)
        if policy.target is ConfidentialityTarget.LONG_TERM_ECONOMY:
            return PackedSecretSharing(policy.n, policy.t, policy.pack_width)
        if policy.target is ConfidentialityTarget.LONG_TERM_LEAKAGE_HARDENED:
            return LeakageResilientSharing(
                policy.n, policy.t, policy.leakage_budget_bits
            )
        raise ParameterError(f"unhandled target {policy.target}")

    # -- observability -----------------------------------------------------------------

    @staticmethod
    def metrics_snapshot() -> dict:
        """Deterministic snapshot of the active metrics registry.

        The registry is process-wide (instrumentation lives in layers far
        below the facade), so this reflects everything measured since the
        registry was installed; wrap work in
        ``repro.obs.use_registry()`` to scope it to one archive.
        """
        return _metrics.get_registry().snapshot()

    # -- store / retrieve --------------------------------------------------------------

    #: The reserved segment namespace store_large writes into; user-chosen
    #: ids must stay out of it or a later store_large could collide.
    _SEGMENT_ID_RE = re.compile(r"/seg-\d+$")

    @classmethod
    def _reject_segment_id(cls, object_id: str) -> None:
        if cls._SEGMENT_ID_RE.search(object_id):
            raise ParameterError(
                f"object id {object_id!r} is inside the reserved segment "
                "namespace (<id>/seg-<k>); use store_large for segmented "
                "objects"
            )

    def store(self, object_id: str, data: bytes) -> StoreReceipt:
        self._reject_segment_id(object_id)
        with self._client_lock, span("archive.store", object_id=object_id):
            return self._store(object_id, data)

    def _store(self, object_id: str, data: bytes, split=None) -> StoreReceipt:
        """Disperse, timestamp and record one object.

        *split* lets the batch path hand in a share split computed off the
        archive's own rng (store_batch encodes items on worker threads,
        each with a child DRBG); when absent the archive rng is used.
        """
        _metrics.inc("archive_ops_total", op="store")
        _metrics.inc("archive_store_bytes_total", len(data))
        if object_id in self._receipts:
            raise ParameterError(
                f"{self.name}: object {object_id!r} already stored "
                "(delete it before re-storing)"
            )
        # Hash-based signers are finite-use; a long ingest stream must not
        # crash mid-epoch when the key budget runs out.
        self._rollover_signer_if_needed()
        if split is None:
            split = self._scheme.split(data, self.rng)
        payloads = {share.index: share.payload for share in split.shares}
        placement = self._store_shares(object_id, payloads)
        link, opening = self.authority.timestamp_document(
            self.chain,
            data,
            epoch=self.epoch,
            reference_kind="pedersen" if self.policy.information_theoretic else "hash",
            pedersen=self.commitments if self.policy.information_theoretic else None,
            rng=self.rng if self.policy.information_theoretic else None,
        )
        receipt = StoreReceipt(
            object_id=object_id,
            original_length=len(data),
            placement=placement,
            metadata={
                "scheme": split.scheme,
                "threshold": split.threshold,
                "public": dict(split.public),
                "chain_index": link.index,
            },
            escrow=(
                {"plaintext": bytes(data), "commitment_opening": opening}
                if self.policy.target is ConfidentialityTarget.COMPUTATIONAL
                else {"commitment_opening": opening}
            ),
        )
        return self._record(receipt)

    def retrieve(self, object_id: str) -> bytes:
        with self._client_lock, span("archive.retrieve", object_id=object_id):
            _metrics.inc("archive_ops_total", op="retrieve")
            receipt = self.receipt(object_id)
            # Degraded read: stop at the scheme's decode threshold; shares
            # that failed their digests get repaired after the decode.
            fetched = self._fetch_shares(
                receipt, need=receipt.metadata["threshold"]
            )
            data = self._decode(receipt, fetched)
            data = self._finish_read(object_id, data)
            _metrics.inc("archive_retrieve_bytes_total", len(data))
            return data

    def _decode(self, receipt: StoreReceipt, fetched: dict[int, bytes]) -> bytes:
        scheme = self._scheme
        shares = [
            Share(scheme=receipt.metadata["scheme"], index=i, payload=p)
            for i, p in fetched.items()
        ]
        if len(shares) < receipt.metadata["threshold"]:
            raise DecodingError(
                f"{receipt.object_id}: {len(shares)} shares held, "
                f"{receipt.metadata['threshold']} needed"
            )
        if isinstance(scheme, ShamirSecretSharing):
            return scheme.reconstruct(shares)[: receipt.original_length]
        if isinstance(scheme, PackedSecretSharing):
            return scheme.reconstruct(shares, original_length=receipt.original_length)
        if isinstance(scheme, LeakageResilientSharing):
            return scheme.reconstruct(
                shares, masked_message=receipt.metadata["public"]["masked_message"]
            )
        return scheme.reconstruct(shares, original_length=receipt.original_length)

    # -- batch ingest ------------------------------------------------------------------

    #: Worker threads for batch encode/decode.  The encoders release the
    #: GIL inside numpy/hashlib, so modest parallelism is real.
    _BATCH_WORKERS = min(8, os.cpu_count() or 1)

    def store_batch(
        self, items: Sequence[tuple[str, bytes]]
    ) -> list[StoreReceipt]:
        """Store many objects; receipts come back in input order.

        The pipeline has three phases chosen to keep results deterministic
        regardless of thread scheduling:

        1. *seed* -- one 32-byte child seed per item is drawn from the
           archive rng **sequentially in input order**, so the randomness
           each item sees is a pure function of (archive seed, position);
        2. *encode* -- splits run on a thread pool, each item encoding
           under its own child DRBG (the CPU-bound phase);
        3. *finalize* -- placement, timestamping and receipt recording run
           sequentially in input order (they mutate shared placement and
           chain state and must consume the archive rng in a fixed order).
        """
        for object_id, _ in items:
            self._reject_segment_id(object_id)
        with self._client_lock:
            return self._store_batch(items)

    def _store_batch(
        self, items: Sequence[tuple[str, bytes]]
    ) -> list[StoreReceipt]:
        """store_batch minus the segment-namespace gate (store_large's
        segment ids legitimately live inside the reserved namespace)."""
        items = list(items)
        ids = [object_id for object_id, _ in items]
        if len(set(ids)) != len(ids):
            raise ParameterError("store_batch object ids must be distinct")
        already = [object_id for object_id in ids if object_id in self._receipts]
        if already:
            raise ParameterError(
                f"store_batch ids already stored: {', '.join(sorted(already)[:5])}"
            )
        start = time.perf_counter()
        with span("archive.store_batch", count=len(items)):
            _metrics.inc("archive_ops_total", op="store_batch")
            child_rngs = [
                DeterministicRandom(self.rng.bytes(32)) for _ in items
            ]
            with ThreadPoolExecutor(max_workers=self._BATCH_WORKERS) as pool:
                splits = list(
                    pool.map(
                        lambda pair: self._scheme.split(pair[0][1], pair[1]),
                        zip(items, child_rngs),
                    )
                )
            receipts = [
                self._store(object_id, data, split=split)
                for (object_id, data), split in zip(items, splits)
            ]
        _metrics.observe(
            "archive_batch_seconds", time.perf_counter() - start, op="store"
        )
        return receipts

    def retrieve_batch(self, object_ids: Sequence[str]) -> list[bytes]:
        """Retrieve many objects; plaintexts come back in input order.

        Fetching stays sequential (placement retry state is shared), the
        decode fan-out runs on the thread pool, and repair-on-read runs
        sequentially afterwards with each object's own degraded-read
        report restored.
        """
        object_ids = list(object_ids)
        start = time.perf_counter()
        with self._client_lock, span("archive.retrieve_batch", count=len(object_ids)):
            fetched_by_id = []
            for object_id in object_ids:
                _metrics.inc("archive_ops_total", op="retrieve")
                receipt = self.receipt(object_id)
                fetched = self._fetch_shares(
                    receipt, need=receipt.metadata["threshold"]
                )
                fetched_by_id.append((receipt, fetched, self.last_read_report))
            with ThreadPoolExecutor(max_workers=self._BATCH_WORKERS) as pool:
                decoded = list(
                    pool.map(
                        lambda entry: self._decode(entry[0], entry[1]),
                        fetched_by_id,
                    )
                )
            results = []
            for (receipt, _, report), data in zip(fetched_by_id, decoded):
                self.last_read_report = report
                data = self._finish_read(receipt.object_id, data)
                _metrics.inc("archive_retrieve_bytes_total", len(data))
                results.append(data)
        _metrics.observe(
            "archive_batch_seconds", time.perf_counter() - start, op="retrieve"
        )
        return results

    # -- large objects: segmented storage --------------------------------------------------

    #: Default segment size for store_large (1 MiB keeps share buffers and
    #: renewal messages bounded regardless of object size).
    SEGMENT_BYTES = 1 << 20

    def store_large(
        self, object_id: str, data: bytes, segment_bytes: int | None = None
    ) -> list[StoreReceipt]:
        """Store *data* as independently encoded segments.

        Archival objects are often far larger than a sensible share/renewal
        unit; segmenting bounds memory, lets maintenance and repair work
        per-segment, and is how every real system in Table 1 ingests bulk
        data.  Segments share the object id namespace
        (``<id>/seg-<k>``) and a manifest records the layout.
        """
        if segment_bytes is None:
            segment_bytes = self.SEGMENT_BYTES
        if segment_bytes < 1:
            raise ParameterError("segment size must be positive")
        self._reject_segment_id(object_id)
        count = max(1, -(-len(data) // segment_bytes))
        # Segments are memoryview slices: the encoders view them through
        # np.frombuffer, so a multi-GiB ingest never duplicates the input.
        view = memoryview(data)
        with self._client_lock:
            with span("archive.store_large", object_id=object_id, segments=count):
                _metrics.inc("archive_ops_total", op="store_large")
                receipts = self._store_batch(
                    [
                        (
                            f"{object_id}/seg-{k}",
                            view[k * segment_bytes : (k + 1) * segment_bytes],
                        )
                        for k in range(count)
                    ]
                )
            self._manifests[object_id] = {
                "segments": count,
                "segment_bytes": segment_bytes,
                "total_length": len(data),
            }
            return receipts

    def retrieve_large(self, object_id: str) -> bytes:
        with self._client_lock:
            try:
                manifest = self._manifests[object_id]
            except KeyError:
                raise ObjectNotFoundError(f"no large object {object_id!r}") from None
            with span("archive.retrieve_large", object_id=object_id):
                parts = self.retrieve_batch(
                    [f"{object_id}/seg-{k}" for k in range(manifest["segments"])]
                )
        data = b"".join(parts)
        if len(data) != manifest["total_length"]:
            raise DecodingError(
                f"{object_id}: reassembled {len(data)} bytes, "
                f"manifest says {manifest['total_length']}"
            )
        return data

    # -- retention locks ---------------------------------------------------------------------

    def set_retention(self, object_id: str, until_epoch: int) -> None:
        """Forbid deletion of *object_id* before *until_epoch*.

        Archives "accumulate data that is rarely deleted"; when law or
        policy mandates retention, accidental (or adversarial) deletion
        must fail closed.
        """
        with self._client_lock:
            self.receipt(object_id)  # must exist
            if until_epoch < self.epoch:
                raise ParameterError("retention cannot end in the past")
            current = self._retention.get(object_id, -1)
            self._retention[object_id] = max(current, until_epoch)

    def delete(self, object_id: str) -> None:
        """Remove an object -- unless a retention lock forbids it."""
        with self._client_lock:
            receipt = self.receipt(object_id)
            held_until = self._retention.get(object_id)
            if held_until is not None and self.epoch < held_until:
                raise RetentionLockedError(
                    f"{object_id} is retained until epoch {held_until} "
                    f"(now {self.epoch})"
                )
            self.placement_policy.delete(receipt.placement)
            del self._receipts[object_id]
            self._plaintext_bytes -= receipt.original_length
            self._retention.pop(object_id, None)
            if self.tiering is not None:
                self.tiering.forget(object_id)

    # -- maintenance ---------------------------------------------------------------------

    def _rollover_signer_if_needed(self, report: MaintenanceReport | None = None) -> None:
        """Hash-based signers are one-time-key machines: before the current
        signer runs out, mint a fresh one and chain it in with a renewal
        link signed by the OLD signer (establishing the succession while
        the old key set is still trusted).  Checked at every epoch advance
        *and* before every store, so a sustained ingest stream longer than
        one signer's key budget rolls over mid-epoch instead of crashing.
        """
        signer = self.authority.signer
        # Keep headroom: one key for the succession link itself, plus at
        # least one spare for any store() landing before the next epoch.
        if signer._scheme.remaining >= 3:
            return
        self.authority.renew_chain(self.chain, self.epoch)  # old signer's last act
        new_signer = MerkleChainSigner(self.rng, height=self.SIGNER_HEIGHT)
        self.authority = TimestampAuthority(new_signer)
        self.signer_history.append(new_signer)
        _metrics.inc("archive_signer_rollovers_total")
        if report is not None:
            report.notes.append(f"signer rolled over (now {len(self.signer_history)})")

    def advance_epoch(self) -> MaintenanceReport:
        """Advance the archive clock one epoch and run due maintenance.

        On a tiered archive, the tier-migration pass runs in the same
        background pipeline, after proactive renewal; all maintenance reads
        (renewal *and* migration) run with the access tracker suspended so
        background traffic never counts as user demand.
        """
        with self._client_lock:
            return self._advance_epoch()

    def _advance_epoch(self) -> MaintenanceReport:
        self.epoch += 1
        with span("archive.advance_epoch", epoch=self.epoch):
            _metrics.inc("archive_ops_total", op="advance_epoch")
            report = MaintenanceReport(epoch=self.epoch)
            self._rollover_signer_if_needed(report)
            cadence = self.policy.renew_every_epochs
            if (
                self.policy.information_theoretic
                and cadence is not None
                and self.epoch % cadence == 0
            ):
                with self._maintenance_reads():
                    for object_id in list(self._receipts):
                        report.renewal_bytes += self._renew_object(object_id)
                        report.objects_renewed += 1
            _metrics.inc("archive_renewed_objects_total", report.objects_renewed)
            _metrics.inc("archive_renewal_bytes_total", report.renewal_bytes)
            if self.tiering is not None:
                migration = self.tiering.run_epoch(self.epoch)
                report.objects_promoted = len(migration.promoted)
                report.objects_demoted = len(migration.demoted)
                report.migration_bytes = migration.bytes_moved
            # Chain renewal every epoch keeps the head signature fresh.
            self.authority.renew_chain(self.chain, self.epoch)
            report.chain_renewed = True
            return report

    def _maintenance_reads(self):
        """Context under which maintenance retrieves run: access tracking
        suspended (background reads are not demand); a no-op untiered."""
        if self.tiering is not None:
            return self.tiering.tracker.suspended()
        return nullcontext()

    @profiled(name="archive.renew_object")
    def _renew_object(self, object_id: str) -> int:
        """Client-driven share refresh: re-split and replace.

        For Shamir this is security-equivalent to Herzberg renewal (fresh
        uniform polynomial through the same secret); the in-place n^2
        protocol -- used when holders must not see the secret -- lives in
        :mod:`repro.secretsharing.proactive` and is exercised by the
        proactive benchmark.  Packed and LRSS targets refresh the same way.
        """
        receipt = self.receipt(object_id)
        data = self.retrieve(object_id)
        self.placement_policy.delete(receipt.placement)
        return self._resplit_and_replace(receipt, data)

    def _resplit_and_replace(self, receipt: StoreReceipt, data: bytes) -> int:
        """Re-encode *data* under a fresh split and replace the placement
        (shared by proactive renewal and repair-on-read)."""
        split = self._scheme.split(data, self.rng)
        payloads = {share.index: share.payload for share in split.shares}
        receipt.placement = self._store_shares(receipt.object_id, payloads)
        receipt.metadata["public"] = dict(split.public)
        return sum(len(p) for p in payloads.values())

    def _repair_on_read(self, object_id, data, report) -> None:
        """Repair a degraded object without re-timestamping: drop the old
        placement (including the rotted shares) and re-split in place."""
        receipt = self.receipt(object_id)
        self.placement_policy.delete(receipt.placement)
        self._resplit_and_replace(receipt, data)
        report.shares_repaired = len(report.repair_candidates)
        _metrics.inc("repairs_on_read_total", report.shares_repaired)

    # -- adversary -------------------------------------------------------------------------

    def attempt_recovery(
        self,
        object_id: str,
        stolen: dict[int, bytes],
        timeline: BreakTimeline,
        epoch: int,
    ) -> bytes:
        receipt = self.receipt(object_id)
        threshold = receipt.metadata["threshold"]
        if self.policy.target is ConfidentialityTarget.COMPUTATIONAL:
            if len(stolen) >= threshold:
                return self._decode(receipt, stolen)
            if not stolen:
                raise DecodingError(f"{object_id}: adversary holds no shares")
            self._require_at_rest_broken(timeline, epoch)
            return receipt.escrow["plaintext"]
        # Information-theoretic targets: share counting only.  Note that
        # shares stolen in different epochs belong to different polynomials;
        # the facade's refresh replaces node contents, so `stolen` here is
        # by construction a same-epoch haul.
        return self._decode(receipt, stolen)
