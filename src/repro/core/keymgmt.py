"""Key management with rotation history.

Two costs the paper attributes to computational approaches live here:

- cascade/layered systems carry "a growing history of encryption keys";
  :class:`KeyManager` makes that growth measurable (``history_bytes``);
- key *rotation* (new key, same cipher) is cheap for future data but does
  nothing for already-encrypted data without the re-encryption I/O -- the
  manager distinguishes ``rotate`` (new objects only) from
  ``supersede_cipher`` (a break response that marks every key of a fallen
  cipher as compromised, so callers know which objects still need the
  expensive path).

Keys can optionally be escrowed into a :class:`ProactiveVSS` group,
which is how the LINCOS/HasDPSS pattern ("share the key, not the data")
composes out of library pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline, global_registry
from repro.errors import KeyManagementError, ParameterError
from repro.secretsharing.verifiable import ProactiveVSS
from repro.security import redact_secret


@dataclass
class ManagedKey:
    key_id: str
    cipher_name: str
    material: bytes
    created_epoch: int
    #: Set when the key's cipher broke or the key was rotated away.
    retired_epoch: int | None = None
    compromised: bool = False

    def __repr__(self) -> str:
        return (
            f"ManagedKey(key_id={self.key_id!r}, cipher_name={self.cipher_name!r}, "
            f"material={redact_secret(self.material)}, "
            f"created_epoch={self.created_epoch}, retired_epoch={self.retired_epoch}, "
            f"compromised={self.compromised})"
        )


@dataclass
class KeyManager:
    """Per-object key issuance, rotation, and break response."""

    rng: DeterministicRandom
    default_cipher: str = "aes-256-ctr"
    key_size: int = 32
    _keys: dict[str, list[ManagedKey]] = field(default_factory=dict)
    epoch: int = 0

    # -- issuance ------------------------------------------------------------------

    def issue(self, object_id: str, cipher_name: str | None = None) -> ManagedKey:
        cipher_name = cipher_name or self.default_cipher
        if cipher_name not in global_registry():
            raise ParameterError(f"unknown cipher {cipher_name!r}")
        key = ManagedKey(
            key_id=f"{object_id}#v{len(self._keys.get(object_id, []))}",
            cipher_name=cipher_name,
            material=self.rng.bytes(self.key_size),
            created_epoch=self.epoch,
        )
        self._keys.setdefault(object_id, []).append(key)
        return key

    def current(self, object_id: str) -> ManagedKey:
        try:
            versions = self._keys[object_id]
        except KeyError:
            raise KeyManagementError(f"no keys for {object_id!r}") from None
        for key in reversed(versions):
            if key.retired_epoch is None:
                return key
        raise KeyManagementError(f"all keys for {object_id!r} are retired")

    def history(self, object_id: str) -> list[ManagedKey]:
        return list(self._keys.get(object_id, []))

    @property
    def history_bytes(self) -> int:
        """Total key material retained -- the cascade's 'growing history'."""
        return sum(
            len(key.material)
            for versions in self._keys.values()
            for key in versions
        )

    # -- rotation and break response ---------------------------------------------------

    def rotate(self, object_id: str, cipher_name: str | None = None) -> ManagedKey:
        """Retire the current key and issue a fresh one.

        Note what this does NOT do: touch any data already encrypted under
        the old key.  That data still needs re-encryption I/O, which is the
        planner's department (:mod:`repro.core.reencryption`).
        """
        old = self.current(object_id)
        old.retired_epoch = self.epoch
        return self.issue(object_id, cipher_name or old.cipher_name)

    def supersede_cipher(
        self, timeline: BreakTimeline, replacement_cipher: str
    ) -> list[str]:
        """Mark every key of every broken cipher compromised; rotate those
        objects to *replacement_cipher*.  Returns the object ids whose
        at-rest data is now exposed until re-encrypted."""
        exposed = []
        for object_id, versions in self._keys.items():
            needs_rotation = False
            for key in versions:
                if timeline.is_broken(key.cipher_name, self.epoch):
                    key.compromised = True
                    if key.retired_epoch is None:
                        needs_rotation = True
            if needs_rotation:
                exposed.append(object_id)
                self.rotate(object_id, replacement_cipher)
        return sorted(exposed)

    def advance_epoch(self, to_epoch: int) -> None:
        if to_epoch < self.epoch:
            raise ParameterError("epochs do not run backwards")
        self.epoch = to_epoch

    # -- escrow into DPSS groups -------------------------------------------------------------

    #: Limb width for VSS escrow: 15 bytes = 120 bits, always below the
    #: 126+-bit group order, so limbs round-trip exactly.
    ESCROW_LIMB_BYTES = 15

    def escrow_to_vss(self, object_id: str, n: int, t: int) -> list[ProactiveVSS]:
        """Share the current key into proactive VSS committees -- the
        'key plane is ITS even though the data plane is cheap' pattern.

        The key is split into 120-bit limbs (the scalar VSS works in a
        ~127-bit group), one committee per limb; all committees renew
        together under the caller's epoch schedule.
        """
        key = self.current(object_id)
        groups: list[ProactiveVSS] = []
        for offset in range(0, len(key.material), self.ESCROW_LIMB_BYTES):
            limb = key.material[offset : offset + self.ESCROW_LIMB_BYTES]
            group = ProactiveVSS(n, t)
            group.initialize(int.from_bytes(limb, "big"), self.rng)
            groups.append(group)
        return groups

    def recover_from_vss(self, groups: list[ProactiveVSS]) -> bytes:
        """Inverse of :meth:`escrow_to_vss` (works after any renewals)."""
        material = b""
        remaining = self.key_size
        for group in groups:
            limb_len = min(self.ESCROW_LIMB_BYTES, remaining)
            material += group.reconstruct().to_bytes(limb_len, "big")
            remaining -= limb_len
        return material
