"""Security classification engine.

Derives, for any :class:`repro.systems.base.ArchivalSystem`, the three
columns of the paper's Table 1 -- confidentiality in transit, confidentiality
at rest, storage cost -- from the system's actual components and measured
behavior, rather than from declarations:

- *transit* comes from the live channel object's security notion;
- *at rest* comes from whether the at-rest encoding names computational
  primitives it relies on (empty = information-theoretic), with the PASIS
  per-object override honored;
- *storage cost* is measured: stored bytes / plaintext bytes, bucketed by
  :meth:`repro.security.StorageCostBand.classify_overhead`.

The classifier also exposes encoding-level classification for Figure 1 (an
ordinal :class:`repro.security.SecurityLevel` per scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.registry import global_registry
from repro.errors import ParameterError
from repro.security import SecurityLevel, SecurityNotion, StorageCostBand
from repro.systems.base import ArchivalSystem


@dataclass(frozen=True)
class SystemClassification:
    """One measured Table 1 row."""

    system: str
    citation: str
    transit: SecurityNotion
    at_rest: SecurityNotion
    storage_overhead: float
    storage_band: StorageCostBand
    at_rest_note: str = ""

    def as_row(self) -> tuple[str, str, str, str]:
        at_rest_label = self.at_rest.label
        if self.at_rest_note:
            at_rest_label = f"{at_rest_label} ({self.at_rest_note})"
        return (
            self.system,
            self.transit.label,
            at_rest_label,
            self.storage_band.value,
        )


class SecurityClassifier:
    """Derives classifications from components and measurements."""

    def classify_system(
        self,
        system: ArchivalSystem,
        storage_band_override: StorageCostBand | None = None,
        at_rest_note: str = "",
    ) -> SystemClassification:
        overhead = system.storage_overhead()
        band = storage_band_override or StorageCostBand.classify_overhead(overhead)
        return SystemClassification(
            system=system.name,
            citation=system.citation,
            transit=system.transit_security,
            at_rest=system.at_rest_security,
            storage_overhead=overhead,
            storage_band=band,
            at_rest_note=at_rest_note,
        )

    # -- encoding-level (Figure 1) -----------------------------------------------------

    def classify_encoding_level(
        self, scheme_name: str, declared_level: SecurityLevel | None = None
    ) -> SecurityLevel:
        """Ordinal security level for a registered scheme.

        If the scheme object declares a level (all library schemes do), the
        declaration is checked against the registry's notion for
        consistency; otherwise the level is inferred from the registry.
        """
        registry = global_registry()
        if scheme_name in registry:
            info = registry.get(scheme_name)
            inferred = (
                SecurityLevel.ITS_PERFECT
                if info.notion is SecurityNotion.INFORMATION_THEORETIC
                else SecurityLevel.COMPUTATIONAL
            )
            if info.historically_broken:
                inferred = SecurityLevel.BROKEN
        else:
            inferred = SecurityLevel.NONE
        if declared_level is not None:
            # Declarations may refine within the same notion (e.g. ITS_PERFECT
            # vs ITS_CONDITIONAL) but must not jump notions upward.
            if declared_level.notion.value != inferred.notion.value and (
                declared_level > inferred
            ):
                raise ParameterError(
                    f"{scheme_name}: declared level {declared_level.name} exceeds "
                    f"registry notion {inferred.name}"
                )
            return declared_level
        return inferred
