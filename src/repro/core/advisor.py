"""The policy advisor: "no one size fits all", made navigable.

The paper closes where PASIS did two decades earlier: the designer must
choose a point on the efficiency/security trade-off per dataset.  The
advisor takes the requirements an archive owner can actually articulate --
how long the data must stay confidential, how much storage expansion is
affordable, how many provider losses must be survivable, whether
side-channel leakage is in scope -- and returns the policy that satisfies
them, or an explicit statement of which requirements conflict (which, per
the paper, they often do).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policy import ArchivePolicy, ConfidentialityTarget
from repro.errors import ParameterError

#: Confidentiality horizons (years) beyond which computational schemes are
#: imprudent per the paper's obsolescence argument.  30 is the usual
#: cryptoperiod guidance ceiling; anything beyond it gets ITS advice.
COMPUTATIONAL_HORIZON_YEARS = 30


@dataclass(frozen=True)
class Requirements:
    """What the archive owner knows about their data."""

    confidentiality_years: float
    #: Maximum affordable stored-bytes per plaintext byte.
    max_storage_overhead: float
    #: Provider losses the archive must survive.
    min_loss_tolerance: int = 1
    #: Dispersal width available (independent providers).
    providers: int = 6
    #: Side-channel leakage in the threat model?
    leakage_resilience: bool = False

    def __post_init__(self) -> None:
        if self.confidentiality_years <= 0:
            raise ParameterError("confidentiality horizon must be positive")
        if self.max_storage_overhead < 1:
            raise ParameterError("storage overhead budget must be >= 1x")
        if self.providers < 2:
            raise ParameterError("need at least two providers to disperse")
        if not 0 <= self.min_loss_tolerance < self.providers:
            raise ParameterError("loss tolerance must be < provider count")


@dataclass
class Recommendation:
    """The advisor's answer: a policy or an explained impossibility."""

    policy: ArchivePolicy | None
    rationale: list[str] = field(default_factory=list)
    conflicts: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.policy is not None

    def explain(self) -> str:
        lines = list(self.rationale)
        if self.conflicts:
            lines.append("unmet requirements:")
            lines.extend(f"  - {c}" for c in self.conflicts)
        return "\n".join(lines)


def recommend(requirements: Requirements) -> Recommendation:
    """Map requirements to a policy, honestly reporting dead ends."""
    r = requirements
    rationale: list[str] = []
    needs_its = r.confidentiality_years > COMPUTATIONAL_HORIZON_YEARS
    if needs_its:
        rationale.append(
            f"{r.confidentiality_years:.0f}-year confidentiality exceeds the "
            f"{COMPUTATIONAL_HORIZON_YEARS}-year computational prudence "
            "horizon: information-theoretic encoding required "
            "(cryptographic obsolescence, paper Section 3.1)"
        )
    else:
        rationale.append(
            f"{r.confidentiality_years:.0f}-year horizon: computational "
            "encoding acceptable (monitor the break timeline regardless)"
        )

    n = r.providers

    if not needs_its:
        # AONT-RS: k chosen to meet loss tolerance; overhead n/k.
        k = n - r.min_loss_tolerance
        if k < 1:
            return Recommendation(
                policy=None,
                rationale=rationale,
                conflicts=["loss tolerance consumes every provider"],
            )
        overhead = n / k
        if overhead > r.max_storage_overhead:
            return Recommendation(
                policy=None,
                rationale=rationale,
                conflicts=[
                    f"AONT-RS at n={n}, k={k} needs {overhead:.2f}x "
                    f"> budget {r.max_storage_overhead:.2f}x"
                ],
            )
        rationale.append(
            f"AONT-RS (n={n}, k={k}): {overhead:.2f}x storage, "
            f"tolerates {r.min_loss_tolerance} losses, no key management"
        )
        return Recommendation(
            policy=ArchivePolicy(
                target=ConfidentialityTarget.COMPUTATIONAL,
                n=n,
                t=k,
                renew_every_epochs=None,
            ),
            rationale=rationale,
        )

    # ITS path.  Privacy threshold: majority, but leave the loss budget.
    t = max(1, min(n - r.min_loss_tolerance, (n + 1) // 2))
    if r.leakage_resilience:
        overhead = float(n) + 1  # LRSS ~ n x (|m| + pad) + public part
        if overhead > r.max_storage_overhead:
            return Recommendation(
                policy=None,
                rationale=rationale,
                conflicts=[
                    f"LRSS needs ~{overhead:.1f}x > budget "
                    f"{r.max_storage_overhead:.2f}x; no cheaper "
                    "leakage-resilient ITS encoding exists (paper Section 4)"
                ],
            )
        rationale.append(
            f"LRSS (n={n}, t={t}): leakage-bounded ITS at ~{overhead:.1f}x"
        )
        return Recommendation(
            policy=ArchivePolicy(
                target=ConfidentialityTarget.LONG_TERM_LEAKAGE_HARDENED, n=n, t=t
            ),
            rationale=rationale,
        )

    # Prefer packed sharing when the budget forces it and the loss budget
    # allows the t+k reconstruction threshold.
    if float(n) <= r.max_storage_overhead:
        rationale.append(f"Shamir (n={n}, t={t}): perfect secrecy at {n:.1f}x")
        return Recommendation(
            policy=ArchivePolicy(target=ConfidentialityTarget.LONG_TERM, n=n, t=t),
            rationale=rationale,
        )
    for pack_width in range(2, n):
        if t + pack_width > n:
            break
        loss_tolerance = n - t - pack_width
        overhead = n / pack_width
        if overhead <= r.max_storage_overhead and loss_tolerance >= r.min_loss_tolerance:
            rationale.append(
                f"packed sharing (n={n}, t={t}, k={pack_width}): perfect "
                f"secrecy at {overhead:.2f}x, tolerates {loss_tolerance} losses "
                "(the availability discount is the price -- paper Figure 1)"
            )
            return Recommendation(
                policy=ArchivePolicy(
                    target=ConfidentialityTarget.LONG_TERM_ECONOMY,
                    n=n,
                    t=t,
                    pack_width=pack_width,
                ),
                rationale=rationale,
            )
    return Recommendation(
        policy=None,
        rationale=rationale,
        conflicts=[
            f"no information-theoretic encoding fits {r.max_storage_overhead:.2f}x "
            f"with loss tolerance {r.min_loss_tolerance} at n={n}: the "
            "perfect-secrecy storage bound (Beimel) is in the way -- this is "
            "the paper's 'seemingly intractable trade-off', hit exactly"
        ],
    )
