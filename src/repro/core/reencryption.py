"""The re-encryption planner: "cipher X broke -- now what, and how long?"

Turns a break event into a costed response plan using the Section 3.2 I/O
model.  The planner encodes the paper's comparison:

- **Information-theoretic at rest**: no campaign needed -- the break is
  irrelevant (this is the payoff the high storage cost bought).
- **Cascade/wrapped systems**: a wrap campaign -- same read+write I/O as
  re-encryption (the paper's critique of ArchiveSafeLT's emergency path),
  but no decrypt and no user-key involvement.
- **Plain encrypted systems**: a full re-encryption campaign; the plan
  includes the vulnerability window during which not-yet-converted data
  sits under the broken cipher, and the HNDL caveat that *already
  harvested* ciphertext is beyond saving either way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.storage.archive_model import (
    ArchiveProfile,
    ReencryptionEstimate,
    reencryption_estimate,
)


class ResponseKind(enum.Enum):
    NONE_NEEDED = "no response needed (information-theoretic at rest)"
    WRAP = "wrap in a new layer (cascade)"
    REENCRYPT = "full re-encryption"


@dataclass(frozen=True)
class ResponsePlan:
    kind: ResponseKind
    archive: ArchiveProfile
    estimate: ReencryptionEstimate | None
    #: Fraction of the archive exposed if an adversary harvested everything
    #: before the break (HNDL): conversion cannot help that copy.
    harvested_data_recoverable_by_adversary: bool

    @property
    def campaign_months(self) -> float:
        if self.estimate is None:
            return 0.0
        return self.estimate.total_months

    def summary(self) -> str:
        if self.kind is ResponseKind.NONE_NEEDED:
            return f"{self.archive.name}: {self.kind.value}"
        return (
            f"{self.archive.name}: {self.kind.value}, "
            f"{self.campaign_months:.1f} months; harvested copies "
            f"{'RECOVERABLE by adversary' if self.harvested_data_recoverable_by_adversary else 'safe'}"
        )


class ReencryptionPlanner:
    """Plans the response to a cipher break for a given archive profile."""

    def __init__(
        self,
        archive: ArchiveProfile,
        write_factor: float = 2.0,
        reserve_factor: float = 2.0,
    ):
        self.archive = archive
        self.write_factor = write_factor
        self.reserve_factor = reserve_factor

    def plan(
        self,
        at_rest_information_theoretic: bool,
        cascade_layers_remaining: int = 0,
    ) -> ResponsePlan:
        """Build the response plan.

        ``cascade_layers_remaining`` is how many *unbroken* layers protect
        the data (0 for single-cipher systems after their cipher falls).
        """
        if cascade_layers_remaining < 0:
            raise ParameterError("layer count cannot be negative")
        if at_rest_information_theoretic:
            return ResponsePlan(
                kind=ResponseKind.NONE_NEEDED,
                archive=self.archive,
                estimate=None,
                harvested_data_recoverable_by_adversary=False,
            )
        estimate = reencryption_estimate(
            self.archive, self.write_factor, self.reserve_factor
        )
        if cascade_layers_remaining > 0:
            # Layers still hold: wrapping is proactive, and harvested copies
            # are still protected by the surviving layers.
            return ResponsePlan(
                kind=ResponseKind.WRAP,
                archive=self.archive,
                estimate=estimate,
                harvested_data_recoverable_by_adversary=False,
            )
        return ResponsePlan(
            kind=ResponseKind.REENCRYPT,
            archive=self.archive,
            estimate=estimate,
            # The defining HNDL failure: conversion does not reach copies
            # already exfiltrated under the broken cipher.
            harvested_data_recoverable_by_adversary=True,
        )
