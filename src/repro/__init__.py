"""repro -- a crypto-agile secure archival library.

A full reproduction of *"Secure Archival is Hard... Really Hard"*
(HotStorage '24): every technique the paper surveys -- secret sharing and
its proactive/verifiable/leakage-resilient/packed variants, AONT-RS,
cascade ciphers, timestamp chains with Pedersen commitments, QKD and
Bounded-Storage-Model channels, the mobile and harvest-now-decrypt-later
adversaries, and the re-encryption feasibility model -- implemented from
scratch and wired into working archival systems.

Start with :class:`repro.core.SecureArchive` (see ``examples/quickstart.py``)
or regenerate the paper's artifacts via :mod:`repro.analysis`.
"""

from repro.core.archive import SecureArchive
from repro.core.policy import ArchivePolicy, ConfidentialityTarget
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.storage.node import make_node_fleet

__version__ = "1.0.0"

__all__ = [
    "SecureArchive",
    "ArchivePolicy",
    "ConfidentialityTarget",
    "DeterministicRandom",
    "BreakTimeline",
    "make_node_fleet",
    "__version__",
]
