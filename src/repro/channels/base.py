"""Channel abstractions shared by TLS-like, QKD, and BSM channels.

A channel turns plaintext into a :class:`Transmission` (the bytes on the
wire plus whatever cryptanalysis would eventually yield) and back.  The
adversary harness records transmissions as :class:`EavesdropRecord` -- the
"harvest" half of Harvest Now, Decrypt Later; the "decrypt later" half asks
the channel's :meth:`SecureChannelBase.break_open` with a break timeline and
an epoch.

Design note: *escrowed secrets*.  We cannot actually run future
cryptanalysis, so each computationally secure transmission carries its
session secret in a sealed field that only :meth:`break_open` may read, and
only when the timeline says the underlying primitive has fallen.  This keeps
the simulated power of "the adversary broke the cipher" exactly equal to
(never greater than) the real thing, and information-theoretic channels
simply have nothing in escrow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.registry import BreakTimeline
from repro.errors import ChannelError
from repro.security import SecurityNotion


@dataclass(frozen=True)
class Transmission:
    """One message as it crosses the wire."""

    channel: str
    sequence: int
    wire: bytes
    #: What a successful cryptanalysis of this transmission would recover;
    #: empty for information-theoretic channels.  Read only via break_open.
    _escrow: bytes = field(default=b"", repr=False)

    def __len__(self) -> int:
        return len(self.wire)


@dataclass
class EavesdropRecord:
    """The adversary's harvested copy of a transmission."""

    transmission: Transmission
    harvested_epoch: int


class SecureChannelBase:
    """Common bookkeeping for channels (subclasses set the class attrs)."""

    name: str = "abstract"
    notion: SecurityNotion = SecurityNotion.NONE
    #: Registry names of the primitives confidentiality rests on.
    relies_on: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._sequence = 0
        self.bytes_sent = 0

    def _next_sequence(self) -> int:
        seq = self._sequence
        self._sequence += 1
        return seq

    # -- adversary interface -----------------------------------------------------

    def is_breakable_at(self, timeline: BreakTimeline, epoch: int) -> bool:
        """True if every primitive this channel relies on has fallen."""
        if self.notion is SecurityNotion.INFORMATION_THEORETIC:
            return False
        if not self.relies_on:
            return False
        return all(timeline.is_broken(name, epoch) for name in self.relies_on)

    def break_open(
        self, transmission: Transmission, timeline: BreakTimeline, epoch: int
    ) -> bytes:
        """Decrypt a harvested transmission after the break ('decrypt later').

        Raises :class:`ChannelError` if the channel's primitives still hold
        at *epoch* -- harvesting alone yields nothing.
        """
        if not self.is_breakable_at(timeline, epoch):
            raise ChannelError(
                f"{self.name}: primitives {self.relies_on} not all broken at epoch {epoch}"
            )
        if not transmission._escrow:
            raise ChannelError(f"{self.name}: nothing recoverable from this transmission")
        return self._decrypt_with_escrow(transmission)

    def _decrypt_with_escrow(self, transmission: Transmission) -> bytes:
        raise NotImplementedError
