"""Bounded Storage Model key agreement (Maurer '92), practically evaluated.

Paper, Section 4: "An alternative to QKD for information-theoretic channels
is the Bounded Storage Model.  In the BSM, honest parties can agree on a
One-Time Pad key by streaming large amounts of random data to each other
such that an adversary with a much larger storage capacity cannot capture
the entire stream.  We believe the BSM is overdue for a practical
evaluation -- last evaluated in 2005."

``benchmarks/bench_bsm.py`` is that evaluation, at laptop scale.  The model:

1. a public randomness *broadcast* of N bytes streams past all parties;
2. the honest endpoints, sharing a short prior seed, each store the same k
   positions (k << N);
3. the adversary stores up to B bytes of its choice (B < N, the model's
   defining bound);
4. after the broadcast ends the parties fold their k stored bytes into a
   key via privacy amplification (pairwise folding + extraction), sized to
   the *residual* entropy: positions the adversary happened to store
   contribute nothing.

Security accounting is honest and information-theoretic: with B/N storage
fraction, each honest position is known to the adversary independently with
probability ~B/N, so the extractable key length is ~k * (1 - B/N) minus a
slack.  :class:`BsmAdversary` measures its actual knowledge so tests can
verify the accounting instead of trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.kdf import hkdf
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ChannelError, ParameterError
from repro.security import SecurityNotion, redact_secret

#: Safety slack (bytes) subtracted during privacy amplification.
_AMPLIFICATION_SLACK = 16


@dataclass
class BsmAgreementResult:
    """Outcome of one BSM key-agreement run."""

    key: bytes
    stream_bytes: int
    stored_positions: int
    adversary_storage: int
    adversary_known_positions: int

    def __repr__(self) -> str:
        return (
            f"BsmAgreementResult(key={redact_secret(self.key)}, "
            f"stream_bytes={self.stream_bytes}, "
            f"stored_positions={self.stored_positions}, "
            f"adversary_storage={self.adversary_storage}, "
            f"adversary_known_positions={self.adversary_known_positions})"
        )

    @property
    def adversary_knowledge_fraction(self) -> float:
        if self.stored_positions == 0:
            return 0.0
        return self.adversary_known_positions / self.stored_positions

    @property
    def residual_entropy_bytes(self) -> int:
        """Bytes of honest storage the adversary provably missed."""
        return self.stored_positions - self.adversary_known_positions


class BsmAdversary:
    """An adversary with bounded storage watching the broadcast."""

    def __init__(self, storage_bytes: int, rng: DeterministicRandom):
        if storage_bytes < 0:
            raise ParameterError("storage must be >= 0")
        self.storage_bytes = storage_bytes
        self._rng = rng
        self.stored: dict[int, int] = {}

    def observe_stream(self, stream: bytes) -> None:
        """Store up to the budget; absent a better strategy, uniformly
        random positions (optimal against random honest positions).

        Sampling half a megabyte of distinct positions with a pure-Python
        shuffle dominated benchmark time, so the permutation is delegated to
        a numpy generator seeded from the adversary's DRBG (still fully
        deterministic per seed)."""
        budget = min(self.storage_bytes, len(stream))
        if budget == 0:
            self.stored = {}
            return
        seed = int.from_bytes(self._rng.bytes(8), "big")
        generator = np.random.Generator(np.random.PCG64(seed))
        positions = generator.choice(len(stream), size=budget, replace=False)
        view = np.frombuffer(stream, dtype=np.uint8)
        self.stored = dict(zip(positions.tolist(), view[positions].tolist()))

    def knows(self, position: int) -> bool:
        return position in self.stored


class BoundedStorageChannel:
    """BSM key agreement between two honest endpoints sharing a seed."""

    name = "bsm"
    notion = SecurityNotion.INFORMATION_THEORETIC
    relies_on = ()  # assumption is physical (storage bound), not computational

    def __init__(
        self,
        stream_bytes: int,
        honest_positions: int,
        shared_seed: bytes,
        rng: DeterministicRandom | None = None,
    ):
        if stream_bytes <= 0:
            raise ParameterError("stream must be non-empty")
        if not 0 < honest_positions <= stream_bytes:
            raise ParameterError("honest positions must be in (0, stream_bytes]")
        self.stream_bytes = stream_bytes
        self.honest_positions = honest_positions
        self.shared_seed = shared_seed
        self._rng = rng or DeterministicRandom(b"bsm-broadcast")

    def _positions(self) -> list[int]:
        """The positions both honest parties store (derived from the seed)."""
        seeded = DeterministicRandom(b"bsm-positions:" + self.shared_seed)
        generator = np.random.Generator(
            np.random.PCG64(int.from_bytes(seeded.bytes(8), "big"))
        )
        return generator.choice(
            self.stream_bytes, size=self.honest_positions, replace=False
        ).tolist()

    def agree(self, adversary: BsmAdversary | None = None) -> BsmAgreementResult:
        """Run one broadcast round and derive the shared key."""
        stream = self._rng.bytes(self.stream_bytes)
        positions = self._positions()
        stored = bytes(stream[p] for p in positions)

        known = 0
        if adversary is not None:
            adversary.observe_stream(stream)
            known = sum(1 for p in positions if adversary.knows(p))

        key_length = max(0, len(stored) - known - _AMPLIFICATION_SLACK)
        if key_length == 0:
            raise ChannelError(
                "BSM agreement failed: adversary storage too close to the "
                f"stream size (knows {known}/{len(stored)} honest positions)"
            )
        # Privacy amplification.  The extractor is instantiated with HKDF (a
        # computational surrogate for a universal-hash extractor; see
        # DESIGN.md) -- the *length* accounting above is the IT part.
        key = hkdf(stored, key_length, info=b"bsm-privacy-amplification")
        return BsmAgreementResult(
            key=key,
            stream_bytes=self.stream_bytes,
            stored_positions=len(stored),
            adversary_storage=adversary.storage_bytes if adversary else 0,
            adversary_known_positions=known,
        )

    def expected_key_bytes(self, adversary_storage: int) -> float:
        """Analytic expectation of the extractable key length."""
        fraction = min(1.0, adversary_storage / self.stream_bytes)
        return max(
            0.0, self.honest_positions * (1 - fraction) - _AMPLIFICATION_SLACK
        )


register_primitive(
    name="bsm",
    kind=PrimitiveKind.KEY_AGREEMENT,
    description="Bounded Storage Model key agreement (Maurer)",
    hardness_assumption=None,
)
