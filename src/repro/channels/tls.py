"""A TLS-like channel: computationally secure, harvestable.

Models the structure of a TLS 1.3-style session without pretending to be
one: an ephemeral Diffie-Hellman exchange in the library's Schnorr group
establishes a session secret, HKDF derives per-message keys, and ChaCha20
encrypts the payload.  The security classification is the point:
confidentiality rests on the DLP assumption plus the cipher, so a harvesting
adversary who records the handshake and the ciphertext decrypts everything
once either falls -- the scenario the paper's Section 3.2 closes with.
"""

from __future__ import annotations

from repro.channels.base import SecureChannelBase, Transmission
from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.kdf import hkdf
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ChannelError
from repro.gmath.primes import SchnorrGroup, default_group
from repro.security import SecurityNotion

_ZERO_NONCE = b"\x00" * 12


class TlsLikeChannel(SecureChannelBase):
    """Ephemeral-DH + ChaCha20 channel between two simulated endpoints."""

    name = "tls-like"
    notion = SecurityNotion.COMPUTATIONAL
    relies_on = ("toy-dh", "chacha20")

    def __init__(self, rng: DeterministicRandom, group: SchnorrGroup | None = None):
        super().__init__()
        self.group = group or default_group()
        # Ephemeral handshake: both exponents live only here.
        client_secret = rng.randrange(1, self.group.q)
        server_secret = rng.randrange(1, self.group.q)
        self.client_public = self.group.exp_g(client_secret)
        self.server_public = self.group.exp_g(server_secret)
        shared_point = pow(self.server_public, client_secret, self.group.p)
        self._session_secret = hkdf(
            shared_point.to_bytes((self.group.p.bit_length() + 7) // 8, "big"),
            32,
            info=b"tls-like session",
        )

    def send(self, plaintext: bytes) -> Transmission:
        sequence = self._next_sequence()
        key = hkdf(self._session_secret, 32, info=f"msg-{sequence}".encode())
        wire = chacha20_xor(key, _ZERO_NONCE, plaintext)
        self.bytes_sent += len(wire)
        return Transmission(
            channel=self.name,
            sequence=sequence,
            wire=wire,
            # What breaking DLP/ChaCha20 would yield: the session secret.
            _escrow=self._session_secret,
        )

    def receive(self, transmission: Transmission) -> bytes:
        if transmission.channel != self.name:
            raise ChannelError(f"transmission is not from a {self.name} channel")
        key = hkdf(
            self._session_secret, 32, info=f"msg-{transmission.sequence}".encode()
        )
        return chacha20_xor(key, _ZERO_NONCE, transmission.wire)

    def _decrypt_with_escrow(self, transmission: Transmission) -> bytes:
        session_secret = transmission._escrow
        key = hkdf(session_secret, 32, info=f"msg-{transmission.sequence}".encode())
        return chacha20_xor(key, _ZERO_NONCE, transmission.wire)


register_primitive(
    name="toy-dh",
    kind=PrimitiveKind.KEY_AGREEMENT,
    description="Ephemeral Diffie-Hellman in the library's Schnorr group",
    hardness_assumption="hardness of the discrete logarithm problem",
)
