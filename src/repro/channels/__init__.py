"""Communication channels with explicit security classification.

Paper, Section 3.2: "an adversary may find it more fruitful to steal data in
transit rather than data at rest, since TLS encryption is only
computationally secure.  This motivates a desire for information-
theoretically secure communication channels."

Three channels, one per position in that argument:

- ``tls`` -- a TLS-like channel (ephemeral key exchange + symmetric
  encryption), computationally secure, and *harvestable*: every transmission
  yields wire bytes an adversary can store and decrypt after a break.
- ``qkd`` -- a simulated Quantum Key Distribution link delivering one-time
  pads (LINCOS's channel), information-theoretically secure but rate- and
  infrastructure-limited.
- ``bsm`` -- Bounded Storage Model key agreement (Maurer), the paper's
  proposed QKD alternative, "overdue for a practical evaluation" -- which
  ``benchmarks/bench_bsm.py`` performs.
"""

from repro.channels.base import Transmission, EavesdropRecord
from repro.channels.tls import TlsLikeChannel
from repro.channels.qkd import QkdLink
from repro.channels.bsm import BoundedStorageChannel, BsmAdversary

__all__ = [
    "Transmission",
    "EavesdropRecord",
    "TlsLikeChannel",
    "QkdLink",
    "BoundedStorageChannel",
    "BsmAdversary",
]
