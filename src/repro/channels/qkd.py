"""Simulated Quantum Key Distribution link (LINCOS's channel).

"By setting up entangled quantum states, two parties can generate a shared
One-Time Pad key that is impervious to eavesdropping.  While promising, QKD
requires specialized infrastructure, and a number of engineering challenges
must be resolved..." (paper Section 3.2).

What the simulation preserves (per DESIGN.md's substitution table): the
archival-system-level properties --

- the link yields one-time-pad key material at a finite *key rate*
  (real deployed QKD: kilobits/s over metro fiber, far below data rates);
- transmissions consume pad byte-for-byte; exhausting the pad blocks sends
  until more key material is generated (:meth:`advance_time`);
- wire bytes carry zero information: there is no escrow, and
  ``break_open`` always fails, at any epoch, for any timeline;
- infrastructure has a capital + per-km cost so the trade-off analysis can
  price the "higher infrastructure costs" the paper's Section 4 weighs.
"""

from __future__ import annotations

from repro.channels.base import SecureChannelBase, Transmission
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.otp import otp_xor
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ChannelError, ParameterError
from repro.security import SecurityNotion


class QkdLink(SecureChannelBase):
    """A point-to-point QKD link feeding a one-time-pad channel."""

    name = "qkd-otp"
    notion = SecurityNotion.INFORMATION_THEORETIC
    relies_on = ()  # no computational assumptions

    #: Representative deployment economics (metro fiber QKD).
    CAPITAL_COST_USD = 100_000.0
    COST_PER_KM_USD = 10_000.0

    def __init__(
        self,
        rng: DeterministicRandom,
        key_rate_bytes_per_s: float = 1_000.0,
        distance_km: float = 50.0,
    ):
        super().__init__()
        if key_rate_bytes_per_s <= 0:
            raise ParameterError("key rate must be positive")
        if distance_km <= 0:
            raise ParameterError("distance must be positive")
        self._rng = rng
        self.key_rate_bytes_per_s = key_rate_bytes_per_s
        self.distance_km = distance_km
        self._pad = b""
        self.seconds_elapsed = 0.0
        # QKD gives both endpoints the same key; the receiving side's copy
        # of each consumed pad is kept here, indexed by sequence number.
        self._receive_pads: list[bytes] = []

    # -- key generation --------------------------------------------------------

    @property
    def pad_available(self) -> int:
        return len(self._pad)

    def advance_time(self, seconds: float) -> None:
        """Run the quantum link for *seconds*, accruing pad material."""
        if seconds < 0:
            raise ParameterError("time cannot run backwards")
        self.seconds_elapsed += seconds
        new_bytes = int(seconds * self.key_rate_bytes_per_s)
        if new_bytes:
            self._pad += self._rng.bytes(new_bytes)

    def seconds_needed_for(self, message_length: int) -> float:
        """Key-generation time required before *message_length* can be sent."""
        deficit = max(0, message_length - self.pad_available)
        return deficit / self.key_rate_bytes_per_s

    @property
    def infrastructure_cost_usd(self) -> float:
        return self.CAPITAL_COST_USD + self.COST_PER_KM_USD * self.distance_km

    # -- channel interface ---------------------------------------------------------

    def send(self, plaintext: bytes) -> Transmission:
        if len(plaintext) > self.pad_available:
            raise ChannelError(
                f"QKD pad exhausted: need {len(plaintext)} bytes, have "
                f"{self.pad_available}; advance_time() to generate more key"
            )
        pad, self._pad = self._pad[: len(plaintext)], self._pad[len(plaintext) :]
        wire = otp_xor(pad, plaintext)
        self.bytes_sent += len(wire)
        transmission = Transmission(
            channel=self.name,
            sequence=self._next_sequence(),
            wire=wire,
            _escrow=b"",  # nothing any cryptanalysis could ever yield
        )
        self._receive_pads.append(pad)
        return transmission

    def receive(self, transmission: Transmission) -> bytes:
        if transmission.channel != self.name:
            raise ChannelError(f"transmission is not from a {self.name} channel")
        try:
            pad = self._receive_pads[transmission.sequence]
        except IndexError:
            raise ChannelError("no pad recorded for this transmission") from None
        return otp_xor(pad, transmission.wire)


register_primitive(
    name="qkd-otp",
    kind=PrimitiveKind.KEY_AGREEMENT,
    description="Quantum key distribution feeding a one-time pad",
    hardness_assumption=None,
)
