"""Runtime tuning knobs for the compute substrate.

The library is deterministic by construction: every knob here is a *pure
performance* control -- worker counts, sharding cutoffs -- and none of them
may change a single output byte.  That invariant is what lets operators set
``REPRO_KERNEL_WORKERS=8`` on a 16-core ingest box and leave the default on
a laptop, while the 200-seed byte-identity suites pin both configurations
to the same ciphertext.

Knobs are read from the environment once, lazily, and can be overridden at
runtime (tests sweep worker counts; services may size the pool from their
own config).  Environment variables:

``REPRO_KERNEL_WORKERS``
    Worker threads for sharding wide GF(256) matmuls (and anything else
    that adopts the kernel pool).  ``0`` or unset means "one per CPU";
    ``1`` disables sharding entirely.
"""

from __future__ import annotations

import os

from repro.errors import ParameterError

_MAX_WORKERS = 64

_kernel_workers: int | None = None


def _workers_from_env() -> int:
    raw = os.environ.get("REPRO_KERNEL_WORKERS", "").strip()
    if not raw:
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ParameterError(
            f"REPRO_KERNEL_WORKERS must be an integer, got {raw!r}"
        ) from None
    if value == 0:
        return os.cpu_count() or 1
    return _validate_workers(value)


def _validate_workers(value: int) -> int:
    if not 1 <= value <= _MAX_WORKERS:
        raise ParameterError(
            f"kernel worker count must be in [1, {_MAX_WORKERS}], got {value}"
        )
    return value


def kernel_workers() -> int:
    """Worker threads available to the sharded GF(256) kernel."""
    global _kernel_workers
    if _kernel_workers is None:
        _kernel_workers = _workers_from_env()
    return _kernel_workers


def set_kernel_workers(count: int | None) -> None:
    """Override the kernel worker count (``None`` re-reads the environment).

    Purely a throughput knob: the sharded kernel is byte-identical at every
    worker count, so this is always safe to change at runtime.
    """
    global _kernel_workers
    _kernel_workers = None if count is None else _validate_workers(count)
