"""From-scratch cryptographic primitives and the obsolescence registry.

Everything the surveyed systems need is implemented here rather than imported
from a crypto library, because the paper's core argument is about primitives
*changing status over time*: each primitive registers itself with
:mod:`repro.crypto.registry`, and the break-timeline machinery can flip any
computationally secure primitive to "broken" at a simulated epoch, which the
archival systems and adversary harnesses then observe.

Submodules
----------
- ``sha256`` -- SHA-256 (pure-Python reference, cross-checked against
  hashlib, which backs the fast path).
- ``hmac_`` / ``kdf`` -- HMAC and HKDF on top of SHA-256.
- ``chacha20`` -- numpy-vectorized ChaCha20 stream cipher.
- ``aes`` -- table-driven AES-128/256 with a vectorized CTR mode.
- ``feistel`` -- deliberately weak 64-bit "LegacyFeistel" cipher standing in
  for DES-era constructions the paper lists as historically broken.
- ``otp`` -- the one-time pad (perfect secrecy baseline).
- ``cascade`` -- cascade-cipher robust combiner (ArchiveSafeLT's mechanism).
- ``aont`` -- all-or-nothing transform in the AONT-RS formulation.
- ``signatures`` -- Lamport one-time signatures, Merkle signature scheme,
  and a deliberately small toy RSA.
- ``commitments`` -- Pedersen (IT-hiding) and hash (IT-binding) commitments.
- ``drbg`` -- deterministic ChaCha20-based random generator.
- ``registry`` -- primitive metadata + the cryptographic break timeline.
"""

from repro.crypto.registry import (
    BreakTimeline,
    PrimitiveInfo,
    PrimitiveKind,
    global_registry,
)
from repro.crypto.sha256 import sha256, sha256_pure
from repro.crypto.chacha20 import ChaCha20Cipher
from repro.crypto.aes import AesCtrCipher
from repro.crypto.feistel import LegacyFeistelCipher
from repro.crypto.otp import OneTimePad
from repro.crypto.cascade import CascadeCipher
from repro.crypto.drbg import DeterministicRandom

__all__ = [
    "BreakTimeline",
    "PrimitiveInfo",
    "PrimitiveKind",
    "global_registry",
    "sha256",
    "sha256_pure",
    "ChaCha20Cipher",
    "AesCtrCipher",
    "LegacyFeistelCipher",
    "OneTimePad",
    "CascadeCipher",
    "DeterministicRandom",
]
