"""LegacyFeistel: a deliberately weak 64-bit-block cipher.

The paper (Section 3.1) lists DES among the schemes "believed to be secure at
one point in time [and] broken in the future".  Shipping real DES would add
bulk without insight; instead ``LegacyFeistelCipher`` is a 16-round Feistel
network with a 64-bit block, a 16-byte key, and an intentionally shallow
round function.  It is registered as *historically broken*, so every
obsolescence simulation treats it the way the present treats DES: an attacker
at any epoch can strip it.

``recover_key_by_brute_force`` demonstrates a practical attack on a reduced
key schedule, used by the harvest-now-decrypt-later benchmark to show actual
plaintext recovery rather than asserted recovery.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ParameterError

BLOCK_SIZE = 8
ROUNDS = 16
_MASK32 = 0xFFFFFFFF


def _round_keys(key: bytes, effective_key_bits: int) -> list[int]:
    """Derive 32-bit round keys from at most *effective_key_bits* of key.

    Truncating the effective key is how the cipher models a design whose
    keyspace cryptanalysis has collapsed (cf. DES's 56 bits brute-forced in
    1998): the interface takes 16 bytes, the security comes from far fewer.
    """
    if len(key) != 16:
        raise ParameterError("LegacyFeistel key must be 16 bytes")
    usable = int.from_bytes(key, "big") & ((1 << effective_key_bits) - 1)
    keys = []
    state = usable ^ 0x9E3779B97F4A7C15
    for round_index in range(ROUNDS):
        state = (state * 6364136223846793005 + round_index) & (1 << 64) - 1
        keys.append((state >> 16) & _MASK32)
    return keys


def _round_function(half: int, round_key: int) -> int:
    """Shallow ARX round function (weak on purpose)."""
    mixed = (half + round_key) & _MASK32
    mixed ^= ((mixed << 7) | (mixed >> 25)) & _MASK32
    mixed = (mixed * 0x85EBCA6B) & _MASK32
    return mixed ^ (mixed >> 13)


class LegacyFeistelCipher:
    """16-round Feistel cipher with a configurable *effective* key size.

    ``effective_key_bits`` defaults to 16: small enough that the brute-force
    attack below finishes in about a second of pure Python, which is exactly
    the property the obsolescence experiments need.
    """

    name = "legacy-feistel"
    key_size = 16
    nonce_size = 12

    def __init__(self, effective_key_bits: int = 16):
        if not 8 <= effective_key_bits <= 64:
            raise ParameterError("effective_key_bits must be in [8, 64]")
        self.effective_key_bits = effective_key_bits

    # -- block primitives -----------------------------------------------------

    def encrypt_block(self, key: bytes, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("LegacyFeistel block must be 8 bytes")
        left, right = struct.unpack(">II", block)
        for round_key in _round_keys(key, self.effective_key_bits):
            left, right = right, left ^ _round_function(right, round_key)
        return struct.pack(">II", right, left)

    def decrypt_block(self, key: bytes, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("LegacyFeistel block must be 8 bytes")
        right, left = struct.unpack(">II", block)
        for round_key in reversed(_round_keys(key, self.effective_key_bits)):
            left, right = right ^ _round_function(left, round_key), left
        return struct.pack(">II", left, right)

    # -- stream interface (CTR construction over the weak block) ---------------

    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
        stream = self._keystream(key, nonce, len(plaintext))
        return (np.frombuffer(plaintext, dtype=np.uint8) ^ stream).tobytes()

    def decrypt(self, key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
        return self.encrypt(key, nonce, ciphertext)

    def _keystream(self, key: bytes, nonce: bytes, length: int) -> np.ndarray:
        if len(nonce) != self.nonce_size:
            raise ParameterError("LegacyFeistel nonce must be 12 bytes")
        n_blocks = -(-length // BLOCK_SIZE)
        prefix = nonce[:4]
        out = bytearray()
        for counter in range(n_blocks):
            out += self.encrypt_block(key, prefix + struct.pack(">I", counter))
        return np.frombuffer(bytes(out[:length]), dtype=np.uint8)

    # -- the attack -------------------------------------------------------------

    def recover_key_by_brute_force(
        self, known_plaintext_block: bytes, ciphertext_block: bytes
    ) -> bytes | None:
        """Exhaust the effective keyspace; return a working 16-byte key.

        Models the post-break world: once a cipher's effective strength falls
        inside an adversary's budget, one known-plaintext pair yields the key.
        """
        for candidate in range(1 << self.effective_key_bits):
            key = candidate.to_bytes(16, "big")
            if self.encrypt_block(key, known_plaintext_block) == ciphertext_block:
                return key
        return None


register_primitive(
    name="legacy-feistel",
    kind=PrimitiveKind.CIPHER,
    description="Weak 64-bit Feistel cipher (DES-era stand-in)",
    hardness_assumption="small effective keyspace (falsified by design)",
    historically_broken=True,
)
