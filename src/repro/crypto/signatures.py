"""Digital signatures for long-term integrity.

Section 3.3 of the paper: "computationally secure digital signatures are
widely used for integrity protection.  A single signature alone may
eventually be broken, but long-term integrity can be achieved with a chain of
digitally signed timestamps."  The timestamp chain itself lives in
:mod:`repro.integrity.timestamp`; this module supplies the signature schemes
it rotates through:

- :class:`LamportSignature` -- hash-based one-time signatures.  Hash-based
  schemes matter here because their assumption (one-wayness of the hash) is
  the weakest of all computational assumptions, making them the natural
  "newer, more secure signature" to roll onto a chain.
- :class:`MerkleSignature` -- a Merkle tree over many Lamport key pairs,
  turning one-time signatures into a many-time scheme with one public root.
- :class:`ToyRsaSignature` -- textbook RSA with deliberately small moduli,
  the designated "old scheme that gets broken": :func:`factor_modulus`
  actually factors it, letting the adversary harness forge signatures after
  the break epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256
from repro.errors import IntegrityError, KeyManagementError, ParameterError
from repro.gmath.primes import random_prime
from repro.security import redact_secret

_HASH_BITS = 256


# -- Lamport one-time signatures ------------------------------------------------


@dataclass(frozen=True)
class LamportKeyPair:
    """One-time key pair: 2x256 secret preimages and their hashes."""

    secret: tuple[tuple[bytes, bytes], ...]
    public: tuple[tuple[bytes, bytes], ...]

    def __repr__(self) -> str:
        preimages = redact_secret(b"".join(b for pair in self.secret for b in pair))
        return (
            f"LamportKeyPair(secret=<{len(self.secret)} pairs, {preimages}>, "
            f"public=<{len(self.public)} pairs>)"
        )


class LamportSignature:
    """Lamport-Diffie one-time signatures over SHA-256."""

    name = "lamport-ots"

    @staticmethod
    def generate(rng: DeterministicRandom) -> LamportKeyPair:
        secret = tuple(
            (rng.bytes(32), rng.bytes(32)) for _ in range(_HASH_BITS)
        )
        public = tuple((sha256(a), sha256(b)) for a, b in secret)
        return LamportKeyPair(secret=secret, public=public)

    @staticmethod
    def sign(key_pair: LamportKeyPair, message: bytes) -> bytes:
        digest = sha256(message)
        parts = []
        for bit_index in range(_HASH_BITS):
            bit = (digest[bit_index // 8] >> (7 - bit_index % 8)) & 1
            parts.append(key_pair.secret[bit_index][bit])
        return b"".join(parts)

    @staticmethod
    def verify(public: tuple[tuple[bytes, bytes], ...], message: bytes, signature: bytes) -> bool:
        if len(signature) != 32 * _HASH_BITS:
            return False
        digest = sha256(message)
        for bit_index in range(_HASH_BITS):
            bit = (digest[bit_index // 8] >> (7 - bit_index % 8)) & 1
            revealed = signature[32 * bit_index : 32 * (bit_index + 1)]
            if sha256(revealed) != public[bit_index][bit]:
                return False
        return True

    @staticmethod
    def public_key_digest(public: tuple[tuple[bytes, bytes], ...]) -> bytes:
        return sha256(b"".join(a + b for a, b in public))


# -- Merkle many-time signatures ---------------------------------------------------


def _merkle_parent(left: bytes, right: bytes) -> bytes:
    return sha256(b"\x01" + left + right)


class MerkleSignature:
    """Merkle signature scheme: a tree over 2^h Lamport key pairs.

    The public key is the Merkle root; each signature reveals one Lamport
    signature plus its authentication path.  Key pairs are consumed in order
    and never reused (:attr:`remaining` tracks the budget).
    """

    name = "merkle-lamport"

    def __init__(self, height: int, rng: DeterministicRandom):
        if not 1 <= height <= 12:
            raise ParameterError("tree height must be in [1, 12]")
        self.height = height
        self._key_pairs = [LamportSignature.generate(rng) for _ in range(1 << height)]
        self._leaves = [
            LamportSignature.public_key_digest(kp.public) for kp in self._key_pairs
        ]
        self._levels = [self._leaves]
        while len(self._levels[-1]) > 1:
            level = self._levels[-1]
            self._levels.append(
                [_merkle_parent(level[i], level[i + 1]) for i in range(0, len(level), 2)]
            )
        self.public_root = self._levels[-1][0]
        self._next_index = 0

    @property
    def remaining(self) -> int:
        return len(self._key_pairs) - self._next_index

    def sign(self, message: bytes) -> dict:
        if self.remaining == 0:
            raise KeyManagementError("Merkle signature key pairs exhausted")
        index = self._next_index
        self._next_index += 1
        key_pair = self._key_pairs[index]
        path = []
        node = index
        for level in self._levels[:-1]:
            sibling = node ^ 1
            path.append(level[sibling])
            node //= 2
        return {
            "index": index,
            "ots_signature": LamportSignature.sign(key_pair, message),
            "ots_public": key_pair.public,
            "auth_path": path,
        }

    @staticmethod
    def verify(public_root: bytes, message: bytes, signature: dict) -> bool:
        try:
            index = signature["index"]
            ots_signature = signature["ots_signature"]
            ots_public = signature["ots_public"]
            path = signature["auth_path"]
        except (TypeError, KeyError):
            return False
        if not LamportSignature.verify(ots_public, message, ots_signature):
            return False
        node_hash = LamportSignature.public_key_digest(ots_public)
        node = index
        for sibling in path:
            if node % 2 == 0:
                node_hash = _merkle_parent(node_hash, sibling)
            else:
                node_hash = _merkle_parent(sibling, node_hash)
            node //= 2
        # The Merkle public-key root is, definitionally, public key material;
        # both compared values are known to any verifier.
        return node_hash == public_root  # noqa: ARCH004 - public key root


# -- Toy RSA (the breakable scheme) -------------------------------------------------


@dataclass(frozen=True)
class RsaKeyPair:
    n: int
    e: int
    d: int

    @property
    def public(self) -> tuple[int, int]:
        return (self.n, self.e)


class ToyRsaSignature:
    """Textbook RSA-with-hash signatures over a *small* modulus.

    The modulus defaults to 64 bits so that :func:`factor_modulus` succeeds
    in milliseconds -- the library's concrete model of "signature scheme
    broken by cryptanalytic advance" (Shor's algorithm, improved NFS, ...).
    """

    name = "toy-rsa"

    def __init__(self, modulus_bits: int = 64):
        if not 16 <= modulus_bits <= 2048:
            raise ParameterError("modulus_bits must be in [16, 2048]")
        self.modulus_bits = modulus_bits

    def generate(self, rng: DeterministicRandom) -> RsaKeyPair:
        half = self.modulus_bits // 2
        while True:
            p = random_prime(half, rng)
            q = random_prime(self.modulus_bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            e = 65537
            if math.gcd(e, phi) != 1:
                continue
            return RsaKeyPair(n=n, e=e, d=pow(e, -1, phi))

    def _digest_int(self, message: bytes, n: int) -> int:
        return int.from_bytes(sha256(message), "big") % n

    def sign(self, key: RsaKeyPair, message: bytes) -> int:
        return pow(self._digest_int(message, key.n), key.d, key.n)

    def verify(self, public: tuple[int, int], message: bytes, signature: int) -> bool:
        n, e = public
        # RSA verification operates entirely on public values (signature,
        # public exponent, modulus, message digest) -- nothing secret leaks
        # through comparison timing.
        return pow(signature, e, n) == self._digest_int(message, n)  # noqa: ARCH004 - public verification math

    # -- the attack -------------------------------------------------------------

    def forge_after_break(
        self, public: tuple[int, int], message: bytes
    ) -> int:
        """Forge a signature by factoring the modulus (the 'broken' world)."""
        n, e = public
        p = factor_modulus(n)
        q = n // p
        d = pow(e, -1, (p - 1) * (q - 1))
        return pow(self._digest_int(message, n), d, n)


def factor_modulus(n: int) -> int:
    """Pollard's rho; practical for the toy modulus sizes used here."""
    if n % 2 == 0:
        return 2
    x, y, d = 2, 2, 1
    c = 1
    while d in (1, n):
        x, y, d = 2, 2, 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = math.gcd(abs(x - y), n)
        c += 1
        if c > 50:
            raise IntegrityError(f"failed to factor {n}")
    return d


register_primitive(
    name="lamport-ots",
    kind=PrimitiveKind.SIGNATURE,
    description="Lamport-Diffie one-time signatures over SHA-256",
    hardness_assumption="one-wayness of SHA-256",
)
register_primitive(
    name="merkle-lamport",
    kind=PrimitiveKind.SIGNATURE,
    description="Merkle tree of Lamport one-time signatures",
    hardness_assumption="collision resistance of SHA-256",
)
register_primitive(
    name="toy-rsa",
    kind=PrimitiveKind.SIGNATURE,
    description="Textbook RSA signatures with a small modulus",
    hardness_assumption="hardness of factoring (deliberately falsified at this size)",
    historically_broken=False,
)
