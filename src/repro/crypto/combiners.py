"""Robust combiners for hash functions.

The cascade cipher (:mod:`repro.crypto.cascade`) is the encryption-side
combiner the paper discusses via ArchiveSafeLT; this module supplies the
hash-side counterpart used by long-lived integrity structures: the
*concatenation combiner* ``C(m) = H1(m) || H2(m)`` is collision-resistant
as long as EITHER member is (a collision for C is simultaneously a
collision for both).

To have a second, independently breakable hash without importing one, the
library includes :func:`chacha_dm_hash`: a Merkle-Damgard construction with
a Davies-Meyer compression function built from the ChaCha permutation.  It
is registered separately so the break timeline can fell SHA-256 and the
ChaCha hash independently -- which is precisely what the combiner
experiments need.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.crypto.chacha20 import chacha20_keystream
from repro.crypto.registry import BreakTimeline, PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256

_BLOCK = 32
_IV = bytes.fromhex(
    "9e3779b97f4a7c15f39cc0605cedc8341082276bf3a27251f86c6a11d0c18e95"
)


def chacha_dm_hash(data: bytes) -> bytes:
    """32-byte Merkle-Damgard hash with a ChaCha-based Davies-Meyer step.

    Compression: ``h' = E_block(h) XOR h`` where E keys ChaCha with the
    message block and 'encrypts' the chaining value as keystream offset.
    Strengthened with standard length padding.
    """
    padded = data + b"\x80"
    padded += b"\x00" * ((_BLOCK - 8 - len(padded) % _BLOCK) % _BLOCK)
    padded += struct.pack(">Q", len(data) * 8)

    state = np.frombuffer(_IV, dtype=np.uint8).copy()
    for offset in range(0, len(padded), _BLOCK):
        block = padded[offset : offset + _BLOCK]
        stream = np.frombuffer(
            chacha20_keystream(block, state[:12].tobytes(), _BLOCK), dtype=np.uint8
        )
        state = stream ^ state  # Davies-Meyer feed-forward
    return state.tobytes()


class CombinedHash:
    """Concatenation combiner over SHA-256 and the ChaCha-DM hash."""

    name = "combined-hash"
    digest_size = 64
    members = ("sha256", "chacha-dm")

    @staticmethod
    def digest(data: bytes) -> bytes:
        return sha256(data) + chacha_dm_hash(data)

    @classmethod
    def collision_resistant_at(cls, timeline: BreakTimeline, epoch: int) -> bool:
        """The combiner property: holds while ANY member holds."""
        return any(not timeline.is_broken(m, epoch) for m in cls.members)


register_primitive(
    name="chacha-dm",
    kind=PrimitiveKind.HASH,
    description="Merkle-Damgard hash with a ChaCha Davies-Meyer compression",
    hardness_assumption="ChaCha permutation behaves as an ideal cipher",
)
register_primitive(
    name="combined-hash",
    kind=PrimitiveKind.HASH,
    description="Concatenation combiner: SHA-256 || ChaCha-DM",
    hardness_assumption="at least one member hash remains collision-resistant",
)
