"""HMAC-SHA256 (RFC 2104), built on the library's SHA-256.

Named ``hmac_`` to avoid shadowing the standard-library module for readers
who grep imports.
"""

from __future__ import annotations

from repro.crypto.sha256 import BLOCK_SIZE, sha256


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message)."""
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")
    o_key_pad = bytes(b ^ 0x5C for b in key)
    i_key_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_key_pad + sha256(i_key_pad + message))


def constant_time_eq(a: bytes | str, b: bytes | str) -> bool:
    """Data-independent equality for tags/digests/keys (ARCH004's target).

    Accepts ``str`` for hex-encoded digests.  No early exit on mismatch, so
    the number of matching leading bytes never shows up in timing (timing is
    irrelevant in simulation, but the idiom is kept -- and now lint-enforced
    -- so the code reads like production crypto).
    """
    if isinstance(a, str):
        a = a.encode()
    if isinstance(b, str):
        b = b.encode()
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def verify_hmac_sha256(key: bytes, message: bytes, tag: bytes) -> bool:
    """Verify HMAC-SHA256(key, message) against *tag* in constant time."""
    return constant_time_eq(hmac_sha256(key, message), tag)
