"""HMAC-SHA256 (RFC 2104), built on the library's SHA-256.

Named ``hmac_`` to avoid shadowing the standard-library module for readers
who grep imports.
"""

from __future__ import annotations

from repro.crypto.sha256 import BLOCK_SIZE, sha256


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message)."""
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")
    o_key_pad = bytes(b ^ 0x5C for b in key)
    i_key_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_key_pad + sha256(i_key_pad + message))


def verify_hmac_sha256(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish tag comparison (timing is irrelevant in simulation,
    but the idiom is kept so the code reads like production crypto)."""
    expected = hmac_sha256(key, message)
    if len(expected) != len(tag):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
