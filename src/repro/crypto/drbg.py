"""Deterministic random byte generation.

Simulations must be reproducible, and secret sharing needs *bulk* randomness
(Shamir consumes ``(t-1) * |message|`` random bytes per object).
``DeterministicRandom`` therefore runs ChaCha20 as a DRBG: seeded once,
producing a keystream in large vectorized slabs.

It also implements the subset of :class:`random.Random`'s interface the rest
of the library uses (``randrange``, ``getrandbits``, ``sample``, ``random``),
so protocol code can take either a stdlib Random (tests, hypothesis) or a
DeterministicRandom (library default) interchangeably.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.chacha20 import chacha20_keystream
from repro.crypto.sha256 import sha256
from repro.errors import ParameterError

_SLAB_BYTES = 1 << 16


class DeterministicRandom:
    """ChaCha20-based deterministic random generator."""

    def __init__(self, seed: bytes | int | str = 0):
        if isinstance(seed, int):
            seed = seed.to_bytes(32, "big", signed=False) if seed >= 0 else sha256(str(seed).encode())
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = sha256(b"repro-drbg:" + seed)
        self._nonce = b"\x00" * 12
        self._block_counter = 0
        self._buffer = b""

    # -- bulk bytes ---------------------------------------------------------

    def bytes(self, length: int) -> bytes:
        """Return *length* fresh random bytes.

        The shortfall is generated in ONE keystream call (rounded up to
        whole 64-byte blocks, minimum one slab) rather than a loop of
        fixed-size slabs: the ChaCha20 core is vectorized across blocks,
        so a single 2 MiB request is ~5x faster than 32 slab calls.  The
        output stream is byte-identical either way -- the DRBG always
        consumes whole blocks of one sequential keystream.
        """
        if length < 0:
            raise ParameterError("length must be >= 0")
        shortfall = length - len(self._buffer)
        if shortfall > 0:
            draw = max(-(-shortfall // 64) * 64, _SLAB_BYTES)
            slab = chacha20_keystream(
                self._key, self._nonce, draw, counter=self._block_counter
            )
            self._block_counter += draw // 64
            self._buffer += slab
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def uint8_array(self, length: int) -> np.ndarray:
        """Random uint8 numpy array (zero-copy over :meth:`bytes`)."""
        return np.frombuffer(self.bytes(length), dtype=np.uint8)

    # -- stdlib-Random-compatible subset --------------------------------------

    def getrandbits(self, bits: int) -> int:
        if bits <= 0:
            raise ParameterError("bits must be > 0")
        n_bytes = -(-bits // 8)
        value = int.from_bytes(self.bytes(n_bytes), "big")
        return value >> (8 * n_bytes - bits)

    def randrange(self, start: int, stop: int | None = None) -> int:
        if stop is None:
            start, stop = 0, start
        span = stop - start
        if span <= 0:
            raise ParameterError("empty randrange")
        # Rejection sampling for uniformity.
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return start + candidate

    def randint(self, a: int, b: int) -> int:
        return self.randrange(a, b + 1)

    def random(self) -> float:
        return self.getrandbits(53) / (1 << 53)

    def shuffle(self, seq: list) -> None:
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def sample(self, population, k: int) -> list:
        pool = list(population)
        if k > len(pool):
            raise ParameterError("sample larger than population")
        self.shuffle(pool)
        return pool[:k]

    def choice(self, population):
        pool = list(population)
        if not pool:
            raise ParameterError("cannot choose from empty population")
        return pool[self.randrange(len(pool))]
