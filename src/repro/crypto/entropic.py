"""Entropically secure encryption (Dodis-Smith style).

Figure 1 of the paper places "Entropically Secure Encryption" in the
enviable quadrant: low storage cost *and* high security -- with an asterisk.
The guarantee is information-theoretic only when the *message itself* has
high min-entropy from the adversary's perspective; the key can then be much
shorter than the message (|k| ~ entropy deficiency + 2 log(1/eps)), beating
the one-time pad's |k| = |m| bound without contradicting Shannon, because
perfect secrecy is relaxed to entropic security.

Construction (the classic small-bias-space instantiation): the key selects a
member of a delta-biased family of masks; we realize the family as the
GF(2)-linear span of keystream rows generated from the seed.  Encryption is
``c = m XOR expand(seed)``; storage cost is |m| + |seed|.

The implementation reports its *conditional* status honestly through
:data:`SECURITY_LEVEL`-style metadata: classified ``ITS_CONDITIONAL``
(information-theoretic *if* the message entropy assumption holds, which an
archival system cannot generally verify).  The expansion is instantiated
with ChaCha20 keystream as the delta-biased family surrogate -- see
DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.chacha20 import chacha20_keystream
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256
from repro.errors import ParameterError
from repro.security import SecurityLevel, redact_secret

_ZERO_NONCE = b"\x00" * 12


@dataclass(frozen=True)
class EntropicCiphertext:
    """Seed travels with the ciphertext; the short key stays with the user."""

    masked: bytes
    seed: bytes

    def __repr__(self) -> str:
        return (
            f"EntropicCiphertext(masked={redact_secret(self.masked)}, "
            f"seed={redact_secret(self.seed)})"
        )


class EntropicEncryption:
    """Short-key encryption that is ITS for high-min-entropy messages."""

    name = "entropic"
    security_level = SecurityLevel.ITS_CONDITIONAL

    def __init__(self, key_bytes: int = 16, min_entropy_bits: int = 256):
        """*key_bytes* is the short user key; *min_entropy_bits* documents
        the message-entropy assumption the ITS guarantee is conditioned on.

        Keys below 8 bytes are permitted but model the *enumerable-key*
        regime: they exist so tests and benchmarks can demonstrate the
        scheme's failure mode (low message entropy + small keyspace =
        distinguishable), which is exactly the asterisk Figure 1 puts on
        this encoding.
        """
        if key_bytes < 1:
            raise ParameterError("entropic key must be at least 1 byte")
        self.key_bytes = key_bytes
        self.min_entropy_bits = min_entropy_bits

    def generate_key(self, rng: DeterministicRandom) -> bytes:
        return rng.bytes(self.key_bytes)

    def _mask(self, key: bytes, seed: bytes, length: int) -> np.ndarray:
        expanded = sha256(b"entropic:" + key + seed)
        stream = chacha20_keystream(expanded, _ZERO_NONCE, length)
        return np.frombuffer(stream, dtype=np.uint8)

    def encrypt(self, key: bytes, message: bytes, rng: DeterministicRandom) -> EntropicCiphertext:
        if len(key) != self.key_bytes:
            raise ParameterError(f"key must be {self.key_bytes} bytes")
        seed = rng.bytes(16)
        mask = self._mask(key, seed, len(message))
        masked = (np.frombuffer(message, dtype=np.uint8) ^ mask).tobytes()
        return EntropicCiphertext(masked=masked, seed=seed)

    def decrypt(self, key: bytes, ciphertext: EntropicCiphertext) -> bytes:
        if len(key) != self.key_bytes:
            raise ParameterError(f"key must be {self.key_bytes} bytes")
        mask = self._mask(key, ciphertext.seed, len(ciphertext.masked))
        return (np.frombuffer(ciphertext.masked, dtype=np.uint8) ^ mask).tobytes()

    def storage_overhead_for(self, message_length: int) -> float:
        """(|c| + |seed|) / |m| -- essentially 1: the Figure 1 'low cost'."""
        if message_length == 0:
            return 1.0
        return (message_length + 16) / message_length


register_primitive(
    name="entropic",
    kind=PrimitiveKind.CIPHER,
    description="Entropically secure encryption (short key, ITS for high-entropy messages)",
    hardness_assumption=None,  # conditional on message min-entropy, not hardness
)
