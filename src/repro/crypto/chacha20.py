"""ChaCha20 stream cipher (RFC 8439 variant, 32-bit block counter).

The implementation is numpy-vectorized across blocks: all 64-byte blocks of
the keystream are computed simultaneously with uint32 array arithmetic, which
is what makes a pure-Python archival simulation able to encrypt megabytes per
second.  Correctness is pinned to the RFC 8439 test vector in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ParameterError
from repro.obs import metrics as _metrics

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_CONSTANTS = np.frombuffer(b"expand 32-byte k", dtype="<u4").copy()


def _rotl32(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """In-place quarter round on column vectors of the batched state."""
    state[a] += state[b]
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 0) -> bytes:
    """Generate *length* keystream bytes for (key, nonce) starting at block
    *counter*."""
    if len(key) != KEY_SIZE:
        raise ParameterError(f"ChaCha20 key must be {KEY_SIZE} bytes")
    if len(nonce) != NONCE_SIZE:
        raise ParameterError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes")
    if length <= 0:
        return b""

    n_blocks = -(-length // BLOCK_SIZE)
    if counter + n_blocks > 1 << 32:
        raise ParameterError("ChaCha20 block counter would overflow")
    _metrics.inc("crypto_cipher_calls_total", cipher="chacha20")
    _metrics.inc("crypto_cipher_bytes_total", length, cipher="chacha20")

    key_words = np.frombuffer(key, dtype="<u4")
    nonce_words = np.frombuffer(nonce, dtype="<u4")

    # Batched state: shape (16, n_blocks); row 12 is the per-block counter.
    state = np.empty((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = key_words[:, None]
    state[12] = np.arange(counter, counter + n_blocks, dtype=np.uint64).astype(np.uint32)
    state[13:16] = nonce_words[:, None]

    working = state.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):  # 20 rounds = 10 double-rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        working += state

    # Serialize: block-major, word-minor, little-endian.
    stream = working.T.astype("<u4").tobytes()
    return stream[:length]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 0) -> bytes:
    """Encrypt/decrypt *data* (the operation is its own inverse)."""
    stream = np.frombuffer(
        chacha20_keystream(key, nonce, len(data), counter), dtype=np.uint8
    )
    return (np.frombuffer(data, dtype=np.uint8) ^ stream).tobytes()


class ChaCha20Cipher:
    """Cipher-interface wrapper around ChaCha20 (see ``registry`` docs).

    Stateless: key and nonce are per call.  ``nonce_size`` and ``key_size``
    let generic archival code allocate material without special cases.
    """

    name = "chacha20"
    key_size = KEY_SIZE
    nonce_size = NONCE_SIZE

    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
        return chacha20_xor(key, nonce, plaintext)

    def decrypt(self, key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
        return chacha20_xor(key, nonce, ciphertext)


register_primitive(
    name="chacha20",
    kind=PrimitiveKind.CIPHER,
    description="ChaCha20 stream cipher (RFC 8439), 256-bit key",
    hardness_assumption="ARX permutation is a PRF",
)
