"""All-or-nothing transform (AONT), in the AONT-RS formulation.

Paper, Section 3.2 (describing Resch-Plank AONT-RS as deployed in
Cleversafe):

    "The AONT-RS scheme begins by splitting the data to be encrypted into
    equal-sized blocks m_1, ..., m_s.  Then, for each i the scheme computes
    ciphertext blocks c_i = m_i XOR Enc_k(i + 1), and a final ciphertext
    block c_{s+1} = k XOR h(c_1, ..., c_s)."

Properties this module makes testable:

- A PPT attacker holding *all* of the package inverts it with no key
  management at all (the key is inside, masked by the digest).
- An attacker missing any single byte range learns nothing -- assuming Enc
  and h are unbroken.  If either breaks, "an attacker trivially 'knows the
  key' and can recover plaintext from even a single share"; the
  :func:`aont_break_open` attack implements exactly that failure mode using
  the weak legacy cipher.

The dispersal half (erasure-coding the package across nodes) lives in
:mod:`repro.secretsharing.aontrs`.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.aes import aes_ctr_keystream, aes_ctr_transform
from repro.crypto.feistel import LegacyFeistelCipher
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256
from repro.errors import IntegrityError, ParameterError
from repro.crypto.drbg import DeterministicRandom
from repro.obs import metrics as _metrics

KEY_SIZE = 32
_ZERO_NONCE = b"\x00" * 12
#: Mask stream starts at counter 1, matching the paper's Enc_k(i + 1).
_COUNTER_BASE = 1


def _mask(key: bytes, length: int) -> bytes:
    """Enc_k(1), Enc_k(2), ... concatenated -- the per-block masks."""
    return aes_ctr_keystream(key, _ZERO_NONCE, length, initial_counter=_COUNTER_BASE)


def aont_package_array(data, rng: DeterministicRandom) -> np.ndarray:
    """Apply the all-or-nothing transform, returning a uint8 package array.

    *data* may be bytes-like or a flat uint8 array; it is viewed, never
    copied.  The body (``c_1..c_s``) is the slab CTR transform of the data,
    written straight into the single output buffer that also receives the
    final ``k XOR h(c_1..c_s)`` block, so packaging costs one pass and one
    copy regardless of object size.
    """
    key = rng.bytes(KEY_SIZE)
    buf = data if isinstance(data, np.ndarray) else np.frombuffer(data, dtype=np.uint8)
    length = buf.size
    package = np.empty(length + KEY_SIZE, dtype=np.uint8)
    body = package[:length]
    body[:] = aes_ctr_transform(key, _ZERO_NONCE, buf, initial_counter=_COUNTER_BASE)
    digest = sha256(body)
    package[length:] = np.frombuffer(key, dtype=np.uint8) ^ np.frombuffer(
        digest, dtype=np.uint8
    )
    _metrics.inc("crypto_aont_ops_total", direction="package")
    _metrics.inc("crypto_aont_bytes_total", length, direction="package")
    return package


def aont_package(data: bytes, rng: DeterministicRandom) -> bytes:
    """Apply the all-or-nothing transform.

    Returns ``c_1..c_s || c_{s+1}`` where the final 32-byte block is
    ``k XOR h(c_1..c_s)``.  The package is exactly ``len(data) + 32`` bytes:
    the AONT itself adds only the embedded key (storage-efficient; the real
    overhead of AONT-RS comes from the later erasure coding).
    """
    return aont_package_array(data, rng).tobytes()  # noqa: ARCH008 -- bytes API boundary


def aont_unpackage_array(package) -> np.ndarray:
    """Invert the transform given the *complete* package, as a uint8 array.

    *package* may be bytes-like or a flat uint8 array (e.g. the decoded
    payload straight out of the RS codec); it is viewed, never copied.
    """
    buf = package if isinstance(package, np.ndarray) else np.frombuffer(package, dtype=np.uint8)
    if buf.size < KEY_SIZE:
        raise ParameterError("AONT package shorter than its final block")
    body, final_block = buf[: -KEY_SIZE], buf[-KEY_SIZE:]
    digest = sha256(body)
    # 32-byte key, materialized for the cached AES schedule lookup.
    key = (final_block ^ np.frombuffer(digest, dtype=np.uint8)).tobytes()  # noqa: ARCH008
    _metrics.inc("crypto_aont_ops_total", direction="unpackage")
    _metrics.inc("crypto_aont_bytes_total", body.size, direction="unpackage")
    return aes_ctr_transform(key, _ZERO_NONCE, body, initial_counter=_COUNTER_BASE)


def aont_unpackage(package: bytes) -> bytes:
    """Invert the transform given the *complete* package."""
    return aont_unpackage_array(package).tobytes()  # noqa: ARCH008 -- bytes API boundary


def _xor(a: bytes, b: bytes) -> bytes:
    out = np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b[: len(a)], dtype=np.uint8)
    return out.tobytes()  # noqa: ARCH008 -- legacy weak-cipher demo path, not the pipeline


# -- the post-break attack -------------------------------------------------------


def aont_package_weak(data: bytes, rng: DeterministicRandom) -> bytes:
    """AONT built on the broken legacy cipher (for obsolescence experiments).

    Same structure as :func:`aont_package`, but the mask stream comes from
    :class:`LegacyFeistelCipher`, whose effective keyspace is brute-forceable.
    """
    cipher = LegacyFeistelCipher()
    key = rng.bytes(16)
    mask = cipher.encrypt(key, _ZERO_NONCE, b"\x00" * len(data))
    body = _xor(data, mask)
    digest = sha256(body)
    final_block = bytes(  # noqa: ARCH008 -- 16-byte tail of the weak-cipher demo
        k ^ d for k, d in zip(key, digest[:16])
    )
    return body + final_block


def aont_break_open(package: bytes, known_prefix: bytes) -> bytes:
    """Recover plaintext from a weak-cipher package *without* the final block.

    Models the paper's observation: once the underlying cipher is broken, an
    attacker "trivially knows the key" -- here by brute-forcing the legacy
    cipher's keyspace against a known plaintext prefix.  Only the body
    (c_1..c_s) is required; the embedded-key block is not used.
    """
    cipher = LegacyFeistelCipher()
    body = package[:-16] if len(package) >= 16 else package
    if len(known_prefix) < 8:
        raise ParameterError("need at least one 8-byte block of known plaintext")
    target_mask = _xor(body[:8], known_prefix[:8])
    # Mask block 0 is E_k(nonce_prefix || counter=0).
    probe_block = _ZERO_NONCE[:4] + b"\x00\x00\x00\x00"
    key = cipher.recover_key_by_brute_force(probe_block, target_mask)
    if key is None:
        raise IntegrityError("brute force failed: cipher not actually weak enough")
    mask = cipher.encrypt(key, _ZERO_NONCE, b"\x00" * len(body))
    return _xor(body, mask)


register_primitive(
    name="aont",
    kind=PrimitiveKind.CIPHER,
    description="All-or-nothing transform (Resch-Plank formulation)",
    hardness_assumption="AES is a PRP and SHA-256 is preimage-resistant",
)
