"""Commitment schemes.

LINCOS's key observation (paper Section 3.3): timestamp chains built from
computationally secure *hashes* leak -- an unbounded adversary can invert or
enumerate them, compromising the information-theoretic confidentiality of the
committed data.  Swapping hashes for *information-theoretically hiding*
commitments (Pedersen) preserves ITS confidentiality while keeping integrity
computationally sound.

Two schemes, deliberately dual:

- :class:`PedersenCommitment` -- perfectly hiding (an unbounded adversary
  learns nothing about the value), computationally binding (opening two ways
  requires log_g h).
- :class:`HashCommitment` -- perfectly binding in practice, only
  computationally hiding (a ciphertext-harvesting adversary can grind small
  value spaces once the hash falls).

Pedersen commitments are also additively homomorphic, which is what
verifiable secret sharing exploits: commit(a) * commit(b) = commit(a + b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256
from repro.errors import ParameterError, VerificationError
from repro.gmath.primes import SchnorrGroup, default_group


@dataclass(frozen=True)
class PedersenOpening:
    """What the committer reveals to open: the value and the blinding."""

    value: int
    blinding: int


class PedersenCommitment:
    """Pedersen commitments in a Schnorr group: C = g^v * h^r mod p."""

    name = "pedersen"

    def __init__(self, group: SchnorrGroup | None = None):
        self.group = group or default_group()

    def commit(self, value: int, rng: DeterministicRandom) -> tuple[int, PedersenOpening]:
        """Commit to *value* (reduced mod q); returns (commitment, opening)."""
        blinding = rng.randrange(self.group.q)
        return self.commit_with_blinding(value, blinding), PedersenOpening(
            value % self.group.q, blinding
        )

    def commit_with_blinding(self, value: int, blinding: int) -> int:
        g_part = self.group.exp_g(value)
        h_part = self.group.exp_h(blinding)
        return self.group.mul(g_part, h_part)

    def verify(self, commitment: int, opening: PedersenOpening) -> bool:
        return commitment == self.commit_with_blinding(opening.value, opening.blinding)

    def require_valid(self, commitment: int, opening: PedersenOpening) -> None:
        if not self.verify(commitment, opening):
            raise VerificationError("Pedersen opening does not match commitment")

    # -- homomorphism -----------------------------------------------------------

    def combine(self, commitments: list[int]) -> int:
        """Product of commitments = commitment to the sum of values."""
        if not commitments:
            raise ParameterError("cannot combine zero commitments")
        acc = 1
        for c in commitments:
            acc = self.group.mul(acc, c)
        return acc

    def combine_openings(self, openings: list[PedersenOpening]) -> PedersenOpening:
        q = self.group.q
        return PedersenOpening(
            value=sum(o.value for o in openings) % q,
            blinding=sum(o.blinding for o in openings) % q,
        )

    def scale(self, commitment: int, scalar: int) -> int:
        """C^s = commitment to s * value (used by VSS share checks)."""
        return pow(commitment, scalar % self.group.q, self.group.p)


@dataclass(frozen=True)
class HashOpening:
    value: bytes
    nonce: bytes


class HashCommitment:
    """Hash commitment: C = H(nonce || value).

    Binding even against unbounded adversaries (up to collisions), but only
    *computationally* hiding -- the property LINCOS rejects for long-term
    confidentiality, reproduced here so the comparison is executable.
    """

    name = "hash-commitment"
    NONCE_SIZE = 32

    def commit(self, value: bytes, rng: DeterministicRandom) -> tuple[bytes, HashOpening]:
        nonce = rng.bytes(self.NONCE_SIZE)
        return sha256(nonce + value), HashOpening(value=value, nonce=nonce)

    def verify(self, commitment: bytes, opening: HashOpening) -> bool:
        return commitment == sha256(opening.nonce + opening.value)

    @staticmethod
    def grind_small_space(commitment: bytes, candidates: list[bytes], nonce: bytes) -> bytes | None:
        """The harvesting adversary's move once it learns the nonce (or when
        no nonce is used): enumerate a small value space against the hash."""
        for candidate in candidates:
            if sha256(nonce + candidate) == commitment:
                return candidate
        return None


register_primitive(
    name="pedersen",
    kind=PrimitiveKind.COMMITMENT,
    description="Pedersen commitment: perfectly hiding, computationally binding",
    hardness_assumption=None,  # the *hiding* property is information-theoretic
)
register_primitive(
    name="hash-commitment",
    kind=PrimitiveKind.COMMITMENT,
    description="Hash commitment: binding, only computationally hiding",
    hardness_assumption="preimage resistance of SHA-256",
)
