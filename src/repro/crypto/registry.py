"""Primitive registry and the cryptographic break timeline.

The paper's core argument (Section 3.1, "Cryptographic Obsolescence") is that
every computationally secure primitive rests on an unproven hardness
assumption and may be broken within an archive's lifetime, as MD5, DES, and
discrete-log schemes already were.  This module makes that argument
executable:

- every primitive in :mod:`repro.crypto` registers itself with metadata
  (kind, hardness assumption, or ``None`` for information-theoretic ones);
- a :class:`BreakTimeline` assigns simulated break epochs to primitives;
- archival systems and adversaries consult the timeline, so a "harvest now,
  decrypt later" run is literally: store ciphertext at epoch 0, advance the
  timeline past the cipher's break epoch, attempt recovery.

Information-theoretic primitives (the one-time pad, Shamir sharing) have no
hardness assumption and the timeline refuses to break them -- that asymmetry
*is* the paper's thesis.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.errors import AdversaryError, ParameterError
from repro.security import SecurityNotion


class PrimitiveKind(enum.Enum):
    """What role a registered primitive plays."""

    CIPHER = "cipher"
    HASH = "hash"
    MAC = "mac"
    KDF = "kdf"
    SIGNATURE = "signature"
    COMMITMENT = "commitment"
    SECRET_SHARING = "secret-sharing"
    KEY_AGREEMENT = "key-agreement"


@dataclass(frozen=True)
class PrimitiveInfo:
    """Static metadata about one cryptographic primitive."""

    name: str
    kind: PrimitiveKind
    description: str
    #: The hardness assumption the primitive's security rests on, or None
    #: for information-theoretic primitives (which rest on nothing).
    hardness_assumption: str | None = None
    #: Set for primitives that are *already* broken in the real world and are
    #: included as historical exhibits (e.g. the toy Feistel/DES stand-in).
    historically_broken: bool = False

    @property
    def notion(self) -> SecurityNotion:
        if self.hardness_assumption is None:
            return SecurityNotion.INFORMATION_THEORETIC
        return SecurityNotion.COMPUTATIONAL

    @property
    def breakable(self) -> bool:
        """Only computational primitives can ever be broken."""
        return self.notion is SecurityNotion.COMPUTATIONAL


class PrimitiveRegistry:
    """Name -> :class:`PrimitiveInfo` catalogue.

    Registration normally happens at import time, but the global registry is
    readable from kernel worker threads and plugins may register lazily, so
    ``register`` runs its whole compare-and-insert under a lock: the
    duplicate check and the insert must be one critical section or two
    racing registrations of the same name could both pass the check.
    """

    def __init__(self) -> None:
        self._primitives: dict[str, PrimitiveInfo] = {}
        self._lock = threading.Lock()

    def register(self, info: PrimitiveInfo) -> PrimitiveInfo:
        with self._lock:
            existing = self._primitives.get(info.name)
            if existing is not None:
                if existing != info:
                    raise ParameterError(
                        f"primitive {info.name!r} already registered with different metadata"
                    )
                return existing
            self._primitives[info.name] = info
            return info

    def get(self, name: str) -> PrimitiveInfo:
        try:
            return self._primitives[name]
        except KeyError:
            raise ParameterError(f"unknown primitive {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._primitives

    def names(self) -> list[str]:
        return sorted(self._primitives)

    def by_kind(self, kind: PrimitiveKind) -> list[PrimitiveInfo]:
        return [p for p in self._primitives.values() if p.kind is kind]


_GLOBAL = PrimitiveRegistry()


def global_registry() -> PrimitiveRegistry:
    """The process-wide registry all primitives self-register into."""
    return _GLOBAL


def register_primitive(
    name: str,
    kind: PrimitiveKind,
    description: str,
    hardness_assumption: str | None = None,
    historically_broken: bool = False,
) -> PrimitiveInfo:
    """Convenience wrapper used at module import time by each primitive."""
    return _GLOBAL.register(
        PrimitiveInfo(
            name=name,
            kind=kind,
            description=description,
            hardness_assumption=hardness_assumption,
            historically_broken=historically_broken,
        )
    )


@dataclass
class BreakTimeline:
    """Assignment of break epochs to computational primitives.

    Epochs are abstract integers (the epoch scheduler in ``repro.core`` maps
    them to years).  A primitive with no entry is never broken during the
    simulation.
    """

    registry: PrimitiveRegistry = field(default_factory=global_registry)
    _break_epochs: dict[str, int] = field(default_factory=dict)

    def schedule_break(self, name: str, epoch: int) -> None:
        """Declare that *name* is cryptanalyzed at *epoch* (inclusive)."""
        info = self.registry.get(name)
        if not info.breakable:
            raise AdversaryError(
                f"{name} is information-theoretically secure; "
                "no computational advance can break it"
            )
        if epoch < 0:
            raise ParameterError("break epoch must be >= 0")
        current = self._break_epochs.get(name)
        self._break_epochs[name] = epoch if current is None else min(current, epoch)

    def is_broken(self, name: str, epoch: int) -> bool:
        """Is *name* broken at (or before) *epoch*?"""
        info = self.registry.get(name)
        if info.historically_broken:
            return True
        break_epoch = self._break_epochs.get(name)
        return break_epoch is not None and epoch >= break_epoch

    def break_epoch(self, name: str) -> int | None:
        """The scheduled break epoch for *name*, or None."""
        info = self.registry.get(name)
        if info.historically_broken:
            return 0
        return self._break_epochs.get(name)

    def broken_primitives(self, epoch: int) -> list[str]:
        """All primitive names broken at *epoch*, sorted."""
        names = {
            name
            for name, when in self._break_epochs.items()
            if epoch >= when
        }
        names.update(
            p.name
            for p in self.registry._primitives.values()
            if p.historically_broken
        )
        return sorted(names)

    def copy(self) -> "BreakTimeline":
        clone = BreakTimeline(registry=self.registry)
        clone._break_epochs = dict(self._break_epochs)
        return clone


# Register the hash/MAC/KDF primitives implemented by sibling modules that
# do not define classes of their own.
register_primitive(
    name="sha256",
    kind=PrimitiveKind.HASH,
    description="SHA-256 (FIPS 180-4)",
    hardness_assumption="collision/preimage resistance of the SHA-2 compression function",
)
register_primitive(
    name="hmac-sha256",
    kind=PrimitiveKind.MAC,
    description="HMAC-SHA256 (RFC 2104)",
    hardness_assumption="PRF security of the SHA-2 compression function",
)
register_primitive(
    name="hkdf-sha256",
    kind=PrimitiveKind.KDF,
    description="HKDF (RFC 5869) over HMAC-SHA256",
    hardness_assumption="PRF security of HMAC-SHA256",
)
register_primitive(
    name="md5",
    kind=PrimitiveKind.HASH,
    description="MD5 -- historical exhibit; collisions found in 2004",
    hardness_assumption="collision resistance of MD5 (falsified)",
    historically_broken=True,
)
