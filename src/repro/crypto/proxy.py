"""Proxy re-encryption, including the delegated-re-encryption path.

Paper, Section 3.2: "This re-encryption could be delegated to the storage
system (without giving the system access to user keys) using more
sophisticated techniques like Universal Proxy Re-Encryption (UPRE)."

Two layers, mirroring how such a delegation actually decomposes:

- **KEM-level PRE** (:class:`ProxyReEncryption`, BBS98-style ElGamal):
  ciphertexts are (symmetric body, KEM capsule ``pk^r``); a re-encryption
  key ``rk = b/a`` lets the *proxy* transform a capsule under Alice's key
  into one under Bob's key without learning the data key or plaintexts.
  This is cheap -- O(1) per object -- and handles *key* rotation.

- **DEM-level migration** (:func:`keystream_migration_pad`): moving the
  *body* from a broken cipher to a new one without exposing plaintext.
  The delegator hands the proxy a migration pad (old keystream XOR new
  keystream); XOring the stored ciphertext with the pad re-encrypts it.
  The pad is independent of the plaintext, so the proxy learns nothing --
  but it is as large as the data, and applying it reads and rewrites every
  byte.  That is the paper's punchline, preserved by construction: even
  perfectly delegated re-encryption cannot dodge the Section 3.2 I/O bill,
  and it does nothing for ciphertext already harvested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.chacha20 import chacha20_keystream
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.crypto.sha256 import sha256
from repro.errors import KeyManagementError, ParameterError
from repro.gmath.primes import SchnorrGroup, default_group

_ZERO_NONCE = b"\x00" * 12


@dataclass(frozen=True)
class PreKeyPair:
    """An ElGamal key pair in the PRE group."""

    secret: int
    public: int


@dataclass(frozen=True)
class PreCiphertext:
    """Hybrid ciphertext: symmetric body + KEM capsule.

    ``capsule = pk^r``; the data key is ``H(g^r)``, recoverable only by the
    capsule owner's secret (or after a re-encryption hop, the delegatee's).
    ``hops`` counts re-encryptions, since single-hop schemes must refuse
    a second transform.
    """

    body: bytes
    capsule: int
    hops: int = 0


@dataclass(frozen=True)
class ReEncryptionKey:
    """rk_{a->b} = b / a (mod q).  Held by the proxy; reveals neither key."""

    value: int
    source_public: int
    target_public: int


class ProxyReEncryption:
    """BBS98-style unidirectional-use ElGamal PRE (single hop)."""

    name = "proxy-reencryption"

    def __init__(self, group: SchnorrGroup | None = None):
        self.group = group or default_group()

    def generate_keypair(self, rng: DeterministicRandom) -> PreKeyPair:
        secret = rng.randrange(1, self.group.q)
        return PreKeyPair(secret=secret, public=self.group.exp_g(secret))

    # -- encrypt / decrypt ----------------------------------------------------------

    def _data_key(self, shared_point: int) -> bytes:
        size = (self.group.p.bit_length() + 7) // 8
        return sha256(b"pre-kem:" + shared_point.to_bytes(size, "big"))

    def encrypt(self, public: int, plaintext: bytes, rng: DeterministicRandom) -> PreCiphertext:
        r = rng.randrange(1, self.group.q)
        ephemeral = self.group.exp_g(r)  # g^r: never stored, only hashed
        capsule = pow(public, r, self.group.p)  # pk^r = g^{ar}
        key = self._data_key(ephemeral)
        stream = np.frombuffer(
            chacha20_keystream(key, _ZERO_NONCE, max(1, len(plaintext))), dtype=np.uint8
        )
        body = (np.frombuffer(plaintext, dtype=np.uint8) ^ stream[: len(plaintext)]).tobytes()
        return PreCiphertext(body=body, capsule=capsule)

    def decrypt(self, keys: PreKeyPair, ciphertext: PreCiphertext) -> bytes:
        # g^r = capsule^{1/a}.
        inverse = pow(keys.secret, -1, self.group.q)
        ephemeral = pow(ciphertext.capsule, inverse, self.group.p)
        key = self._data_key(ephemeral)
        stream = np.frombuffer(
            chacha20_keystream(key, _ZERO_NONCE, max(1, len(ciphertext.body))),
            dtype=np.uint8,
        )
        return (
            np.frombuffer(ciphertext.body, dtype=np.uint8) ^ stream[: len(ciphertext.body)]
        ).tobytes()

    # -- delegation -------------------------------------------------------------------

    def rekey(self, delegator: PreKeyPair, delegatee: PreKeyPair) -> ReEncryptionKey:
        """rk = b/a.  Note the BBS98 trust model the paper inherits: making
        the re-key requires the delegator's secret (it never goes to the
        proxy) and, in this classic scheme, the delegatee's too; key-private
        variants relax this but the archival-system behavior is the same."""
        value = (delegatee.secret * pow(delegator.secret, -1, self.group.q)) % self.group.q
        return ReEncryptionKey(
            value=value,
            source_public=delegator.public,
            target_public=delegatee.public,
        )

    def reencrypt(self, rekey: ReEncryptionKey, ciphertext: PreCiphertext) -> PreCiphertext:
        """The proxy's move: capsule^rk = g^{ar·b/a} = g^{br}.

        O(1) work, no plaintext, no data key: exactly what lets a storage
        system rotate *ownership* of millions of objects without touching
        their bodies."""
        if ciphertext.hops >= 1:
            raise KeyManagementError("single-hop PRE: ciphertext already re-encrypted")
        new_capsule = pow(ciphertext.capsule, rekey.value, self.group.p)
        return PreCiphertext(body=ciphertext.body, capsule=new_capsule, hops=ciphertext.hops + 1)


# -- DEM migration: the part that cannot dodge the I/O ------------------------------


def keystream_migration_pad(
    old_key: bytes, new_key: bytes, length: int, old_nonce: bytes = _ZERO_NONCE,
    new_nonce: bytes = _ZERO_NONCE,
) -> bytes:
    """Pad P = KS_old XOR KS_new, computed by the *delegator* (key owner).

    Applying P to a stored ciphertext re-encrypts it under ``new_key``
    without the proxy ever holding a key or plaintext.  The pad is as long
    as the data: delegation removes the trust problem, not the byte count.
    """
    if length < 0:
        raise ParameterError("length must be >= 0")
    old_stream = np.frombuffer(
        chacha20_keystream(old_key, old_nonce, max(1, length)), dtype=np.uint8
    )
    new_stream = np.frombuffer(
        chacha20_keystream(new_key, new_nonce, max(1, length)), dtype=np.uint8
    )
    return (old_stream[:length] ^ new_stream[:length]).tobytes()


def apply_migration_pad(ciphertext: bytes, pad: bytes) -> bytes:
    """The proxy's side: one XOR pass over the stored bytes."""
    if len(pad) < len(ciphertext):
        raise ParameterError("migration pad shorter than ciphertext")
    return (
        np.frombuffer(ciphertext, dtype=np.uint8)
        ^ np.frombuffer(pad[: len(ciphertext)], dtype=np.uint8)
    ).tobytes()


register_primitive(
    name="proxy-reencryption",
    kind=PrimitiveKind.CIPHER,
    description="BBS98-style ElGamal proxy re-encryption (KEM level)",
    hardness_assumption="DDH in the Schnorr group",
)
