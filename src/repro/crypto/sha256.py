"""SHA-256.

Two implementations:

- :func:`sha256_pure` -- a from-scratch FIPS 180-4 implementation.  It exists
  so the library has no black-box dependency for its central hash, and so the
  test suite can cross-check it against the platform implementation.
- :func:`sha256` -- the fast path used by the rest of the library.  It
  delegates to :mod:`hashlib` (the same function, interoperability-verified
  by ``tests/test_sha256.py``), because archival workloads hash megabytes and
  a pure-Python compression function runs ~1000x slower than C.
"""

from __future__ import annotations

import hashlib
import struct

from repro.obs import metrics as _metrics

_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    """One SHA-256 compression-function application."""
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK)

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + big_s1 + ch + _K[i] + w[i]) & _MASK
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK
        a, b, c, d, e, f, g, h = (
            (temp1 + temp2) & _MASK, a, b, c,
            (d + temp1) & _MASK, e, f, g,
        )
    return tuple((s + v) & _MASK for s, v in zip(state, (a, b, c, d, e, f, g, h)))


def sha256_pure(data: bytes) -> bytes:
    """From-scratch SHA-256 digest of *data* (FIPS 180-4)."""
    length_bits = len(data) * 8
    # Padding: 0x80, zeros, then the 64-bit big-endian message length.
    padded = data + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", length_bits)

    state = _H0
    for offset in range(0, len(padded), 64):
        state = _compress(state, padded[offset : offset + 64])
    return struct.pack(">8I", *state)


def sha256(data) -> bytes:
    """Fast SHA-256 digest of any bytes-like object (hashlib-backed;
    identical output to :func:`sha256_pure`, verified by the test suite).

    Accepts anything exposing a contiguous buffer -- bytes, memoryview, or a
    uint8 ndarray -- so the zero-copy pipeline can hash array slabs without
    materializing them as bytes first."""
    _metrics.inc("crypto_hash_calls_total", algorithm="sha256")
    _metrics.inc("crypto_hash_bytes_total", len(data), algorithm="sha256")
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Convenience hex form of :func:`sha256`."""
    return sha256(data).hex()


DIGEST_SIZE = 32
BLOCK_SIZE = 64
