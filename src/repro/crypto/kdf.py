"""HKDF (RFC 5869) on HMAC-SHA256.

Used wherever the library needs to derive independent subkeys from one master
secret: per-layer cascade keys, per-object keys in the key manager, and
channel keys after BSM/QKD agreement.
"""

from __future__ import annotations

from repro.crypto.hmac_ import hmac_sha256
from repro.crypto.sha256 import DIGEST_SIZE
from repro.errors import ParameterError
from repro.obs import metrics as _metrics

_MAX_OUTPUT = 255 * DIGEST_SIZE


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate possibly non-uniform keying material."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a PRK to *length* output bytes."""
    if not 0 < length <= _MAX_OUTPUT:
        raise ParameterError(f"HKDF output length must be in (0, {_MAX_OUTPUT}]")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(
    input_key_material: bytes,
    length: int,
    salt: bytes = b"",
    info: bytes = b"",
) -> bytes:
    """One-shot HKDF: extract then expand."""
    _metrics.inc("crypto_kdf_calls_total", kdf="hkdf")
    _metrics.inc("crypto_kdf_bytes_total", length, kdf="hkdf")
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def derive_subkey(master: bytes, purpose: str, length: int = 32) -> bytes:
    """Derive a purpose-labelled subkey; distinct purposes are independent."""
    return hkdf(master, length, info=purpose.encode())
