"""Cascade ciphers (robust combiners for encryption).

Section 3.2: ArchiveSafeLT hedges against any one cipher breaking by
encrypting under *multiple layers of different encryption schemes*; a cascade
"enjoys the property of being at least as secure as the most secure cipher in
the cascade [Herzberg], but care must be taken ... [Maurer-Massey]".

Implementation notes:

- Layers are applied innermost-first: ``c = E_k(...E_2(E_1(m)))``.
- Each layer must use an *independent* key -- the combiner theorem requires
  it, so :meth:`CascadeCipher.encrypt` takes one key per layer and refuses
  duplicates.
- :meth:`confidential_against` answers "does this cascade still protect a
  ciphertext at epoch e?" by consulting the break timeline: the cascade holds
  while at least one layer's cipher is unbroken (ciphertext-only setting,
  which is the archival threat model).
- The Maurer-Massey caveat (a cascade is only provably as strong as its
  *first* cipher against chosen-plaintext adversaries) is surfaced via
  :meth:`chosen_plaintext_anchor`, so the analysis layer can report both
  bounds honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.crypto.registry import BreakTimeline, PrimitiveKind, register_primitive
from repro.errors import ParameterError


class Cipher(Protocol):
    """Structural interface every cipher in the library satisfies."""

    name: str
    key_size: int
    nonce_size: int

    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes) -> bytes: ...

    def decrypt(self, key: bytes, nonce: bytes, ciphertext: bytes) -> bytes: ...


@dataclass(frozen=True)
class CascadeLayer:
    """One layer of a cascade: a cipher plus its nonce (key supplied later)."""

    cipher: Cipher
    nonce: bytes

    def __post_init__(self) -> None:
        if len(self.nonce) != self.cipher.nonce_size:
            raise ParameterError(
                f"layer nonce must be {self.cipher.nonce_size} bytes for {self.cipher.name}"
            )


class CascadeCipher:
    """An ordered cascade of independent ciphers."""

    def __init__(self, layers: Sequence[CascadeLayer]):
        if not layers:
            raise ParameterError("cascade needs at least one layer")
        self.layers = list(layers)

    @property
    def name(self) -> str:
        return "cascade(" + "+".join(l.cipher.name for l in self.layers) + ")"

    @property
    def depth(self) -> int:
        return len(self.layers)

    def key_sizes(self) -> list[int]:
        return [l.cipher.key_size for l in self.layers]

    def _check_keys(self, keys: Sequence[bytes]) -> None:
        if len(keys) != self.depth:
            raise ParameterError(
                f"cascade of depth {self.depth} needs {self.depth} keys, got {len(keys)}"
            )
        for key, layer in zip(keys, self.layers):
            if len(key) != layer.cipher.key_size:
                raise ParameterError(
                    f"layer {layer.cipher.name} needs a {layer.cipher.key_size}-byte key"
                )
        if len(set(keys)) != len(keys):
            raise ParameterError(
                "cascade layers must use independent keys (combiner requirement)"
            )

    def encrypt(self, keys: Sequence[bytes], plaintext: bytes) -> bytes:
        self._check_keys(keys)
        data = plaintext
        for key, layer in zip(keys, self.layers):
            data = layer.cipher.encrypt(key, layer.nonce, data)
        return data

    def decrypt(self, keys: Sequence[bytes], ciphertext: bytes) -> bytes:
        self._check_keys(keys)
        data = ciphertext
        for key, layer in zip(reversed(keys), reversed(self.layers)):
            data = layer.cipher.decrypt(key, layer.nonce, data)
        return data

    # -- ArchiveSafeLT-style layer wrapping ---------------------------------------

    def wrapped(self, new_layer: CascadeLayer) -> "CascadeCipher":
        """Return a new cascade with *new_layer* applied outermost.

        This is ArchiveSafeLT's response to "enough of the old layers are
        broken": re-wrap the existing ciphertext, avoiding a decrypt of the
        whole archive but still paying the read-process-write I/O (the
        re-encryption I/O model charges for it either way).
        """
        return CascadeCipher(self.layers + [new_layer])

    # -- security accounting --------------------------------------------------------

    def unbroken_layers(self, timeline: BreakTimeline, epoch: int) -> list[str]:
        return [
            l.cipher.name
            for l in self.layers
            if not timeline.is_broken(l.cipher.name, epoch)
        ]

    def confidential_against(self, timeline: BreakTimeline, epoch: int) -> bool:
        """Ciphertext-only confidentiality: holds while any layer holds."""
        return bool(self.unbroken_layers(timeline, epoch))

    def chosen_plaintext_anchor(self) -> str:
        """Maurer-Massey: against chosen-plaintext attacks the provable
        guarantee anchors on the *first* (innermost) cipher; report it."""
        return self.layers[0].cipher.name


register_primitive(
    name="cascade",
    kind=PrimitiveKind.CIPHER,
    description="Cascade cipher robust combiner (secure while any layer holds)",
    hardness_assumption="at least one member cipher remains unbroken",
)
