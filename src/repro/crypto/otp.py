"""The one-time pad: the paper's baseline for perfect secrecy.

Section 3.2: "the simplest example of information-theoretically secure
encryption is the One-Time Pad ... achieving 'perfect secrecy' (i.e., let
epsilon = 0 in Definition 2.1)."  The pad is what QKD and BSM channels
ultimately deliver keys for, and its |key| = |message| cost is the storage
trade-off the whole paper revolves around.

``OneTimePad`` enforces single use per key object, because pad reuse silently
downgrades perfect secrecy to nothing -- the classic two-time-pad failure.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import KeyManagementError, ParameterError


def otp_xor(key: bytes, data: bytes) -> bytes:
    """Stateless XOR; caller is responsible for never reusing *key*."""
    if len(key) < len(data):
        raise ParameterError(
            f"one-time pad key too short: {len(key)} < {len(data)} bytes"
        )
    key_arr = np.frombuffer(key[: len(data)], dtype=np.uint8)
    return (np.frombuffer(data, dtype=np.uint8) ^ key_arr).tobytes()


class PadKey:
    """A consumable pad: bytes can be taken once and never again."""

    def __init__(self, material: bytes):
        self._material = material
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._material) - self._offset

    def take(self, length: int) -> bytes:
        if length > self.remaining:
            raise KeyManagementError(
                f"pad exhausted: need {length} bytes, {self.remaining} remain"
            )
        chunk = self._material[self._offset : self._offset + length]
        self._offset += length
        return chunk


class OneTimePad:
    """Cipher-interface wrapper whose 'key' is a consumable pad."""

    name = "one-time-pad"
    nonce_size = 0

    def encrypt_with_pad(self, pad: PadKey, plaintext: bytes) -> bytes:
        return otp_xor(pad.take(len(plaintext)), plaintext)

    def decrypt_with_pad(self, pad: PadKey, ciphertext: bytes) -> bytes:
        return otp_xor(pad.take(len(ciphertext)), ciphertext)

    # Raw-key forms for callers that manage single-use themselves (e.g. the
    # QKD channel, which derives one fresh pad per message).
    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
        del nonce  # perfect secrecy needs no nonce; parameter kept for interface
        return otp_xor(key, plaintext)

    def decrypt(self, key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
        del nonce
        return otp_xor(key, ciphertext)


register_primitive(
    name="one-time-pad",
    kind=PrimitiveKind.CIPHER,
    description="One-time pad (perfect secrecy, |key| = |message|)",
    hardness_assumption=None,
)
