"""AES-128/256 from scratch, with a numpy-vectorized T-table CTR mode.

The block cipher follows FIPS 197 exactly (S-box derived from the GF(2^8)
inverse plus the affine map, standard key schedule); correctness is pinned to
the FIPS 197 appendix vectors in the tests.  The encrypt path uses the
classic 32-bit T-table formulation: SubBytes, ShiftRows and MixColumns for
one output column collapse into four table lookups and three XORs on packed
words.  The cipher state for *all* blocks of a message lives in one
``(4, n_blocks)`` uint32 array (column words by block -- transposed so each
word row is contiguous), so a round is four ``np.take`` gathers over the
whole message, not per block.  CTR keystreams are built directly in that
transposed layout: the three nonce words broadcast, only the counter word
varies.  Decryption of raw blocks keeps the straightforward inverse-round
implementation (CTR decryption is the encrypt path; block decryption is
cold).

AES here is the stand-in for "traditional encryption" in Figure 1 and the
at-rest cipher of the commercial-cloud baseline in Table 1.
"""

from __future__ import annotations

import threading
from functools import lru_cache

import numpy as np

from repro.crypto.registry import PrimitiveKind, register_primitive
from repro.errors import ParameterError
from repro.gmath.gf256 import GF256
from repro.obs import metrics as _metrics

BLOCK_SIZE = 16

# -- S-box construction -------------------------------------------------------


def _build_sbox() -> tuple[np.ndarray, np.ndarray]:
    """S-box = GF(2^8) inverse followed by the FIPS 197 affine map."""
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        inv = GF256.inv(x) if x else 0
        affine = inv
        for shift in (1, 2, 3, 4):
            affine ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[x] = affine ^ 0x63
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

# xtime multiplication tables used by (Inv)MixColumns.
_XT = {}
for factor in (2, 3, 9, 11, 13, 14):
    _XT[factor] = np.array([GF256.mul(factor, x) for x in range(256)], dtype=np.uint8)


def _pack_table(l0: np.ndarray, l1: np.ndarray, l2: np.ndarray, l3: np.ndarray) -> np.ndarray:
    """Pack four 256-entry byte lanes into one uint32 lookup table.

    Lane *i* lands in memory byte *i* of each word.  Both the tables and the
    cipher state are only ever addressed through byte views in the same
    memory order, and the combining operator is XOR (bytewise), so the word
    values are endian-agnostic.
    """
    lanes = np.stack((l0, l1, l2, l3), axis=1)  # (256, 4) uint8, C-contiguous
    packed = np.ascontiguousarray(lanes).view(np.uint32).reshape(256)
    packed.setflags(write=False)
    return packed


# T-tables: SubBytes + ShiftRows + MixColumns for one output column collapse
# into T0[s0] ^ T1[s1] ^ T2[s2] ^ T3[s3] where s_r is the row-r byte of the
# ShiftRows source column.  TS* are the MixColumns-free final-round tables.
_S2 = _XT[2][_SBOX]
_S3 = _XT[3][_SBOX]
_ZL = np.zeros(256, dtype=np.uint8)
_T0 = _pack_table(_S2, _SBOX, _SBOX, _S3)
_T1 = _pack_table(_S3, _S2, _SBOX, _SBOX)
_T2 = _pack_table(_SBOX, _S3, _S2, _SBOX)
_T3 = _pack_table(_SBOX, _SBOX, _S3, _S2)
_TS0 = _pack_table(_SBOX, _ZL, _ZL, _ZL)
_TS1 = _pack_table(_ZL, _SBOX, _ZL, _ZL)
_TS2 = _pack_table(_ZL, _ZL, _SBOX, _ZL)
_TS3 = _pack_table(_ZL, _ZL, _ZL, _SBOX)

# Column rotations implementing ShiftRows in the transposed word layout:
# the row-r byte of output column c comes from input column (c + r) % 4.
_ROT1 = np.array([1, 2, 3, 0], dtype=np.intp)
_ROT2 = np.array([2, 3, 0, 1], dtype=np.intp)
_ROT3 = np.array([3, 0, 1, 2], dtype=np.intp)

# ShiftRows permutation on the 16-byte state in column-major (FIPS) order:
# byte index = 4*col + row; row r rotates left by r columns.
_SHIFT_ROWS = np.array(
    [4 * ((c + r) % 4) + r for c in range(4) for r in range(4)], dtype=np.intp
)
_INV_SHIFT_ROWS = np.argsort(_SHIFT_ROWS)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)


@lru_cache(maxsize=128)
def _expand_key(key: bytes) -> np.ndarray:
    """FIPS 197 key schedule; returns (rounds+1, 16) uint8 round keys.

    Cached per key: archives encrypt many segments under one key, and the
    schedule is pure-Python (the slowest part of a short AES call).  The
    returned array is frozen read-only so cache hits cannot be corrupted
    by a caller mutating it in place.
    """
    if len(key) == 16:
        n_k, rounds = 4, 10
    elif len(key) == 32:
        n_k, rounds = 8, 14
    else:
        raise ParameterError("AES key must be 16 or 32 bytes")

    words = [list(key[4 * i : 4 * i + 4]) for i in range(n_k)]
    total_words = 4 * (rounds + 1)
    for i in range(n_k, total_words):
        temp = list(words[i - 1])
        if i % n_k == 0:
            temp = temp[1:] + temp[:1]
            temp = [int(_SBOX[b]) for b in temp]
            temp[0] ^= _RCON[i // n_k - 1]
        elif n_k > 6 and i % n_k == 4:
            temp = [int(_SBOX[b]) for b in temp]
        words.append([a ^ b for a, b in zip(words[i - n_k], temp)])

    flat = np.array(words, dtype=np.uint8).reshape(rounds + 1, 16)
    flat.setflags(write=False)
    return flat


@lru_cache(maxsize=128)
def _round_key_words(key: bytes) -> np.ndarray:
    """Round keys as (rounds+1, 4) uint32 column words for the T-table core."""
    return _expand_key(key).view(np.uint32)


def _encrypt_words(state: np.ndarray, key_words: np.ndarray) -> np.ndarray:
    """Run the T-table rounds over a (4, n_blocks) uint32 column-word state.

    Round key 0 must already be folded into *state* (C-contiguous); returns
    a fresh (4, n_blocks) word array holding the final state.  Each round is
    four whole-message gathers: ``bv`` reinterprets the word rows as byte
    lanes, and the ``_ROT*`` row permutations are ShiftRows.
    """
    rounds = key_words.shape[0] - 1
    n = state.shape[1]
    for rnd in range(1, rounds):
        bv = state.view(np.uint8).reshape(4, n, 4)
        words = np.take(_T0, bv[:, :, 0])
        words ^= np.take(_T1, bv[_ROT1, :, 1])
        words ^= np.take(_T2, bv[_ROT2, :, 2])
        words ^= np.take(_T3, bv[_ROT3, :, 3])
        words ^= key_words[rnd][:, None]
        state = words
    bv = state.view(np.uint8).reshape(4, n, 4)
    words = np.take(_TS0, bv[:, :, 0])
    words ^= np.take(_TS1, bv[_ROT1, :, 1])
    words ^= np.take(_TS2, bv[_ROT2, :, 2])
    words ^= np.take(_TS3, bv[_ROT3, :, 3])
    words ^= key_words[rounds][:, None]
    return words


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns on (n, 16) state; columns are byte groups of 4."""
    s = state.reshape(-1, 4, 4)  # (n, col, row)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    t2, t3 = _XT[2], _XT[3]
    out = np.empty_like(s)
    out[:, :, 0] = t2[a0] ^ t3[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ t2[a1] ^ t3[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ t2[a2] ^ t3[a3]
    out[:, :, 3] = t3[a0] ^ a1 ^ a2 ^ t2[a3]
    return out.reshape(-1, 16)


def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
    s = state.reshape(-1, 4, 4)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    t9, t11, t13, t14 = _XT[9], _XT[11], _XT[13], _XT[14]
    out = np.empty_like(s)
    out[:, :, 0] = t14[a0] ^ t11[a1] ^ t13[a2] ^ t9[a3]
    out[:, :, 1] = t9[a0] ^ t14[a1] ^ t11[a2] ^ t13[a3]
    out[:, :, 2] = t13[a0] ^ t9[a1] ^ t14[a2] ^ t11[a3]
    out[:, :, 3] = t11[a0] ^ t13[a1] ^ t9[a2] ^ t14[a3]
    return out.reshape(-1, 16)


def aes_encrypt_blocks(key: bytes, blocks: np.ndarray) -> np.ndarray:
    """Encrypt an (n, 16) uint8 array of blocks under *key*."""
    key_words = _round_key_words(key)
    whitened = blocks ^ _expand_key(key)[0]
    state = np.ascontiguousarray(whitened.view(np.uint32).T)
    out = _encrypt_words(state, key_words)
    return np.ascontiguousarray(out.T).view(np.uint8)


def aes_decrypt_blocks(key: bytes, blocks: np.ndarray) -> np.ndarray:
    """Decrypt an (n, 16) uint8 array of blocks under *key*."""
    round_keys = _expand_key(key)
    rounds = round_keys.shape[0] - 1
    state = blocks ^ round_keys[rounds]
    state = state[:, _INV_SHIFT_ROWS]
    state = _INV_SBOX[state]
    for rnd in range(rounds - 1, 0, -1):
        state ^= round_keys[rnd]
        state = _inv_mix_columns(state)
        state = state[:, _INV_SHIFT_ROWS]
        state = _INV_SBOX[state]
    return state ^ round_keys[0]


def aes_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Single-block convenience wrapper (used by tests and the AONT)."""
    if len(block) != BLOCK_SIZE:
        raise ParameterError("AES block must be 16 bytes")
    arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
    return aes_encrypt_blocks(key, arr).tobytes()  # noqa: ARCH008 -- 16-byte API boundary


def aes_decrypt_block(key: bytes, block: bytes) -> bytes:
    if len(block) != BLOCK_SIZE:
        raise ParameterError("AES block must be 16 bytes")
    arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
    return aes_decrypt_blocks(key, arr).tobytes()  # noqa: ARCH008 -- 16-byte API boundary


def _ctr_keystream_words(
    key: bytes, nonce: bytes, n_blocks: int, initial_counter: int
) -> np.ndarray:
    """Transposed (4, n_blocks) uint32 CTR keystream (no validation/metrics).

    The counter state is built directly in column-word layout: the three
    nonce words broadcast across all blocks, only the fourth (big-endian
    counter) word varies, and round key 0 folds in during construction --
    the per-block input is never materialized as byte rows.
    """
    key_words = _round_key_words(key)
    nonce_words = np.frombuffer(nonce, dtype=np.uint32)
    state = np.empty((4, n_blocks), dtype=np.uint32)
    state[0] = nonce_words[0] ^ key_words[0, 0]
    state[1] = nonce_words[1] ^ key_words[0, 1]
    state[2] = nonce_words[2] ^ key_words[0, 2]
    counters = np.arange(initial_counter, initial_counter + n_blocks, dtype=">u4")
    state[3] = counters.view(np.uint32) ^ key_words[0, 3]
    return _encrypt_words(state, key_words)


def _as_uint8_array(data) -> np.ndarray:
    """View bytes-like *data* as a flat uint8 array without copying."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ParameterError("CTR data array must be a flat uint8 array")
        return data
    return np.frombuffer(data, dtype=np.uint8)


def aes_ctr_transform(key: bytes, nonce: bytes, data, initial_counter: int = 0) -> np.ndarray:
    """CTR encrypt/decrypt *data* (bytes-like or uint8 array) as a uint8 array.

    Array-native sibling of :func:`aes_ctr_xor`: the input is viewed, not
    copied, and the result stays an ndarray so downstream stages (AONT
    packaging, RS row splitting) can keep handing buffers along without
    ``bytes()`` round-trips.
    """
    if len(nonce) != 12:
        raise ParameterError("AES-CTR nonce must be 12 bytes")
    buf = _as_uint8_array(data)
    length = buf.size
    if length == 0:
        return np.empty(0, dtype=np.uint8)
    n_blocks = -(-length // BLOCK_SIZE)
    if initial_counter + n_blocks > 1 << 32:
        raise ParameterError("AES-CTR counter would overflow")
    _metrics.inc("crypto_cipher_calls_total", cipher="aes-ctr")
    _metrics.inc("crypto_cipher_bytes_total", length, cipher="aes-ctr")
    words = _ctr_keystream_words(key, nonce, n_blocks, initial_counter)
    stream = np.ascontiguousarray(words.T).view(np.uint8).reshape(-1)
    out = stream[:length]
    out ^= buf
    return out


def aes_ctr_keystream(key: bytes, nonce: bytes, length: int, initial_counter: int = 0) -> bytes:
    """CTR keystream: 12-byte nonce || 32-bit big-endian block counter."""
    if len(nonce) != 12:
        raise ParameterError("AES-CTR nonce must be 12 bytes")
    if length <= 0:
        return b""
    n_blocks = -(-length // BLOCK_SIZE)
    if initial_counter + n_blocks > 1 << 32:
        raise ParameterError("AES-CTR counter would overflow")
    _metrics.inc("crypto_cipher_calls_total", cipher="aes-ctr")
    _metrics.inc("crypto_cipher_bytes_total", length, cipher="aes-ctr")
    words = _ctr_keystream_words(key, nonce, n_blocks, initial_counter)
    stream = np.ascontiguousarray(words.T).view(np.uint8).reshape(-1)
    return stream[:length].tobytes()  # noqa: ARCH008 -- bytes API boundary


def aes_ctr_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 0) -> bytes:
    """Encrypt/decrypt *data* in CTR mode (its own inverse)."""
    if len(data) == 0:
        return b""
    out = aes_ctr_transform(key, nonce, data, initial_counter)
    return out.tobytes()  # noqa: ARCH008 -- bytes API boundary


#: Serializes key-schedule cache maintenance; see the kernel's
#: ``_MAINTENANCE_LOCK`` for the contract (lookups stay lock-free, clears
#: are atomic per-cache, the lock keeps two sweeps from interleaving).
_KEY_CACHE_LOCK = threading.Lock()


def clear_key_caches() -> None:
    """Drop cached AES key schedules (for cold-path benchmarking).

    Safe while encrypting threads are in flight: schedules are immutable
    (frozen ndarrays) and pure functions of the key, so a racing encryption
    either keeps the schedule it already resolved or rebuilds an identical
    one.  The lock serializes whole sweeps so both caches clear as a unit.
    """
    with _KEY_CACHE_LOCK:
        _round_key_words.cache_clear()
        _expand_key.cache_clear()


class AesCtrCipher:
    """Cipher-interface wrapper: AES-256 in CTR mode by default."""

    nonce_size = 12

    def __init__(self, key_size: int = 32):
        if key_size not in (16, 32):
            raise ParameterError("AES key size must be 16 or 32 bytes")
        self.key_size = key_size
        self.name = "aes-128-ctr" if key_size == 16 else "aes-256-ctr"

    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
        self._check_key(key)
        return aes_ctr_xor(key, nonce, plaintext)

    def decrypt(self, key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
        self._check_key(key)
        return aes_ctr_xor(key, nonce, ciphertext)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise ParameterError(
                f"{self.name} requires a {self.key_size}-byte key, got {len(key)}"
            )


register_primitive(
    name="aes-128-ctr",
    kind=PrimitiveKind.CIPHER,
    description="AES-128 in counter mode (FIPS 197)",
    hardness_assumption="AES is a PRP (two decades of failed cryptanalysis)",
)
register_primitive(
    name="aes-256-ctr",
    kind=PrimitiveKind.CIPHER,
    description="AES-256 in counter mode (FIPS 197)",
    hardness_assumption="AES is a PRP (two decades of failed cryptanalysis)",
)
