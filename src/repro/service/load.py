"""Closed-loop zipfian load generation against an :class:`ArchiveService`.

This lived in ``repro.storage.workload`` until the archlint ARCH009 layering
pass flagged the upward import (storage -> service): a load generator that
constructs service :class:`Request` objects and reads backpressure signals
is service-tier code, not a storage primitive.  The epoch-based archive
workload (sizes, recency-skewed reads) stays in storage; this module owns
everything that knows the service front-end exists.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.errors import IntegrityError, ParameterError
from repro.service.server import Backpressure, Request
from repro.storage.workload import ZipfianPopularity, lognormal_size


@dataclass(frozen=True)
class ServiceLoadSpec:
    """Parameters of a concurrent-client load run against an ArchiveService."""

    #: Concurrent closed-loop clients issuing requests.
    clients: int = 8
    #: Total requests to offer (accepted + rejected both count).
    requests: int = 1_000
    #: Fraction of requests that are stores; the rest are zipfian reads.
    store_fraction: float = 0.03
    #: Zipf exponent of the read-popularity model.
    zipf_s: float = 1.1
    #: Mean exponential think time between one client's requests.
    mean_think_s: float = 0.02
    #: Extra wait a client inserts after a rejection (half of it after a
    #: THROTTLE backpressure signal) -- the well-behaved-client response.
    backoff_s: float = 0.2
    #: Objects stored directly into the archive before load starts, so the
    #: first reads have a population to draw from.
    bootstrap_objects: int = 32
    #: Clients map onto this many tenants round-robin.
    tenants: int = 4
    median_object_bytes: int = 4096
    size_spread: float = 1.2
    max_object_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.clients < 1 or self.requests < 1:
            raise ParameterError("need clients >= 1 and requests >= 1")
        if not 0 <= self.store_fraction <= 1:
            raise ParameterError("store_fraction must be in [0, 1]")
        if self.mean_think_s <= 0 or self.backoff_s < 0:
            raise ParameterError("need mean_think_s > 0 and backoff_s >= 0")
        if self.bootstrap_objects < 1 and self.store_fraction < 1:
            raise ParameterError("reads need bootstrap_objects >= 1")
        if self.tenants < 1:
            raise ParameterError("tenants must be >= 1")


def _exponential_think(rng: DeterministicRandom, mean_s: float) -> float:
    # Inverse-CDF sample; the 1e-12 clamp keeps log() finite.
    return -mean_s * math.log(max(1.0 - rng.random(), 1e-12))


def run_service_load(service, spec: ServiceLoadSpec, seed: int | bytes = 0) -> dict:
    """Replay a zipfian store/retrieve mix through an archive service.

    *service* is duck-typed (anything with ``offer(Request) -> outcome`` and
    an ``archive``); normally it is a :class:`repro.service.ArchiveService`.
    Clients are closed-loop: each offers a request, thinks for an
    exponential interval, and backs off when rejected or throttled.  All
    timing is simulated and every draw comes from one seeded DRBG, so the
    request stream -- and therefore the service's latency histograms --
    replay byte-identically.  Every accepted retrieve is verified against
    the regenerated payload, making a load run an end-to-end correctness
    check as well as a measurement.
    """
    rng = DeterministicRandom(
        seed if isinstance(seed, bytes) else f"service-load:{seed}"
    )
    popularity = ZipfianPopularity(s=spec.zipf_s)
    sizes: dict[str, int] = {}

    def payload_for(object_id: str, size: int) -> bytes:
        return DeterministicRandom(b"svc-payload:" + object_id.encode()).bytes(size)

    bytes_stored = 0
    for k in range(spec.bootstrap_objects):
        object_id = f"svc-boot-{k:05d}"
        size = lognormal_size(rng, spec)
        service.archive.store(object_id, payload_for(object_id, size))
        sizes[object_id] = size
        popularity.add(object_id)
        bytes_stored += size

    # Closed-loop clients on a simulated timeline: a heap of
    # (next_ready_s, client) pops in deterministic order (ties break on the
    # client index).  Start times are staggered so the first wave does not
    # arrive as one synchronized burst.
    ready: list[tuple[float, int]] = []
    for client in range(spec.clients):
        heapq.heappush(ready, (rng.random() * spec.mean_think_s, client))

    counts = {
        "ok_store": 0,
        "ok_retrieve": 0,
        "rejected_overload": 0,
        "rejected_quota": 0,
        "throttle_signals": 0,
    }
    bytes_read = 0
    stores_issued = 0
    last_arrival_s = 0.0
    for _ in range(spec.requests):
        now_s, client = heapq.heappop(ready)
        last_arrival_s = max(last_arrival_s, now_s)
        tenant = f"tenant-{client % spec.tenants:02d}"
        if rng.random() < spec.store_fraction or not len(popularity):
            object_id = f"svc-{client:02d}-{stores_issued:06d}"
            stores_issued += 1
            size = lognormal_size(rng, spec)
            request = Request(
                op="store",
                object_id=object_id,
                tenant=tenant,
                payload=payload_for(object_id, size),
                arrival_s=now_s,
            )
        else:
            object_id = popularity.sample(rng)
            request = Request(
                op="retrieve", object_id=object_id, tenant=tenant, arrival_s=now_s
            )

        outcome = service.offer(request)
        if outcome.accepted:
            if request.op == "store":
                counts["ok_store"] += 1
                sizes[object_id] = len(request.payload)
                popularity.add(object_id)
                bytes_stored += len(request.payload)
            else:
                counts["ok_retrieve"] += 1
                expected = payload_for(object_id, sizes[object_id])
                if outcome.data != expected:
                    raise IntegrityError(f"corrupted service read of {object_id}")
                bytes_read += len(outcome.data)
        else:
            counts[outcome.outcome] += 1

        think_s = _exponential_think(rng, spec.mean_think_s)
        if not outcome.accepted:
            think_s += spec.backoff_s
        elif outcome.backpressure is Backpressure.THROTTLE:
            counts["throttle_signals"] += 1
            think_s += spec.backoff_s / 2
        heapq.heappush(ready, (now_s + think_s, client))

    return {
        "offered": spec.requests,
        "counts": dict(sorted(counts.items())),
        "population": len(popularity),
        "bytes_stored": bytes_stored,
        "bytes_read": bytes_read,
        "offered_window_s": last_arrival_s,
        "offered_rps": (spec.requests / last_arrival_s) if last_arrival_s > 0 else 0.0,
    }
