"""Simulated monotonic clock for the archive service.

Every latency the service reports is measured on *this* clock, never the
wall clock: request arrival times come from the workload generator, service
times are priced from the :mod:`repro.storage.archive_model` throughput
figures, and queue waits fall out of the arithmetic.  Two identically
seeded runs therefore produce byte-identical latency histograms -- the
property the chaos suite and the ``BENCH_service.json`` determinism
contract both pin (and the reason ARCH003 bans wall-clock reads here).
"""

from __future__ import annotations

from repro.errors import ParameterError


class SimulatedClock:
    """A monotonic simulated clock, advanced explicitly in seconds."""

    def __init__(self, start_s: float = 0.0):
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, dt_s: float) -> float:
        """Move the clock forward *dt_s* seconds; returns the new time."""
        if dt_s < 0:
            raise ParameterError("a monotonic clock cannot move backwards")
        self._now_s += dt_s
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Move the clock forward to *t_s* (no-op if already past it)."""
        if t_s > self._now_s:
            self._now_s = t_s
        return self._now_s

    def __repr__(self) -> str:
        return f"SimulatedClock(now_s={self._now_s:.6f})"
