"""The archive service front-end: queueing, admission control, quotas.

The paper sizes real archives (HPSS, MARS, EOS, Pergamum -- Section 3.2) by
sustained traffic, not by library micro-benchmarks; this module is the
*service surface* that turns :class:`repro.core.archive.SecureArchive` into
something that traffic can be offered to.  One :class:`ArchiveService`
models a thread-pooled archive server as a deterministic discrete-event
queue:

- a bounded FIFO request queue feeding *workers* parallel servers;
- admission control: a request arriving to a full queue is rejected with a
  typed :class:`repro.errors.OverloadError` (load shedding, not silent
  latency collapse);
- per-tenant token-bucket quotas (:mod:`repro.service.quota`): a tenant
  over its sustained rate gets :class:`repro.errors.QuotaExhaustedError`
  while other tenants are untouched;
- backpressure signaling: every accepted request carries the service's
  current :class:`Backpressure` level so well-behaved clients can slow
  down *before* admission control starts dropping.

Determinism contract: request *data* really flows through the wrapped
archive (stores disperse shares, retrieves decode and verify), but all
*timing* is simulated -- arrivals come from the workload generator,
service times are priced with
:func:`repro.storage.archive_model.op_service_time_s` plus seeded jitter
from an injected DRBG, and waits fall out of the queue arithmetic on a
:class:`repro.service.clock.SimulatedClock`.  Same seed, same request
stream, byte-identical latency histograms and report.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.crypto.drbg import DeterministicRandom
from repro.errors import OverloadError, ParameterError, QuotaExhaustedError
from repro.obs import metrics as _metrics
from repro.service.clock import SimulatedClock
from repro.security import redact_secret
from repro.service.quota import TenantQuota, TokenBucket
from repro.storage.archive_model import ArchiveProfile, op_service_time_s

__all__ = [
    "ArchiveService",
    "Backpressure",
    "Request",
    "RequestOutcome",
    "ServiceConfig",
    "SERVICE_LATENCY_BUCKETS",
]

#: Finer-than-default buckets for request latencies: 100 us .. ~100 s in
#: x1.2 steps, so p999 estimates resolve to ~10% while staying a pure
#: function of the bucket counts (deterministic across runs).
SERVICE_LATENCY_BUCKETS = tuple(1e-4 * 1.2**i for i in range(76))


class Backpressure(enum.Enum):
    """What the service tells clients about its queue, in band.

    ``OK``       -- queue below the soft threshold; send freely.
    ``THROTTLE`` -- queue above the soft threshold; slow down now or
                    admission control will start rejecting.
    ``SHED``     -- queue full; the next arrival gets an OverloadError.
    """

    OK = "ok"
    THROTTLE = "throttle"
    SHED = "shed"


@dataclass(frozen=True)
class Request:
    """One store/retrieve offered to the service."""

    op: str  # "store" | "retrieve"
    object_id: str
    tenant: str = "tenant-00"
    payload: bytes | None = None  # store only
    #: Simulated arrival time; arrivals must be non-decreasing.
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("store", "retrieve"):
            raise ParameterError(f"unknown service op {self.op!r}")
        if self.op == "store" and self.payload is None:
            raise ParameterError("store requests need a payload")

    def __repr__(self) -> str:
        return (
            f"Request(op={self.op!r}, object_id={self.object_id!r}, "
            f"tenant={self.tenant!r}, payload={redact_secret(self.payload)}, "
            f"arrival_s={self.arrival_s})"
        )


@dataclass(frozen=True)
class RequestOutcome:
    """What the service did with one request."""

    op: str
    object_id: str
    tenant: str
    #: "ok" | "rejected_overload" | "rejected_quota"
    outcome: str
    #: Arrival-to-completion simulated latency (0 for rejected requests).
    latency_s: float = 0.0
    #: Time spent waiting for a worker (part of latency_s).
    queue_wait_s: float = 0.0
    #: Backpressure level observed as the request left admission.
    backpressure: Backpressure = Backpressure.OK
    #: Decoded plaintext for accepted retrieves.
    data: bytes | None = field(default=None, repr=False)

    @property
    def accepted(self) -> bool:
        return self.outcome == "ok"


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing of one archive service instance."""

    #: Parallel servers draining the queue (the simulated thread pool).
    workers: int = 4
    #: Bounded queue: admitted-but-not-yet-started requests.
    queue_capacity: int = 256
    #: Queue fraction at which backpressure flips to THROTTLE.
    throttle_at: float = 0.75
    #: Data-path pricing profile (None = Pergamum, the paper's disk point).
    profile: ArchiveProfile | None = None
    #: Fixed per-request overhead (handling, metadata, media latency).
    overhead_s: float = 1e-3
    #: Service-time jitter fraction, drawn from the injected DRBG.
    jitter: float = 0.1
    #: Default per-tenant quota (None disables quota enforcement).
    default_quota: TenantQuota | None = field(default_factory=TenantQuota)
    #: Per-tenant overrides of the default quota.
    tenant_quotas: dict[str, TenantQuota] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 1 or self.queue_capacity < 1:
            raise ParameterError("need workers >= 1 and queue_capacity >= 1")
        if not 0 < self.throttle_at <= 1:
            raise ParameterError("throttle_at must be in (0, 1]")
        if self.overhead_s < 0 or self.jitter < 0:
            raise ParameterError("need overhead_s >= 0 and jitter >= 0")


class ArchiveService:
    """A bounded-queue, quota-enforcing front-end over an archival system.

    *archive* is any :class:`repro.systems.base.ArchivalSystem` (normally a
    :class:`repro.core.archive.SecureArchive`); *rng* drives service-time
    jitter and must be a dedicated DRBG so the archive's own randomness
    stays aligned with non-service runs.
    """

    def __init__(
        self,
        archive,
        config: ServiceConfig | None = None,
        rng: DeterministicRandom | None = None,
        clock: SimulatedClock | None = None,
    ):
        self.archive = archive
        self.config = config or ServiceConfig()
        self.rng = rng or DeterministicRandom(b"archive-service")
        self.clock = clock or SimulatedClock()
        #: Simulated time each worker becomes free.
        self._worker_free_s = [self.clock.now_s] * self.config.workers
        #: Start times of admitted requests that have not started yet.
        self._queued_starts: deque[float] = deque()
        self._buckets: dict[str, TokenBucket] = {}
        # Aggregates for report(): all in simulated time, all deterministic.
        self._completed = {"store": 0, "retrieve": 0}
        self._rejected = {"overload": 0, "quota": 0}
        self._tenant_stats: dict[str, dict[str, int]] = {}
        self._first_arrival_s: float | None = None
        self._last_completion_s = 0.0
        self._max_queue_depth = 0
        self._busy_s = 0.0

    # -- request path ------------------------------------------------------------

    def submit(self, request: Request) -> RequestOutcome:
        """Admit, queue, execute, and account one request.

        Raises :class:`OverloadError` when the queue is full and
        :class:`QuotaExhaustedError` when the tenant's bucket is empty; both
        are also counted so :meth:`report` sees rejected traffic.
        """
        op = request.op
        now = self.clock.advance_to(request.arrival_s)
        if self._first_arrival_s is None:
            self._first_arrival_s = now
        self._drain_started(now)
        stats = self._tenant_stats.setdefault(
            request.tenant, {"admitted": 0, "rejected_quota": 0}
        )

        if not self._bucket(request.tenant).try_take(now):
            self._rejected["quota"] += 1
            stats["rejected_quota"] += 1
            _metrics.inc("service_requests_total", op=op, outcome="rejected_quota")
            self._note_rejected_demand(request)
            raise QuotaExhaustedError(
                f"tenant {request.tenant!r} is out of quota tokens "
                f"({request.op} {request.object_id})"
            )
        if len(self._queued_starts) >= self.config.queue_capacity:
            self._rejected["overload"] += 1
            _metrics.inc("service_requests_total", op=op, outcome="rejected_overload")
            self._note_rejected_demand(request)
            raise OverloadError(
                f"request queue full ({self.config.queue_capacity} waiting); "
                f"rejected {request.op} {request.object_id}"
            )

        # Dispatch: FIFO onto the earliest-free worker.
        worker = min(range(len(self._worker_free_s)), key=self._worker_free_s.__getitem__)
        start_s = max(now, self._worker_free_s[worker])
        payload_bytes = len(request.payload) if request.payload is not None else 0
        data = self._execute(request)
        if request.op == "retrieve" and data is not None:
            payload_bytes = len(data)
        service_s = self._service_time(request.op, payload_bytes)
        self._worker_free_s[worker] = start_s + service_s
        if start_s > now:
            self._queued_starts.append(start_s)
            self._max_queue_depth = max(self._max_queue_depth, len(self._queued_starts))

        latency_s = (start_s - now) + service_s
        self._completed[request.op] += 1
        stats["admitted"] += 1
        self._busy_s += service_s
        self._last_completion_s = max(self._last_completion_s, start_s + service_s)
        registry = _metrics.get_registry()
        _metrics.inc("service_requests_total", op=op, outcome="ok")
        registry.histogram(
            "service_request_seconds", bounds=SERVICE_LATENCY_BUCKETS, op=op
        ).observe(latency_s)
        registry.histogram(
            "service_queue_wait_seconds", bounds=SERVICE_LATENCY_BUCKETS, op=op
        ).observe(start_s - now)
        _metrics.set_gauge("service_queue_depth", len(self._queued_starts))
        return RequestOutcome(
            op=request.op,
            object_id=request.object_id,
            tenant=request.tenant,
            outcome="ok",
            latency_s=latency_s,
            queue_wait_s=start_s - now,
            backpressure=self.backpressure(),
            data=data,
        )

    def offer(self, request: Request) -> RequestOutcome:
        """:meth:`submit`, but rejections come back as outcomes instead of
        raising -- the shape load generators want."""
        try:
            return self.submit(request)
        except OverloadError:
            return self._rejected_outcome(request, "rejected_overload")
        except QuotaExhaustedError:
            return self._rejected_outcome(request, "rejected_quota")

    def backpressure(self) -> Backpressure:
        """The signal clients should pace themselves by."""
        depth = len(self._queued_starts)
        if depth >= self.config.queue_capacity:
            return Backpressure.SHED
        if depth >= self.config.throttle_at * self.config.queue_capacity:
            return Backpressure.THROTTLE
        return Backpressure.OK

    @property
    def queue_depth(self) -> int:
        return len(self._queued_starts)

    # -- internals ---------------------------------------------------------------

    def _rejected_outcome(self, request: Request, outcome: str) -> RequestOutcome:
        return RequestOutcome(
            op=request.op,
            object_id=request.object_id,
            tenant=request.tenant,
            outcome=outcome,
            backpressure=self.backpressure(),
        )

    def _note_rejected_demand(self, request: Request) -> None:
        """Rejected retrieves are still demand the tier migrator should see.

        Admitted requests are recorded by the placement layer on the real
        fetch, so only rejections are recorded here -- no double counting.
        A shed read is a strong promotion signal: the object was wanted
        while the archive had no capacity to serve it.
        """
        if request.op != "retrieve":
            return
        tiering = getattr(self.archive, "tiering", None)
        if tiering is not None:
            tiering.tracker.record(request.object_id)

    def _drain_started(self, now_s: float) -> None:
        """Drop queued entries whose service has started by *now_s*."""
        queued = self._queued_starts
        while queued and queued[0] <= now_s:
            queued.popleft()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.config.tenant_quotas.get(tenant, self.config.default_quota)
            if quota is None:
                quota = TenantQuota(capacity=float("inf"), refill_per_s=0.0)
            bucket = self._buckets[tenant] = TokenBucket(quota, now_s=self.clock.now_s)
        return bucket

    def _service_time(self, op: str, payload_bytes: int) -> float:
        base = op_service_time_s(
            payload_bytes,
            op=op,
            profile=self.config.profile,
            overhead_s=self.config.overhead_s,
        )
        if self.config.jitter:
            base *= 1.0 + self.config.jitter * self.rng.random()
        return base

    def _execute(self, request: Request) -> bytes | None:
        """Run the real data path.  Archive errors propagate: a missing
        object or decode failure is a caller/system bug, not load."""
        if request.op == "store":
            self.archive.store(request.object_id, request.payload)
            return None
        return self.archive.retrieve(request.object_id)

    # -- reporting ---------------------------------------------------------------

    def report(self) -> dict:
        """Deterministic end-of-run summary (the BENCH_service payload).

        Latency percentiles are read back from the ``repro.obs`` histograms
        the request path records into, so the reported p50/p99/p999 are
        exactly what the observability layer measured.
        """
        registry = _metrics.get_registry()
        latency = {}
        for op in ("store", "retrieve"):
            if not self._completed[op]:
                continue
            histogram = registry.histogram(
                "service_request_seconds", bounds=SERVICE_LATENCY_BUCKETS, op=op
            )
            latency[op] = {
                "count": histogram.count,
                "mean_s": histogram.mean,
                "p50_s": histogram.quantile(0.50),
                "p99_s": histogram.quantile(0.99),
                "p999_s": histogram.quantile(0.999),
                "max_s": histogram.max,
            }
        completed = sum(self._completed.values())
        makespan_s = 0.0
        if self._first_arrival_s is not None:
            makespan_s = self._last_completion_s - self._first_arrival_s
        return {
            "config": {
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "throttle_at": self.config.throttle_at,
                "overhead_s": self.config.overhead_s,
                "jitter": self.config.jitter,
                "profile": (self.config.profile.name if self.config.profile else "Pergamum (hypothetical)"),
            },
            "requests_total": completed + sum(self._rejected.values()),
            "completed": dict(sorted(self._completed.items())),
            "rejected": dict(sorted(self._rejected.items())),
            "latency": {op: latency[op] for op in sorted(latency)},
            "simulated_makespan_s": makespan_s,
            "throughput_rps": (completed / makespan_s) if makespan_s > 0 else 0.0,
            "worker_utilization": (
                self._busy_s / (makespan_s * self.config.workers)
                if makespan_s > 0
                else 0.0
            ),
            "max_queue_depth": self._max_queue_depth,
            "tenants": {
                tenant: dict(sorted(stats.items()))
                for tenant, stats in sorted(self._tenant_stats.items())
            },
        }
