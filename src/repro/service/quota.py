"""Per-tenant token-bucket quotas for the archive service.

A multi-tenant archive serving millions of users cannot let one tenant's
burst starve everyone else's reads; the classic fix is a token bucket per
tenant: *capacity* tokens of burst headroom, refilled continuously at
*refill_per_s*.  Buckets run on the service's simulated clock, so quota
decisions -- like everything else in the service -- replay exactly under a
fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class TenantQuota:
    """Quota parameters for one tenant (or the service-wide default)."""

    #: Burst headroom: the bucket's maximum token count.
    capacity: float = 64.0
    #: Sustained rate: tokens added per simulated second.
    refill_per_s: float = 32.0
    #: Tokens one request costs.
    cost_per_request: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.refill_per_s < 0:
            raise ParameterError("need capacity > 0 and refill_per_s >= 0")
        if self.cost_per_request <= 0:
            raise ParameterError("cost_per_request must be > 0")


class TokenBucket:
    """A token bucket evaluated lazily on a simulated clock."""

    def __init__(self, quota: TenantQuota, now_s: float = 0.0):
        self.quota = quota
        self._tokens = quota.capacity
        self._updated_s = now_s

    def available(self, now_s: float) -> float:
        """Tokens available at *now_s* (refills as a side effect)."""
        self._refill(now_s)
        return self._tokens

    def try_take(self, now_s: float) -> bool:
        """Take one request's worth of tokens; False when exhausted."""
        self._refill(now_s)
        if self._tokens < self.quota.cost_per_request:
            return False
        self._tokens -= self.quota.cost_per_request
        return True

    def _refill(self, now_s: float) -> None:
        if now_s < self._updated_s:
            raise ParameterError("token bucket clock moved backwards")
        self._tokens = min(
            self.quota.capacity,
            self._tokens + (now_s - self._updated_s) * self.quota.refill_per_s,
        )
        self._updated_s = now_s
