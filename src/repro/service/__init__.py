"""Archive service front-end: queueing, admission control, tenant quotas.

The paper's Section 3.2 sizes archives by what they can *serve*, not what
their libraries can encode; this package wraps an archival system in the
service machinery real deployments put in front of one -- a bounded request
queue with typed overload rejection, backpressure signaling, and per-tenant
token buckets -- all on simulated time so seeded load replays exactly.
"""

from repro.service.clock import SimulatedClock
from repro.service.load import ServiceLoadSpec, run_service_load
from repro.service.quota import TenantQuota, TokenBucket
from repro.service.server import (
    SERVICE_LATENCY_BUCKETS,
    ArchiveService,
    Backpressure,
    Request,
    RequestOutcome,
    ServiceConfig,
)

__all__ = [
    "ArchiveService",
    "Backpressure",
    "Request",
    "RequestOutcome",
    "ServiceConfig",
    "ServiceLoadSpec",
    "SERVICE_LATENCY_BUCKETS",
    "SimulatedClock",
    "TenantQuota",
    "TokenBucket",
    "run_service_load",
]
