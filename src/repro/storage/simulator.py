"""Day-stepped archive I/O simulator.

Cross-checks the analytic re-encryption model of
:mod:`repro.storage.archive_model` with an explicit simulation that models
what the back-of-envelope abstracts away:

- read and write streams share the same drive pool (sequential
  read-process-write halves the effective rate, the paper's "at least
  double" factor);
- a fraction of bandwidth is reserved for ongoing ingest and reads (the
  paper's second doubling);
- the archive keeps *growing* during the campaign, and data ingested before
  the campaign finishes but after the break was announced still needs
  conversion unless written under the new cipher from day one.

The simulator also reports the vulnerable-fraction curve over time -- the
quantified form of "during which time all not-yet-encrypted data remains
vulnerable".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.storage.archive_model import ArchiveProfile


@dataclass
class SimulationDay:
    day: int
    converted_tb: float
    remaining_tb: float
    vulnerable_fraction: float


@dataclass
class ReencryptionSimulation:
    """Result of one simulated re-encryption campaign."""

    archive: ArchiveProfile
    days: int
    timeline: list[SimulationDay] = field(default_factory=list)

    @property
    def months(self) -> float:
        return self.days / 30.44

    def vulnerable_fraction_at(self, day: int) -> float:
        if not self.timeline:
            raise ParameterError("empty simulation")
        index = min(day, len(self.timeline) - 1)
        return self.timeline[index].vulnerable_fraction


def simulate_reencryption(
    archive: ArchiveProfile,
    reserve_fraction: float = 0.5,
    write_matches_read: bool = True,
    ingest_tb_per_day: float = 0.0,
    new_data_uses_new_cipher: bool = True,
    max_days: int = 200_000,
    record_every: int = 1,
) -> ReencryptionSimulation:
    """Simulate converting the whole archive to a new cipher.

    ``reserve_fraction`` of aggregate bandwidth serves production traffic.
    With ``write_matches_read`` the write stream runs at read speed and the
    conversion pipeline is sequential read-then-write on the same drive
    pool, so the effective conversion rate is half the allocated bandwidth
    (slower media writes only make this worse).
    """
    if not 0 <= reserve_fraction < 1:
        raise ParameterError("reserve_fraction must be in [0, 1)")
    if ingest_tb_per_day < 0:
        raise ParameterError("ingest rate must be >= 0")

    allocated = archive.read_throughput_tb_per_day * (1 - reserve_fraction)
    write_rate = allocated if write_matches_read else allocated / 2
    # Sequential read + write on a shared pool: harmonic combination.
    conversion_rate = 1.0 / (1.0 / allocated + 1.0 / write_rate)

    remaining = archive.capacity_tb
    total = archive.capacity_tb
    timeline: list[SimulationDay] = []
    day = 0
    converted = 0.0
    while remaining > 1e-9:
        day += 1
        if day > max_days:
            raise ParameterError(
                f"campaign for {archive.name} did not finish in {max_days} days "
                "(ingest outpaces conversion)"
            )
        if ingest_tb_per_day:
            total += ingest_tb_per_day
            if not new_data_uses_new_cipher:
                remaining += ingest_tb_per_day
        step = min(conversion_rate, remaining)
        converted += step
        remaining -= step
        if day % record_every == 0 or remaining <= 1e-9:
            timeline.append(
                SimulationDay(
                    day=day,
                    converted_tb=converted,
                    remaining_tb=remaining,
                    vulnerable_fraction=remaining / total if total else 0.0,
                )
            )
    return ReencryptionSimulation(archive=archive, days=day, timeline=timeline)
