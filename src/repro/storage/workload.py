"""Synthetic archival workload generation.

Archives have a characteristic shape the evaluation should exercise:
write-once objects with a heavy-tailed size distribution, rare reads
concentrated on recent data, and essentially no deletes (the paper:
"archives accumulate data that is rarely deleted").  The generator produces
deterministic workloads with those properties so benchmarks can drive every
system with the same realistic object stream.

Size model: log-normal (the standard fit for file-size distributions),
parameterized by a median and spread.  Read model: per-epoch read count is
a fixed fraction of the object count, with ages drawn from a geometric
distribution (recent objects read more -- the HPSS/ECMWF studies' pattern).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.crypto.drbg import DeterministicRandom
from repro.errors import IntegrityError, ParameterError


@dataclass(frozen=True)
class WorkloadObject:
    """One object in the synthetic stream."""

    object_id: str
    size: int
    ingest_epoch: int


@dataclass(frozen=True)
class ReadEvent:
    object_id: str
    epoch: int


@dataclass
class WorkloadSpec:
    """Parameters of the synthetic archive workload."""

    objects_per_epoch: int = 10
    epochs: int = 5
    median_object_bytes: int = 4096
    #: Log-normal sigma; ~1.5 gives the heavy tail real file systems show.
    size_spread: float = 1.2
    #: Reads per epoch as a fraction of objects ingested so far.
    read_fraction: float = 0.05
    #: Geometric parameter for read recency (higher = more recent-skewed).
    recency_bias: float = 0.5
    max_object_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        if self.objects_per_epoch < 1 or self.epochs < 1:
            raise ParameterError("need at least one object and one epoch")
        if not 0 <= self.read_fraction <= 1:
            raise ParameterError("read_fraction must be in [0, 1]")
        if not 0 < self.recency_bias < 1:
            raise ParameterError("recency_bias must be in (0, 1)")


@dataclass
class Workload:
    """A fully materialized workload: ingest stream plus read schedule."""

    spec: WorkloadSpec
    objects: list[WorkloadObject] = field(default_factory=list)
    reads: list[ReadEvent] = field(default_factory=list)
    # Lazy per-epoch indexes (rebuilt when the backing list grows), so
    # replay() over an N-object workload stays O(N) instead of rescanning
    # the full stream once per epoch.
    _objects_by_epoch: dict[int, list[WorkloadObject]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _objects_indexed: int = field(default=0, repr=False, compare=False)
    _reads_by_epoch: dict[int, list[ReadEvent]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _reads_indexed: int = field(default=0, repr=False, compare=False)

    @property
    def total_bytes(self) -> int:
        return sum(obj.size for obj in self.objects)

    def objects_in_epoch(self, epoch: int) -> list[WorkloadObject]:
        if self._objects_indexed != len(self.objects):
            self._objects_by_epoch = {}
            for obj in self.objects:
                self._objects_by_epoch.setdefault(obj.ingest_epoch, []).append(obj)
            self._objects_indexed = len(self.objects)
        return self._objects_by_epoch.get(epoch, [])

    def reads_in_epoch(self, epoch: int) -> list[ReadEvent]:
        if self._reads_indexed != len(self.reads):
            self._reads_by_epoch = {}
            for event in self.reads:
                self._reads_by_epoch.setdefault(event.epoch, []).append(event)
            self._reads_indexed = len(self.reads)
        return self._reads_by_epoch.get(epoch, [])

    def payload_for(self, obj: WorkloadObject) -> bytes:
        """Deterministic per-object payload (regenerable, not stored)."""
        return DeterministicRandom(b"payload:" + obj.object_id.encode()).bytes(obj.size)


def lognormal_size(rng: DeterministicRandom, spec) -> int:
    """Heavy-tailed object size draw.  *spec* is duck-typed: anything with
    ``median_object_bytes``/``size_spread``/``max_object_bytes`` (the epoch
    :class:`WorkloadSpec` here, the service-tier load spec in
    :mod:`repro.service.load`)."""
    # Box-Muller from two uniforms; exp into the log-normal.
    u1 = max(rng.random(), 1e-12)
    u2 = rng.random()
    gaussian = math.sqrt(-2 * math.log(u1)) * math.cos(2 * math.pi * u2)
    size = int(spec.median_object_bytes * math.exp(spec.size_spread * gaussian))
    return max(1, min(size, spec.max_object_bytes))


def generate_workload(spec: WorkloadSpec, seed: int | bytes = 0) -> Workload:
    """Materialize a deterministic workload from *spec* and *seed*."""
    rng = DeterministicRandom(seed if isinstance(seed, bytes) else f"workload:{seed}")
    workload = Workload(spec=spec)
    # Incremental per-epoch index so read-candidate selection is O(1) per
    # read instead of rescanning every object generated so far (the same
    # candidate lists the old scan produced, so rng draws are unchanged).
    by_epoch: dict[int, list[WorkloadObject]] = {}
    total = 0
    for epoch in range(spec.epochs):
        cohort = by_epoch.setdefault(epoch, [])
        for sequence in range(spec.objects_per_epoch):
            obj = WorkloadObject(
                object_id=f"obj-{epoch:04d}-{sequence:04d}",
                size=lognormal_size(rng, spec),
                ingest_epoch=epoch,
            )
            workload.objects.append(obj)
            cohort.append(obj)
            total += 1
        # Reads target the archive as it exists after this epoch's ingest.
        read_count = int(total * spec.read_fraction)
        for _ in range(read_count):
            # Age drawn geometrically: 0 = newest epoch.
            age = 0
            while rng.random() > spec.recency_bias and age < epoch:
                age += 1
            candidates = by_epoch[epoch - age]
            workload.reads.append(
                ReadEvent(object_id=rng.choice(candidates).object_id, epoch=epoch)
            )
    return workload


def replay(workload: Workload, system) -> dict:
    """Drive an archival system with *workload*; returns traffic totals.

    Every object is stored in its ingest epoch and every scheduled read is
    issued and verified against the regenerated payload, so a successful
    replay is also an end-to-end correctness check of the system.
    """
    stored: dict[str, WorkloadObject] = {}
    bytes_ingested = 0
    bytes_read = 0
    for epoch in range(workload.spec.epochs):
        for obj in workload.objects_in_epoch(epoch):
            system.store(obj.object_id, workload.payload_for(obj))
            stored[obj.object_id] = obj
            bytes_ingested += obj.size
        for event in workload.reads_in_epoch(epoch):
            data = system.retrieve(event.object_id)
            expected = workload.payload_for(stored[event.object_id])
            if data != expected:
                raise IntegrityError(f"corrupted read of {event.object_id}")
            bytes_read += len(data)
    return {
        "objects": len(stored),
        "bytes_ingested": bytes_ingested,
        "reads": len(workload.reads),
        "bytes_read": bytes_read,
        "stored_bytes": system.placement_policy.total_bytes_stored(),
    }


# -- zipfian popularity (consumed by the service-tier load generator) ----------


class ZipfianPopularity:
    """Object-popularity model for service reads: rank-k gets weight k^-s.

    Archive read traces (the HPSS/ECMWF studies the epoch workload's
    geometric recency model comes from) are heavy-tailed: a few hot objects
    absorb most reads.  This models that directly with a Zipf distribution
    over *popularity rank*, mapped onto *recency rank* -- the newest object
    is the most popular, matching the "reads concentrate on recent data"
    shape.  The cumulative-weight array grows append-only (adding an object
    never re-weights existing entries' cumulative sums), so sampling is
    O(log n) and the model absorbs a live ingest stream without rebuilds.
    """

    def __init__(self, s: float = 1.1):
        if s <= 0:
            raise ParameterError("zipf exponent must be > 0")
        self.s = s
        self._ids: list[str] = []
        #: _cum[k] = sum of (j+1)^-s for j <= k: popularity-rank CDF, unnormalized.
        self._cum: list[float] = []

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, object_id: str) -> None:
        """Register a newly stored object (it becomes the most popular)."""
        rank = len(self._cum)
        weight = (rank + 1) ** -self.s
        self._cum.append((self._cum[-1] if self._cum else 0.0) + weight)
        self._ids.append(object_id)

    def sample(self, rng: DeterministicRandom) -> str:
        """Draw an object id with Zipf(s) popularity over recency rank."""
        if not self._ids:
            raise ParameterError("cannot sample from an empty population")
        u = rng.random() * self._cum[-1]
        rank = min(bisect_left(self._cum, u), len(self._ids) - 1)
        # Popularity rank 0 = newest object (last appended).
        return self._ids[len(self._ids) - 1 - rank]
