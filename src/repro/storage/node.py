"""Storage nodes: the dispersed, corruptible substrate.

Every archival system in :mod:`repro.systems` stores shares/objects on
:class:`StorageNode` instances.  A node models one administratively
independent storage provider site:

- a content-addressed object store (put/get/delete, with digests checked on
  read so silent corruption surfaces as :class:`IntegrityError`);
- fault injection: a node can be taken offline (availability loss) or
  *corrupted* (mobile-adversary visit: the adversary reads everything, and
  may tamper);
- accounting: bytes stored, reads/writes served, and an access log the
  adversary harness uses to know exactly what a given compromise yielded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac_ import constant_time_eq
from repro.crypto.sha256 import sha256_hex
from repro.errors import IntegrityError, NodeUnavailableError, ObjectNotFoundError
from repro.obs import metrics as _metrics
from repro.security import redact_secret


@dataclass
class StoredObject:
    """One blob on one node."""

    object_id: str
    data: bytes
    digest: str
    epoch_stored: int

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        # `data` is ciphertext/share material: never in reprs (ARCH010).
        return (
            f"StoredObject(object_id={self.object_id!r}, "
            f"data={redact_secret(self.data)}, digest={self.digest!r}, "
            f"epoch_stored={self.epoch_stored})"
        )


@dataclass
class NodeStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class StorageNode:
    """One storage site run by one provider in one region.

    *tier* is the storage tier this node's medium belongs to (a name from a
    :class:`repro.storage.tiering.TierRegistry`, e.g. its hot/warm/cold
    defaults); ``None`` means the fleet is untiered and placement treats
    every node alike.
    """

    def __init__(
        self,
        node_id: str,
        provider: str,
        region: str = "unknown",
        tier: str | None = None,
    ):
        self.node_id = node_id
        self.provider = provider
        self.region = region
        self.tier = tier
        self.online = True
        self._objects: dict[str, StoredObject] = {}
        self.stats = NodeStats()
        #: Epochs at which an adversary had full read access to this node.
        self.compromise_epochs: list[int] = []

    # -- basic object store ----------------------------------------------------

    def put(self, object_id: str, data: bytes, epoch: int = 0) -> None:
        self._require_online(f"put {object_id}")
        self._objects[object_id] = StoredObject(
            object_id=object_id,
            data=bytes(data),
            digest=sha256_hex(data),
            epoch_stored=epoch,
        )
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        _metrics.inc("storage_puts_total")
        _metrics.inc("storage_put_bytes_total", len(data))

    def get(self, object_id: str) -> bytes:
        self._require_online(f"get {object_id}")
        obj = self._lookup(object_id)
        if not constant_time_eq(sha256_hex(obj.data), obj.digest):
            raise IntegrityError(
                f"object {object_id} on node {self.node_id} fails its digest"
            )
        self.stats.gets += 1
        self.stats.bytes_read += len(obj.data)
        _metrics.inc("storage_gets_total")
        _metrics.inc("storage_get_bytes_total", len(obj.data))
        return obj.data

    def raw_bytes(self, object_id: str) -> bytes:
        """The bytes as they sit on the medium, *without* the digest gate.

        Honest reads go through :meth:`get`; this accessor exists for the
        audit protocol, where the node answers challenges from whatever it
        actually holds and the *auditor* judges it against the committed
        root -- a rotted object must produce a failing proof, not a local
        exception on an unrelated challenge.
        """
        self._require_online(f"raw_bytes {object_id}")
        return self._lookup(object_id).data

    def delete(self, object_id: str) -> None:
        self._require_online(f"delete {object_id}")
        self._lookup(object_id)
        del self._objects[object_id]
        self.stats.deletes += 1

    def contains(self, object_id: str) -> bool:
        return object_id in self._objects

    def object_ids(self) -> list[str]:
        return sorted(self._objects)

    @property
    def bytes_stored(self) -> int:
        return sum(len(obj) for obj in self._objects.values())

    # -- fault and adversary hooks ---------------------------------------------

    def set_online(self, online: bool) -> None:
        if online != self.online:
            _metrics.inc(
                "storage_node_transitions_total",
                to="online" if online else "offline",
            )
        self.online = online

    def corrupt_object(self, object_id: str, new_data: bytes) -> None:
        """Tamper with stored bytes *without* updating the digest -- the
        tampering a later honest read will detect."""
        obj = self._lookup(object_id)
        obj.data = bytes(new_data)

    def adversary_read_all(self, epoch: int) -> dict[str, bytes]:
        """A compromise: the adversary exfiltrates every object.

        Works even on 'offline' media -- the paper grants the mobile
        adversary physical corruption of a node; offline-ness reduces the
        *rate* of such events (modeled by the adversary schedule), not their
        effect.
        """
        self.compromise_epochs.append(epoch)
        return {oid: obj.data for oid, obj in self._objects.items()}

    # -- internals ----------------------------------------------------------------

    def _require_online(self, context: str = "") -> None:
        # Offline and missing must stay *distinguishable* typed errors, each
        # carrying the node id and (via context) the object id: retry logic
        # treats only the former as transient.
        if not self.online:
            suffix = f" (cannot {context})" if context else ""
            raise NodeUnavailableError(f"node {self.node_id} is offline{suffix}")

    def _lookup(self, object_id: str) -> StoredObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise ObjectNotFoundError(
                f"no object {object_id} on node {self.node_id}"
            ) from None

    def __repr__(self) -> str:
        tier = f", tier={self.tier!r}" if self.tier is not None else ""
        return (
            f"StorageNode({self.node_id!r}, provider={self.provider!r}, "
            f"objects={len(self._objects)}, online={self.online}{tier})"
        )


def make_node_fleet(
    count: int, providers: list[str] | None = None, prefix: str = "node"
) -> list[StorageNode]:
    """Build *count* nodes spread round-robin across *providers*.

    Default providers model administratively independent organizations, per
    the POTSHARDS deployment assumption.
    """
    providers = providers or [f"provider-{chr(ord('a') + i)}" for i in range(count)]
    return [
        StorageNode(
            node_id=f"{prefix}-{i}",
            provider=providers[i % len(providers)],
            region=f"region-{i % 5}",
        )
        for i in range(count)
    ]
