"""Archival storage media models (paper Section 4).

The paper's cost-reduction direction is "cheaper and denser archival storage
media": DNA (1 EB per cubic millimeter theoretical, centuries of
durability), Project Silica glass (429 TB per cubic inch, millenia, minimal
maintenance), photosensitive film (centuries, used by the Arctic World
Archive), against the incumbents tape/HDD/SSD.

:class:`MediaSpec` captures the published parameters; the total-cost model
amortizes acquisition, media refresh (migration every ``lifetime_years``),
and upkeep (power/maintenance) over an archive's horizon.  Numbers are
representative published figures (sources in each entry); the media
benchmark sweeps them to reproduce the qualitative ordering the paper
argues: offline dense media dominate for century-scale archives even at
higher acquisition cost, because refresh cycles dominate tape/HDD TCO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class MediaSpec:
    """Parametric model of one archival storage medium."""

    name: str
    #: Volumetric density in TB per cubic centimeter.
    density_tb_per_cc: float
    #: Media acquisition cost, USD per TB.
    cost_usd_per_tb: float
    #: Expected media lifetime before forced migration, years.
    lifetime_years: float
    #: Sequential read throughput per drive/reader, MB/s.
    read_mb_per_s: float
    #: Sequential write/synthesis throughput per writer, MB/s.
    write_mb_per_s: float
    #: Annual upkeep (power, cooling, environment), USD per TB per year.
    upkeep_usd_per_tb_year: float
    #: True if the medium sits offline when idle (smaller attack surface --
    #: the paper's security argument for removable media).
    offline: bool
    source: str = ""

    def __post_init__(self) -> None:
        for field_name in (
            "density_tb_per_cc",
            "cost_usd_per_tb",
            "lifetime_years",
            "read_mb_per_s",
            "write_mb_per_s",
        ):
            if getattr(self, field_name) <= 0:
                raise ParameterError(f"{field_name} must be positive")

    # -- derived quantities -----------------------------------------------------

    def migrations_over(self, horizon_years: float) -> int:
        """Forced media refreshes within the horizon (end-of-life copies)."""
        if horizon_years <= 0:
            raise ParameterError("horizon must be positive")
        return max(0, int(horizon_years / self.lifetime_years - 1e-9))

    def total_cost_usd_per_tb(self, horizon_years: float) -> float:
        """Acquisition + refresh + upkeep per TB over *horizon_years*."""
        acquisitions = 1 + self.migrations_over(horizon_years)
        return (
            acquisitions * self.cost_usd_per_tb
            + self.upkeep_usd_per_tb_year * horizon_years
        )

    def volume_liters_for(self, capacity_tb: float) -> float:
        """Physical volume needed for *capacity_tb* (media only)."""
        return capacity_tb / self.density_tb_per_cc / 1000.0

    def read_time_days(self, capacity_tb: float, drives: int = 1) -> float:
        """Days to stream *capacity_tb* with *drives* parallel readers."""
        if drives < 1:
            raise ParameterError("need at least one drive")
        mb = capacity_tb * 1_000_000
        seconds = mb / (self.read_mb_per_s * drives)
        return seconds / 86_400


#: Representative published parameters for the media the paper discusses.
MEDIA_CATALOG: dict[str, MediaSpec] = {
    "tape": MediaSpec(
        name="LTO-9 tape",
        density_tb_per_cc=0.1,  # ~18 TB native in ~200 cc cartridge
        cost_usd_per_tb=5.0,
        lifetime_years=15,
        read_mb_per_s=400,
        write_mb_per_s=400,
        upkeep_usd_per_tb_year=0.5,
        offline=True,
        source="LTO consortium figures; paper's 'common archival medium'",
    ),
    "hdd": MediaSpec(
        name="Archival HDD",
        density_tb_per_cc=0.05,  # ~20 TB in ~400 cc
        cost_usd_per_tb=15.0,
        lifetime_years=5,
        read_mb_per_s=250,
        write_mb_per_s=250,
        upkeep_usd_per_tb_year=2.5,  # spinning power dominates
        offline=False,
        source="paper: 'too expensive ... less secure' for archives",
    ),
    "ssd": MediaSpec(
        name="QLC SSD",
        density_tb_per_cc=0.5,
        cost_usd_per_tb=50.0,
        lifetime_years=7,
        read_mb_per_s=3000,
        write_mb_per_s=1500,
        upkeep_usd_per_tb_year=1.0,
        offline=False,
        source="excluded by the paper on cost grounds",
    ),
    "glass": MediaSpec(
        name="Silica glass (Project Silica)",
        density_tb_per_cc=26.0,  # 429 TB per cubic inch = ~26 TB/cc [Zhang '16]
        cost_usd_per_tb=40.0,  # writer-dominated; media is cheap
        lifetime_years=1000,
        read_mb_per_s=100,
        write_mb_per_s=30,
        upkeep_usd_per_tb_year=0.05,  # "requires very little maintenance"
        offline=True,
        source="Anderson et al., SOSP '23; Zhang et al. '16",
    ),
    "dna": MediaSpec(
        name="Synthetic DNA",
        density_tb_per_cc=1_000_000.0,  # 1 EB/mm^3 = 10^6 TB/cc theoretical
        cost_usd_per_tb=100_000.0,  # synthesis cost dominates [Bornholt '17]
        lifetime_years=500,
        read_mb_per_s=0.01,  # sequencing throughput
        write_mb_per_s=0.001,  # synthesis throughput
        upkeep_usd_per_tb_year=0.01,
        offline=True,
        source="Bornholt et al., IEEE Micro '17 ('high costs and low throughputs')",
    ),
    "film": MediaSpec(
        name="Photosensitive film (piqlFilm)",
        density_tb_per_cc=0.002,
        cost_usd_per_tb=200.0,
        lifetime_years=500,
        read_mb_per_s=10,
        write_mb_per_s=5,
        upkeep_usd_per_tb_year=0.05,
        offline=True,
        source="Sablinski & Trujillo '21 (Arctic World Archive)",
    ),
}


def rank_media_by_tco(horizon_years: float) -> list[tuple[str, float]]:
    """Media sorted by total cost per TB over *horizon_years* (cheapest first)."""
    ranked = [
        (key, spec.total_cost_usd_per_tb(horizon_years))
        for key, spec in MEDIA_CATALOG.items()
    ]
    ranked.sort(key=lambda pair: pair[1])
    return ranked
