"""Share placement across independent providers.

POTSHARDS' deployment rule (paper Section 3.2): "each share is uploaded to
an administratively independent storage provider, thereby avoiding a single
point of trust or failure."  :class:`PlacementPolicy` enforces that rule --
no two shares of the same object may land on nodes of the same provider --
and records placements so systems can retrieve, re-place after
redistribution, and reason about what a compromised provider exposes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.errors import (
    DeadlineExceededError,
    IntegrityError,
    NodeUnavailableError,
    ObjectNotFoundError,
    ParameterError,
    StorageError,
)
from repro.obs import metrics as _metrics
from repro.storage.faults import (
    DegradedReadReport,
    RetryPolicy,
    default_retry_policy,
)
from repro.storage.node import StorageNode

logger = logging.getLogger("repro.storage")


@dataclass(frozen=True)
class Placement:
    """Where each share index of one object went."""

    object_id: str
    node_by_share: dict[int, str]

    def nodes(self) -> list[str]:
        return [self.node_by_share[i] for i in sorted(self.node_by_share)]


class PlacementPolicy:
    """Round-robin placement with a provider-independence constraint."""

    def __init__(
        self,
        nodes: list[StorageNode],
        require_distinct_providers: bool = True,
        retry_policy: RetryPolicy | None = None,
        retry_seed: bytes | int | str = b"placement-backoff",
    ):
        if not nodes:
            raise ParameterError("placement needs at least one node")
        self.nodes = {node.node_id: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise ParameterError("duplicate node ids")
        self.require_distinct_providers = require_distinct_providers
        self.retry_policy = retry_policy or default_retry_policy()
        # Backoff jitter comes from a seeded rng owned by the policy object,
        # so two identically-seeded runs replay the same delays.
        self._retry_rng = DeterministicRandom(retry_seed)
        self._rotation = 0
        #: Tier registry (repro.storage.tiering.TierRegistry) when the fleet
        #: is tiered; installed by SecureArchive.enable_tiering.  None keeps
        #: every code path byte-identical to the untiered behavior.
        self.tiers = None
        #: Access tracker fed one record per object fetch (real demand);
        #: installed alongside the registry.  Maintenance fetches run under
        #: tracker.suspended() so background reads don't register.
        self.tracker = None

    def node(self, node_id: str) -> StorageNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise StorageError(f"unknown node {node_id!r}") from None

    def online_nodes(self) -> list[StorageNode]:
        return [n for n in self.nodes.values() if n.online]

    def place(
        self,
        object_id: str,
        share_indices: list[int],
        tier_layout: dict[int, str] | None = None,
    ) -> Placement:
        """Choose a node for every share index, rotating start position so
        load spreads across the fleet.

        *tier_layout* (share index -> tier name) makes placement tier-aware:
        each share prefers nodes of its target tier, falling back along the
        registry's nearest-tier order when the target tier cannot supply an
        independent provider.  Without a layout (or without a registry) the
        untiered path runs unchanged, byte-identical to pre-tiering runs.
        """
        if tier_layout is not None and self.tiers is not None:
            return self._place_tiered(object_id, share_indices, tier_layout)
        candidates = self.online_nodes()
        if self.require_distinct_providers:
            by_provider: dict[str, StorageNode] = {}
            for node in candidates:
                by_provider.setdefault(node.provider, node)
            candidates = list(by_provider.values())
        if len(candidates) < len(share_indices):
            kind = "providers" if self.require_distinct_providers else "nodes"
            raise StorageError(
                f"need {len(share_indices)} independent {kind}, "
                f"only {len(candidates)} available"
            )
        # Deterministic rotation keeps placement reproducible run to run.
        start = self._rotation % len(candidates)
        self._rotation += 1
        ordered = candidates[start:] + candidates[:start]
        return Placement(
            object_id=object_id,
            node_by_share={
                index: ordered[i].node_id for i, index in enumerate(share_indices)
            },
        )

    def _place_tiered(
        self, object_id: str, share_indices: list[int], tier_layout: dict[int, str]
    ) -> Placement:
        """Tier-preferring placement under the provider-independence rule.

        Shares are assigned in sorted index order; each walks its target
        tier's fallback order (nearest tier first, colder before warmer)
        and takes the first node not already used by this object and not
        sharing a provider with an already-chosen share.  The fleet
        rotation advances once per placement, exactly like the untiered
        path, so load still spreads within each tier deterministically.
        """
        online = self.online_nodes()
        start = self._rotation
        self._rotation += 1
        pools: dict[str, list[StorageNode]] = {}
        for node in online:
            pools.setdefault(getattr(node, "tier", None), []).append(node)
        used_nodes: set[str] = set()
        used_providers: set[str] = set()
        node_by_share: dict[int, str] = {}
        for index in sorted(share_indices):
            want = tier_layout.get(index, self.tiers.hottest.name)
            chosen: StorageNode | None = None
            search: list[StorageNode] = []
            for tier_name in self.tiers.fallback_order(want):
                pool = pools.get(tier_name, [])
                if pool:
                    offset = start % len(pool)
                    search.extend(pool[offset:] + pool[:offset])
            # Untiered nodes, if any, are the last resort.
            search.extend(pools.get(None, []))
            for node in search:
                if node.node_id in used_nodes:
                    continue
                if self.require_distinct_providers and node.provider in used_providers:
                    continue
                chosen = node
                break
            if chosen is None:
                kind = "providers" if self.require_distinct_providers else "nodes"
                raise StorageError(
                    f"no independent {kind} left for share {index} of "
                    f"{object_id} (want tier {want!r})"
                )
            used_nodes.add(chosen.node_id)
            used_providers.add(chosen.provider)
            node_by_share[index] = chosen.node_id
            tier = getattr(chosen, "tier", None)
            if tier is not None:
                _metrics.inc("tier_shares_placed_total", tier=tier)
        return Placement(object_id=object_id, node_by_share=node_by_share)

    def store(self, placement: Placement, payload_by_share: dict[int, bytes], epoch: int = 0) -> None:
        for index, node_id in placement.node_by_share.items():
            if index not in payload_by_share:
                raise ParameterError(f"no payload for share index {index}")
            self.put_with_retry(
                self.node(node_id),
                _share_object_id(placement.object_id, index),
                payload_by_share[index],
                epoch=epoch,
            )

    def put_with_retry(
        self, node: StorageNode, object_id: str, data: bytes, epoch: int = 0
    ) -> None:
        """Store one object, retrying transient unavailability with backoff."""

        def on_retry(attempt: int, delay_s: float, exc: Exception) -> None:
            _metrics.inc("store_retries_total")
            _metrics.observe("storage_backoff_delay_seconds", delay_s)

        self.retry_policy.call(
            lambda: node.put(object_id, data, epoch=epoch),
            self._retry_rng,
            on_retry=on_retry,
        )

    def fetch_available(self, placement: Placement) -> dict[int, bytes]:
        """Fetch every share that is currently retrievable; unavailable
        shares are simply absent.  Thin wrapper over :meth:`fetch_degraded`
        for callers that only want the bytes."""
        return self.fetch_degraded(placement)[0]

    def fetch_degraded(
        self, placement: Placement, need: int | None = None
    ) -> tuple[dict[int, bytes], DegradedReadReport]:
        """Degraded-read-aware fetch: stop as soon as *need* shares arrived.

        Transient faults (node unavailable, injected latency past the
        deadline) are retried under the placement's :class:`RetryPolicy`
        with seeded-jitter backoff; only after retries are exhausted is the
        share recorded lost.  The four *expected* archival loss modes are
        absorbed -- offline, missing, corrupted, timeout -- each recorded in
        the metrics registry with its reason and logged at WARNING.
        Anything else (a bad placement map, a programming error inside a
        node) propagates on the first raise: a typo must not masquerade as
        "share unavailable".

        On a tiered fleet the fetch order is (tier rank, share index) --
        hot shares first, so a healthy hot quorum never touches cold media,
        and a degraded read that *does* fall back to colder shares pays
        that tier's archive-model read time (recorded in the report's
        simulated wait and the ``tier_read_seconds`` histogram).  Untiered
        fleets keep the original plain index order.

        Returns the fetched payloads plus a :class:`DegradedReadReport` of
        shares tried/failed, retries, and total simulated wait.
        """
        out: dict[int, bytes] = {}
        report = DegradedReadReport(
            object_id=placement.object_id,
            shares_total=len(placement.node_by_share),
        )
        if self.tracker is not None:
            # One record per object fetch: real demand, fed to the tier
            # migrator's decayed access counters.
            self.tracker.record(placement.object_id)

        def on_retry(attempt: int, delay_s: float, exc: Exception) -> None:
            _metrics.inc("fetch_retries_total")
            _metrics.observe("storage_backoff_delay_seconds", delay_s)
            report.retries += 1
            error_name = type(exc).__name__
            report.retry_errors[error_name] = report.retry_errors.get(error_name, 0) + 1
            report.simulated_wait_s += delay_s

        for index in self._fetch_order(placement):
            if need is not None and len(out) >= need:
                report.stopped_early = True
                break
            node_id = placement.node_by_share[index]
            node = self.node(node_id)
            object_id = _share_object_id(placement.object_id, index)
            report.shares_tried += 1
            if not node.online:
                _metrics.inc("storage_fetch_attempts_total")
                self._record_share_loss(node, object_id, "offline", "node offline")
                report.shares_failed[index] = "offline"
                continue

            def attempt_get() -> bytes:
                _metrics.inc("storage_fetch_attempts_total")
                return node.get(object_id)

            try:
                payload = self.retry_policy.call(
                    attempt_get, self._retry_rng, on_retry=on_retry
                )
            except NodeUnavailableError as exc:
                self._record_share_loss(node, object_id, "offline", exc)
                report.shares_failed[index] = "offline"
            except DeadlineExceededError as exc:
                self._record_share_loss(node, object_id, "timeout", exc)
                report.shares_failed[index] = "timeout"
            except ObjectNotFoundError as exc:
                self._record_share_loss(node, object_id, "missing", exc)
                report.shares_failed[index] = "missing"
            except IntegrityError as exc:
                self._record_share_loss(node, object_id, "corrupted", exc)
                report.shares_failed[index] = "corrupted"
            else:
                out[index] = payload
                report.shares_ok += 1
                _metrics.inc("storage_shares_fetched_total")
                _metrics.inc("storage_fetch_bytes_total", len(payload))
                report.simulated_wait_s += self._price_tier_read(node, len(payload))
            finally:
                plan = getattr(node, "fault_plan", None)
                if plan is not None:
                    report.simulated_wait_s += plan.drain_wait_s()
        return out, report

    def _fetch_order(self, placement: Placement) -> list[int]:
        """Share indices in fetch-preference order: plain index order when
        untiered; (tier rank, index) -- hottest media first -- when the
        registry is installed, so cold shares are only touched when the
        warmer quorum falls short."""
        indices = sorted(placement.node_by_share)
        if self.tiers is None:
            return indices

        def rank(index: int) -> int:
            tier = getattr(self.node(placement.node_by_share[index]), "tier", None)
            if tier is None or tier not in self.tiers:
                return len(self.tiers)  # untiered nodes fetch last
            return self.tiers.rank(tier)

        return sorted(indices, key=lambda index: (rank(index), index))

    def _price_tier_read(self, node: StorageNode, payload_bytes: int) -> float:
        """Archive-model read time of one share on *node*'s tier medium
        (0.0 on untiered fleets/nodes), recorded per tier."""
        if self.tiers is None:
            return 0.0
        tier = getattr(node, "tier", None)
        if tier is None or tier not in self.tiers:
            return 0.0
        cost_s = self.tiers.get(tier).read_seconds(payload_bytes)
        _metrics.inc("tier_reads_total", tier=tier)
        _metrics.observe("tier_read_seconds", cost_s, tier=tier)
        return cost_s

    @staticmethod
    def _record_share_loss(
        node: StorageNode, object_id: str, reason: str, detail: object
    ) -> None:
        _metrics.inc("storage_shares_lost_total", reason=reason)
        logger.warning(
            "share %s unavailable on node %s (provider %s): %s: %s",
            object_id,
            node.node_id,
            node.provider,
            reason,
            detail,
        )

    def delete(self, placement: Placement) -> None:
        for index, node_id in placement.node_by_share.items():
            node = self.node(node_id)
            object_id = _share_object_id(placement.object_id, index)
            if node.online and node.contains(object_id):
                node.delete(object_id)

    def total_bytes_stored(self) -> int:
        return sum(node.bytes_stored for node in self.nodes.values())


def _share_object_id(object_id: str, share_index: int) -> str:
    return f"{object_id}/share-{share_index}"
