"""Tiered hot/warm/cold storage: the tier registry, access tracking, and
policy-driven migration.

The paper's Section 3.2/4 economics price archives by *medium* -- SSD/disk
for data that must come back in milliseconds, tape/glass/DNA for data that
may take hours -- but an archive only realizes those prices if objects
actually *move* to the medium their access pattern deserves.  This module
supplies the three pieces:

- :class:`TierRegistry` -- the single source of tier names.  Each tier
  binds a name (``hot``/``warm``/``cold`` by default) to a
  :class:`repro.storage.media.MediaSpec` and an
  :class:`repro.storage.archive_model.ArchiveProfile` that prices reads
  and writes on that tier with the same Section 3.2 arithmetic the service
  layer uses.  Everything else in the repo refers to tiers *through* the
  registry (enforced by archlint rule ARCH007): no hard-coded tier strings,
  no reaching into ``MEDIA_CATALOG`` behind the registry's back.
- :class:`AccessTracker` -- exponentially decayed per-object access
  counters, fed by :meth:`repro.storage.placement.PlacementPolicy.fetch_degraded`
  (every real read) and by the service layer (rejected demand the archive
  never saw).  Maintenance reads -- renewal, repair, migration itself --
  run under :meth:`AccessTracker.suspended` so background traffic never
  masquerades as user demand.
- :class:`TierMigrator` -- the policy engine.  Bound to an archive
  (:meth:`bind` / ``SecureArchive.enable_tiering``), it assigns every
  object a tier (new objects start hottest), computes the per-share tier
  layout placement uses (the decode quorum rides the object's tier, parity
  rides the coldest tier), and on each epoch tick promotes objects whose
  decayed score clears ``promote_score`` and demotes objects idle past
  ``demote_idle_epochs``.  A migration *is* a renewal: the object is
  re-split through the archive's own proactive-renewal pipeline, so
  demotion/promotion and re-encryption share one background pass, and the
  move is priced with the archive I/O model (read at the source tier's
  rate, write at the target's).

Determinism contract: no wall clocks, no ambient randomness -- tier
assignments are a pure function of the operation sequence, so identically
seeded runs produce byte-identical assignments (pinned by
``tests/test_tiering.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ObjectNotFoundError, ParameterError, StorageError
from repro.obs import metrics as _metrics
from repro.storage.archive_model import ArchiveProfile, op_service_time_s
from repro.storage.media import MEDIA_CATALOG, MediaSpec
from repro.storage.node import StorageNode

__all__ = [
    "TIER_COLD",
    "TIER_HOT",
    "TIER_NAMES",
    "TIER_WARM",
    "AccessTracker",
    "MigrationPolicy",
    "MigrationReport",
    "TierMigrator",
    "TierRegistry",
    "TierSpec",
    "default_tier_registry",
    "make_tiered_fleet",
]

#: The canonical tier vocabulary.  These constants are the *only* place the
#: names appear as literals (ARCH007); every other module imports them or,
#: better, walks a :class:`TierRegistry`.
TIER_HOT = "hot"
TIER_WARM = "warm"
TIER_COLD = "cold"
TIER_NAMES = (TIER_HOT, TIER_WARM, TIER_COLD)


@dataclass(frozen=True)
class TierSpec:
    """One storage tier: a name bound to a medium and an I/O price model."""

    name: str
    #: The medium backing this tier (density/cost/lifetime per Section 4).
    media: MediaSpec
    #: Archive-model profile pricing reads/writes on this tier.
    profile: ArchiveProfile

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("tier name must be non-empty")

    def read_seconds(self, payload_bytes: int) -> float:
        """Seconds to serve one read of *payload_bytes* from this tier."""
        return op_service_time_s(payload_bytes, op="retrieve", profile=self.profile)

    def write_seconds(self, payload_bytes: int) -> float:
        """Seconds to land one write of *payload_bytes* on this tier."""
        return op_service_time_s(payload_bytes, op="store", profile=self.profile)


def _tier_profile(name: str, media: MediaSpec, drives: int) -> ArchiveProfile:
    """Derive an archive-model profile from a medium's drive throughput."""
    if drives < 1:
        raise ParameterError("a tier needs at least one drive")
    tb_per_day = media.read_mb_per_s * drives * 86_400.0 / 1e6
    return ArchiveProfile(
        name=f"{name} tier ({media.name} x{drives})",
        capacity_tb=1_000.0,  # placement is bytes-unbounded; only rate matters
        read_throughput_tb_per_day=tb_per_day,
        medium=media.name,
        source=f"derived from MediaSpec({media.name}) at {drives} drives",
    )


class TierRegistry:
    """Ordered (hottest first) registry of tiers; the single naming source.

    All tier lookups, comparisons, and neighbor walks go through here so
    that tier names stay a closed vocabulary and every tier carries its
    media binding.  ``rank`` 0 is the hottest tier.
    """

    def __init__(self, tiers: Sequence[TierSpec]):
        if not tiers:
            raise ParameterError("a tier registry needs at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ParameterError("duplicate tier names")
        self._order: tuple[str, ...] = tuple(names)
        self._tiers: dict[str, TierSpec] = {tier.name: tier for tier in tiers}

    # -- lookups -----------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return self._order

    def __iter__(self) -> Iterator[TierSpec]:
        return iter(self._tiers[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._tiers

    def __len__(self) -> int:
        return len(self._order)

    def get(self, name: str) -> TierSpec:
        try:
            return self._tiers[name]
        except KeyError:
            raise StorageError(
                f"unknown tier {name!r} (registry has {', '.join(self._order)})"
            ) from None

    def rank(self, name: str) -> int:
        """0 for the hottest tier, increasing toward cold."""
        self.get(name)
        return self._order.index(name)

    @property
    def hottest(self) -> TierSpec:
        return self._tiers[self._order[0]]

    @property
    def coldest(self) -> TierSpec:
        return self._tiers[self._order[-1]]

    def colder(self, name: str) -> TierSpec:
        """One step colder (clamped at the coldest tier)."""
        index = min(self.rank(name) + 1, len(self._order) - 1)
        return self._tiers[self._order[index]]

    def warmer(self, name: str) -> TierSpec:
        """One step warmer (clamped at the hottest tier)."""
        index = max(self.rank(name) - 1, 0)
        return self._tiers[self._order[index]]

    def fallback_order(self, name: str) -> tuple[str, ...]:
        """Placement preference when *name* has no capacity: nearest tiers
        first, colder before warmer on ties (cold overflow is cheap; hot
        overflow burns the expensive tier)."""
        want = self.rank(name)
        return tuple(
            sorted(self._order, key=lambda n: (abs(self.rank(n) - want), -self.rank(n)))
        )


def default_tier_registry(drives_per_tier: int = 8) -> TierRegistry:
    """The default three-tier economy: SSD hot, HDD warm, tape cold.

    The media bindings come straight from the Section 4 catalog; each
    tier's I/O profile assumes *drives_per_tier* parallel drives, so the
    hot:cold read-rate ratio mirrors the published per-drive throughputs.
    """
    catalog = dict(MEDIA_CATALOG)
    bindings = {TIER_HOT: "ssd", TIER_WARM: "hdd", TIER_COLD: "tape"}
    return TierRegistry(
        [
            TierSpec(
                name=name,
                media=catalog[media_key],
                profile=_tier_profile(name, catalog[media_key], drives_per_tier),
            )
            for name, media_key in bindings.items()
        ]
    )


def make_tiered_fleet(
    counts: dict[str, int],
    registry: TierRegistry | None = None,
    prefix: str = "node",
) -> list[StorageNode]:
    """Build a fleet with *counts* nodes per tier, all providers distinct.

    ``counts`` maps tier name -> node count; names are validated against
    *registry* (the default registry when omitted).  Every node gets its
    own provider so provider-independent placement is satisfiable within
    each tier, and nodes are ordered hottest tier first.
    """
    registry = registry or default_tier_registry()
    nodes: list[StorageNode] = []
    for name in registry.names:
        count = counts.get(name, 0)
        if count < 0:
            raise ParameterError(f"tier {name!r} node count must be >= 0")
    unknown = [name for name in counts if name not in registry]
    if unknown:
        raise StorageError(
            f"unknown tier(s) {', '.join(sorted(unknown))} in fleet counts"
        )
    serial = 0
    for name in registry.names:
        for k in range(counts.get(name, 0)):
            node = StorageNode(
                node_id=f"{prefix}-{name}-{k}",
                provider=f"provider-{name}-{k}",
                region=f"region-{serial % 5}",
                tier=name,
            )
            nodes.append(node)
            serial += 1
    if not nodes:
        raise ParameterError("tiered fleet needs at least one node")
    return nodes


# -- access tracking ---------------------------------------------------------------


@dataclass
class _AccessRecord:
    score: float = 0.0
    score_epoch: int = 0
    last_access_epoch: int | None = None


class AccessTracker:
    """Exponentially decayed per-object access counters on the epoch clock.

    ``record`` adds *weight* to the object's score after decaying it to the
    current epoch (``score <- score * decay^elapsed + weight``), so one
    number captures both frequency and recency.  The tracker carries its
    own epoch cursor (:meth:`advance_to`), advanced by the migrator, so
    feeders (placement, the service layer) never need epoch plumbing.
    """

    def __init__(self, decay: float = 0.5):
        if not 0 < decay < 1:
            raise ParameterError("decay must be in (0, 1)")
        self.decay = decay
        self.epoch = 0
        self._records: dict[str, _AccessRecord] = {}
        self._suspended = 0

    def advance_to(self, epoch: int) -> None:
        if epoch < self.epoch:
            raise ParameterError("the epoch clock cannot run backwards")
        self.epoch = epoch

    @contextmanager
    def suspended(self):
        """Ignore records inside the block: maintenance reads (renewal,
        repair, migration) are not user demand and must not keep an object
        artificially hot."""
        self._suspended += 1
        try:
            yield self
        finally:
            self._suspended -= 1

    def record(self, object_id: str, weight: float = 1.0) -> None:
        """One access of *object_id* at the current epoch."""
        if weight < 0:
            raise ParameterError("access weight must be >= 0")
        if self._suspended:
            return
        record = self._records.setdefault(object_id, _AccessRecord())
        elapsed = self.epoch - record.score_epoch
        record.score = record.score * self.decay**elapsed + weight
        record.score_epoch = self.epoch
        record.last_access_epoch = self.epoch
        _metrics.inc("tier_accesses_recorded_total")

    def score(self, object_id: str) -> float:
        """The decayed score as of the current epoch (0.0 if never seen)."""
        record = self._records.get(object_id)
        if record is None:
            return 0.0
        return record.score * self.decay ** (self.epoch - record.score_epoch)

    def idle_epochs(self, object_id: str) -> int:
        """Epochs since the last recorded access (current epoch counts as
        0); objects never accessed are idle since the epoch origin."""
        record = self._records.get(object_id)
        if record is None or record.last_access_epoch is None:
            return self.epoch
        return self.epoch - record.last_access_epoch

    def forget(self, object_id: str) -> None:
        self._records.pop(object_id, None)


# -- migration ---------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationPolicy:
    """The migration knobs an archive operator turns.

    ``data_shares`` is how many shares (normally the decode quorum) ride
    the object's own tier; the remainder -- the parity -- always rides the
    coldest tier, which is what lets a hot object's reads stop at fast
    media while its durability margin sits on cheap media.
    """

    #: Shares kept in the object's own tier (None = the scheme threshold,
    #: resolved when the migrator is bound to an archive).
    data_shares: int | None = None
    #: Decayed score at or above which an object moves one tier hotter.
    promote_score: float = 2.0
    #: Epochs without any access after which an object moves one tier colder.
    demote_idle_epochs: int = 2
    #: Per-epoch decay of access scores.
    decay: float = 0.5
    #: Cap on migrations per tick (None = move everything that qualifies).
    max_migrations_per_tick: int | None = None

    def __post_init__(self) -> None:
        if self.data_shares is not None and self.data_shares < 1:
            raise ParameterError("data_shares must be >= 1")
        if self.promote_score <= 0:
            raise ParameterError("promote_score must be > 0")
        if self.demote_idle_epochs < 1:
            raise ParameterError("demote_idle_epochs must be >= 1")
        if not 0 < self.decay < 1:
            raise ParameterError("decay must be in (0, 1)")
        if self.max_migrations_per_tick is not None and self.max_migrations_per_tick < 1:
            raise ParameterError("max_migrations_per_tick must be >= 1")


@dataclass
class MigrationReport:
    """What one migration tick moved and what the moves cost."""

    epoch: int
    promoted: list[str] = field(default_factory=list)
    demoted: list[str] = field(default_factory=list)
    bytes_moved: int = 0
    #: Priced duration of the moves: read at the source tier's rate plus
    #: write at the target tier's (the Section 3.2 arithmetic per object).
    priced_seconds: float = 0.0
    skipped: int = 0

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "promoted": sorted(self.promoted),
            "demoted": sorted(self.demoted),
            "bytes_moved": self.bytes_moved,
            "priced_seconds": self.priced_seconds,
            "skipped": self.skipped,
        }


class TierMigrator:
    """Assigns objects to tiers and migrates them as demand shifts.

    Bind to an archive with :meth:`bind` (or, for the facade,
    ``SecureArchive.enable_tiering``); the archive's placement policy then
    consults :meth:`layout_for` on every store/renewal/repair, and
    :meth:`run_epoch` -- fired from ``advance_epoch`` or scheduled on an
    :class:`repro.core.scheduler.EpochScheduler` via :meth:`attach` --
    walks every object and moves it one tier at a time.  Migration reuses
    the archive's proactive-renewal pipeline (retrieve, re-split, replace),
    so every move is also a re-encryption under fresh randomness.
    """

    def __init__(
        self,
        registry: TierRegistry | None = None,
        policy: MigrationPolicy | None = None,
        tracker: AccessTracker | None = None,
    ):
        self.registry = registry or default_tier_registry()
        self.policy = policy or MigrationPolicy()
        self.tracker = tracker or AccessTracker(decay=self.policy.decay)
        #: object id -> tier name (the authoritative assignment map).
        self.assignments: dict[str, str] = {}
        self.archive = None
        self._data_shares = self.policy.data_shares
        self._last_run_epoch: int | None = None
        self.log: list[str] = []

    # -- wiring ------------------------------------------------------------------

    def bind(self, archive, data_shares: int | None = None) -> None:
        """Attach to *archive*; migration needs its renewal pipeline."""
        if not hasattr(archive, "_renew_object"):
            raise ParameterError(
                "tier migration rides the proactive-renewal pipeline; "
                f"{type(archive).__name__} has no _renew_object"
            )
        self.archive = archive
        if self._data_shares is None:
            self._data_shares = data_shares
        if self._data_shares is None or self._data_shares < 1:
            raise ParameterError("bind needs data_shares >= 1 (the decode quorum)")

    def attach(self, scheduler, every: int = 1, name: str = "tier-migration") -> None:
        """Schedule :meth:`run_epoch` on the obsolescence/renewal scheduler
        so migration rides the same background cadence as re-signing and
        share renewal.  Idempotent per epoch: if the archive's own
        ``advance_epoch`` already ran this epoch's pass, the scheduled
        firing is a no-op."""
        scheduler.every(every, name, self.run_epoch)

    # -- placement integration ----------------------------------------------------

    def tier_of(self, object_id: str) -> str:
        """The object's current tier (hottest for objects not yet seen)."""
        return self.assignments.get(object_id, self.registry.hottest.name)

    def layout_for(self, object_id: str, share_indices: Sequence[int]) -> dict[int, str]:
        """Per-share tier targets: the first ``data_shares`` indices (the
        decode quorum) ride the object's tier, the rest ride the coldest
        tier.  First sight of an object assigns it the hottest tier and
        counts the ingest as an access (new data is hot data)."""
        if self._data_shares is None:
            raise ParameterError("migrator is not bound (call bind/enable_tiering)")
        tier = self.assignments.get(object_id)
        if tier is None:
            tier = self.registry.hottest.name
            self.assignments[object_id] = tier
            self.tracker.record(object_id)
        ordered = sorted(share_indices)
        quorum = set(ordered[: self._data_shares])
        coldest = self.registry.coldest.name
        return {
            index: (tier if index in quorum else coldest) for index in ordered
        }

    def forget(self, object_id: str) -> None:
        """Drop all tiering state for a deleted object."""
        self.assignments.pop(object_id, None)
        self.tracker.forget(object_id)

    # -- the migration tick --------------------------------------------------------

    def run_epoch(self, epoch: int) -> MigrationReport:
        """One background pass: decay scores, then promote/demote.

        Objects move at most one tier per tick (a demotion ladder, not a
        cliff), deterministically in sorted object-id order.  Safe to fire
        twice in one epoch (scheduler + facade): the second call no-ops.
        """
        report = MigrationReport(epoch=epoch)
        if self._last_run_epoch is not None and epoch <= self._last_run_epoch:
            return report
        self._last_run_epoch = epoch
        if self.archive is None:
            raise ParameterError("migrator is not bound (call bind/enable_tiering)")
        self.tracker.advance_to(epoch)
        cap = self.policy.max_migrations_per_tick
        moved = 0
        for object_id in sorted(self.assignments):
            try:
                self.archive.receipt(object_id)
            except ObjectNotFoundError:
                self.forget(object_id)
                continue
            current = self.assignments[object_id]
            rank = self.registry.rank(current)
            target: TierSpec | None = None
            if self.tracker.score(object_id) >= self.policy.promote_score and rank > 0:
                target = self.registry.warmer(current)
            elif (
                self.tracker.idle_epochs(object_id) >= self.policy.demote_idle_epochs
                and rank < len(self.registry) - 1
            ):
                target = self.registry.colder(current)
            if target is None or target.name == current:
                continue
            if cap is not None and moved >= cap:
                report.skipped += 1
                continue
            self._migrate(object_id, current, target, report)
            moved += 1
        self.record_occupancy()
        self.log.append(
            f"epoch {epoch}: promoted {len(report.promoted)}, "
            f"demoted {len(report.demoted)}, skipped {report.skipped}"
        )
        return report

    def _migrate(
        self, object_id: str, source: str, target: TierSpec, report: MigrationReport
    ) -> None:
        """Move one object by re-splitting it through the renewal pipeline
        under the new assignment; priced read-at-source, write-at-target."""
        source_spec = self.registry.get(source)
        self.assignments[object_id] = target.name
        with self.tracker.suspended():
            moved_bytes = self.archive._renew_object(object_id)
        promoted = self.registry.rank(target.name) < self.registry.rank(source)
        direction = "promote" if promoted else "demote"
        (report.promoted if promoted else report.demoted).append(object_id)
        report.bytes_moved += moved_bytes
        cost_s = source_spec.read_seconds(moved_bytes) + target.write_seconds(moved_bytes)
        report.priced_seconds += cost_s
        _metrics.inc("tier_migrations_total", direction=direction)
        _metrics.inc("tier_migration_bytes_total", moved_bytes)
        _metrics.observe("tier_migration_seconds", cost_s)

    # -- observability -------------------------------------------------------------

    def occupancy(self) -> dict[str, dict[str, int]]:
        """Per-tier occupancy: assigned objects and bytes on tier media."""
        objects = {name: 0 for name in self.registry.names}
        for tier in self.assignments.values():
            objects[tier] = objects.get(tier, 0) + 1
        stored = {name: 0 for name in self.registry.names}
        if self.archive is not None:
            for node in self.archive.placement_policy.nodes.values():
                tier = getattr(node, "tier", None) or self.registry.hottest.name
                if tier in stored:
                    stored[tier] += node.bytes_stored
        return {
            name: {"objects": objects[name], "bytes_stored": stored[name]}
            for name in self.registry.names
        }

    def record_occupancy(self) -> None:
        """Publish per-tier occupancy gauges through ``repro.obs``."""
        for name, stats in self.occupancy().items():
            _metrics.set_gauge("tier_objects", stats["objects"], tier=name)
            _metrics.set_gauge("tier_bytes_stored", stats["bytes_stored"], tier=name)
