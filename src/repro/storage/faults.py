"""Deterministic fault injection, retry/backoff, and degraded-read reports.

The paper's archives must survive decades of partial failure -- transient
provider outages, slow media, flaky first reads after power-up, and silent
bit-rot.  This module makes those failures *injectable and reproducible*:

- :class:`FaultRule` / :class:`FaultPlan` -- a seeded schedule of per-node /
  per-operation faults.  A plan wraps a fleet of
  :class:`repro.storage.node.StorageNode` instances in :class:`FaultyNode`
  proxies, so every caller (placement, systems, the facade) hits faults
  without being modified.
- :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  rng-seeded jitter, plus a per-operation deadline priced via
  :func:`repro.storage.archive_model.op_deadline_s`.  All waits are
  *simulated* (recorded, never slept), so chaos suites stay fast and two
  runs of the same seed are byte-identical.
- :class:`DegradedReadReport` -- what one degraded fetch saw: shares
  tried/failed/repaired, retries, and total simulated wait.

Determinism contract: every random decision (rule probability gates, bit
flips, backoff jitter) is drawn from an explicitly injected
:class:`~repro.crypto.drbg.DeterministicRandom`; no wall clocks, no global
entropy.  Same seed, same plan, same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import DeterministicRandom
from repro.errors import (
    DeadlineExceededError,
    NodeUnavailableError,
    ParameterError,
)
from repro.obs import metrics as _metrics
from repro.storage.archive_model import op_deadline_s
from repro.storage.node import StorageNode

__all__ = [
    "FAULT_KINDS",
    "RETRYABLE_ERRORS",
    "DegradedReadReport",
    "FaultPlan",
    "FaultRule",
    "FaultyNode",
    "InjectedFault",
    "RetryPolicy",
    "default_retry_policy",
    "flaky_first_reads",
    "injected_latency",
    "outage_rules_from_windows",
    "silent_bitrot",
    "transient_outage",
]

#: The fault kinds a plan can inject.
FAULT_KINDS = ("outage", "flaky", "latency", "bitrot")

#: Errors the retry policy treats as transient.  Everything else -- missing
#: objects, integrity failures, programming errors -- propagates on the
#: first raise (pinned by the exception-narrowing regression tests).
RETRYABLE_ERRORS = (NodeUnavailableError, DeadlineExceededError)


# -- fault rules -----------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault behavior, scoped by node / op / object.

    Windows are expressed in *op ordinals*: the 0-based count of operations
    of that kind the plan has seen on that node.  Retries advance the
    ordinal, which is how an ``outage`` window models a transient failure
    the retry layer can wait out.
    """

    kind: str
    #: Node this rule applies to (``None`` = every node).
    node_id: str | None = None
    #: Operation kind: ``"get"``, ``"put"``, or ``"any"``.
    op: str = "get"
    #: Substring filter on the object id (``None`` = every object).
    object_substr: str | None = None
    #: Outage window start (inclusive), in per-node op ordinals.
    first_op: int = 0
    #: Outage window end (inclusive); ``None`` = never ends.
    last_op: int | None = None
    #: For ``flaky``: how many initial reads of each object fail.
    fail_reads: int = 1
    #: For ``latency``: simulated seconds added to the operation.
    latency_s: float = 0.0
    #: Seeded-rng gate: the rule fires with this probability.
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ParameterError(f"unknown fault kind {self.kind!r}")
        if self.op not in ("get", "put", "any"):
            raise ParameterError(f"unknown op {self.op!r}")
        if not 0 < self.probability <= 1:
            raise ParameterError("probability must be in (0, 1]")
        if self.kind == "latency" and self.latency_s <= 0:
            raise ParameterError("latency rules need latency_s > 0")
        if self.kind == "flaky" and self.fail_reads < 1:
            raise ParameterError("flaky rules need fail_reads >= 1")
        if self.first_op < 0 or (self.last_op is not None and self.last_op < self.first_op):
            raise ParameterError("need 0 <= first_op <= last_op")

    def matches(self, node_id: str, op: str, object_id: str) -> bool:
        if self.node_id is not None and self.node_id != node_id:
            return False
        if self.op != "any" and self.op != op:
            return False
        if self.object_substr is not None and self.object_substr not in object_id:
            return False
        return True


def transient_outage(
    node_id: str | None, first_op: int = 0, attempts: int = 1, op: str = "get"
) -> FaultRule:
    """An outage window covering *attempts* consecutive ops from *first_op*."""
    if attempts < 1:
        raise ParameterError("attempts must be >= 1")
    return FaultRule(
        kind="outage",
        node_id=node_id,
        op=op,
        first_op=first_op,
        last_op=first_op + attempts - 1,
    )


def flaky_first_reads(node_id: str | None, fail_reads: int = 1) -> FaultRule:
    """The first *fail_reads* reads of every object on the node fail."""
    return FaultRule(kind="flaky", node_id=node_id, fail_reads=fail_reads)


def silent_bitrot(node_id: str | None, object_substr: str | None = None) -> FaultRule:
    """Rot the stored bytes (digest untouched) the first time they are read."""
    return FaultRule(kind="bitrot", node_id=node_id, object_substr=object_substr)


def injected_latency(
    node_id: str | None, latency_s: float, probability: float = 1.0
) -> FaultRule:
    """Add *latency_s* of simulated wait to matching operations."""
    return FaultRule(
        kind="latency", node_id=node_id, latency_s=latency_s, probability=probability
    )


def outage_rules_from_windows(
    windows: list[tuple[str, int, int]], ops_per_epoch: int = 1
) -> list[FaultRule]:
    """Convert epoch downtime windows (from
    :meth:`repro.storage.failures.FailureSchedule.downtime_windows`) into
    op-ordinal outage rules, assuming *ops_per_epoch* gets per node/epoch."""
    if ops_per_epoch < 1:
        raise ParameterError("ops_per_epoch must be >= 1")
    return [
        FaultRule(
            kind="outage",
            node_id=node_id,
            first_op=start * ops_per_epoch,
            last_op=end * ops_per_epoch - 1,
        )
        for node_id, start, end in windows
        if end > start
    ]


# -- the plan and the node proxy ---------------------------------------------------


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan actually fired (the plan's audit log)."""

    ordinal: int
    kind: str
    node_id: str
    op: str
    object_id: str


class FaultPlan:
    """A seeded, deterministic schedule of faults over a node fleet.

    Wrap nodes with :meth:`wrap_fleet` *before* handing them to a system;
    afterwards every ``get``/``put`` consults the plan first.  All plan
    state (op ordinals, per-object read counts, the rng) lives here, so the
    same seed and rule list replays the same faults.
    """

    def __init__(
        self,
        rules: list[FaultRule] | tuple[FaultRule, ...] = (),
        seed: bytes | int | str = 0,
        deadline_s: float | None = None,
    ):
        self.rules: list[FaultRule] = list(rules)
        self.rng = DeterministicRandom(seed)
        #: Deadline injected latency is judged against (priced for a 1 MiB
        #: op on the Pergamum disk profile by default).
        self.deadline_s = deadline_s if deadline_s is not None else op_deadline_s(1 << 20)
        self.injected: list[InjectedFault] = []
        self._op_ordinal: dict[tuple[str, str], int] = {}
        self._read_attempts: dict[tuple[str, str], int] = {}
        self._rotted: set[tuple[int, str, str]] = set()
        self._pending_wait_s = 0.0

    def add_rule(self, rule: FaultRule) -> None:
        self.rules.append(rule)

    def wrap(self, node: StorageNode) -> "FaultyNode":
        return FaultyNode(node, self)

    def wrap_fleet(self, nodes: list[StorageNode]) -> list["FaultyNode"]:
        return [self.wrap(node) for node in nodes]

    def drain_wait_s(self) -> float:
        """Injected latency accumulated since the last drain (the fetch
        layer folds this into the degraded-read report)."""
        wait, self._pending_wait_s = self._pending_wait_s, 0.0
        return wait

    # -- the injection point ------------------------------------------------------

    def before_op(self, node: StorageNode, op: str, object_id: str) -> None:
        """Consult the plan before *node* executes *op* on *object_id*.

        May raise a transient error (outage, flaky, deadline-busting
        latency) or rot the stored bytes so the node's own digest gate
        raises on the delegated read.
        """
        ordinal = self._op_ordinal.get((node.node_id, op), 0)
        self._op_ordinal[(node.node_id, op)] = ordinal + 1
        attempt = 0
        if op == "get":
            attempt = self._read_attempts.get((node.node_id, object_id), 0) + 1
            self._read_attempts[(node.node_id, object_id)] = attempt
        for rule_index, rule in enumerate(self.rules):
            if not rule.matches(node.node_id, op, object_id):
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            if rule.kind == "outage":
                in_window = rule.first_op <= ordinal and (
                    rule.last_op is None or ordinal <= rule.last_op
                )
                if in_window:
                    self._record(rule.kind, node, op, object_id, ordinal)
                    raise NodeUnavailableError(
                        f"injected outage: node {node.node_id} unavailable "
                        f"({op} {object_id}, op #{ordinal})"
                    )
            elif rule.kind == "flaky":
                if op == "get" and attempt <= rule.fail_reads:
                    self._record(rule.kind, node, op, object_id, ordinal)
                    raise NodeUnavailableError(
                        f"injected flaky read #{attempt} of {object_id} "
                        f"on node {node.node_id}"
                    )
            elif rule.kind == "latency":
                self._pending_wait_s += rule.latency_s
                self._record(rule.kind, node, op, object_id, ordinal)
                if rule.latency_s > self.deadline_s:
                    raise DeadlineExceededError(
                        f"injected latency {rule.latency_s:.3f}s exceeds "
                        f"deadline {self.deadline_s:.3f}s "
                        f"({op} {object_id} on node {node.node_id})"
                    )
            elif rule.kind == "bitrot":
                key = (rule_index, node.node_id, object_id)
                if op == "get" and key not in self._rotted and node.contains(object_id):
                    self._rotted.add(key)
                    clean = node.raw_bytes(object_id)
                    node.corrupt_object(object_id, self._rot(clean))
                    self._record(rule.kind, node, op, object_id, ordinal)

    def _rot(self, data: bytes) -> bytes:
        """Flip one seeded bit -- the minimal silent corruption."""
        if not data:
            return b"\x01"
        position = self.rng.randrange(len(data))
        bit = 1 << self.rng.randrange(8)
        rotted = bytearray(data)
        rotted[position] ^= bit
        return bytes(rotted)

    def _record(
        self, kind: str, node: StorageNode, op: str, object_id: str, ordinal: int
    ) -> None:
        self.injected.append(
            InjectedFault(
                ordinal=ordinal,
                kind=kind,
                node_id=node.node_id,
                op=op,
                object_id=object_id,
            )
        )
        _metrics.inc("faults_injected_total", kind=kind)


class FaultyNode:
    """A :class:`StorageNode` proxy that consults a :class:`FaultPlan`.

    Only ``get`` and ``put`` are interposed; everything else (stats,
    adversary hooks, audits via ``raw_bytes``) delegates untouched, so the
    wrapper is invisible to callers that never trip a rule.
    """

    def __init__(self, inner: StorageNode, plan: FaultPlan):
        self._inner = inner
        self.fault_plan = plan

    def get(self, object_id: str) -> bytes:
        self.fault_plan.before_op(self._inner, "get", object_id)
        return self._inner.get(object_id)

    def put(self, object_id: str, data: bytes, epoch: int = 0) -> None:
        self.fault_plan.before_op(self._inner, "put", object_id)
        self._inner.put(object_id, data, epoch=epoch)

    @property
    def online(self) -> bool:
        return self._inner.online

    def set_online(self, online: bool) -> None:
        self._inner.set_online(online)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"FaultyNode({self._inner!r}, rules={len(self.fault_plan.rules)})"


# -- retry policy ------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and seeded jitter.

    All delays are *simulated*: they are handed to the ``on_retry`` callback
    (which records them in the metrics registry and the degraded-read
    report) but never slept.  ``deadline_s`` caps the total simulated
    backoff one logical operation may accumulate; once the next delay would
    exceed it, the last transient error propagates.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    #: Jitter fraction: each delay is scaled by ``1 + jitter * rng.random()``.
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.multiplier < 1 or self.jitter < 0:
            raise ParameterError(
                "need base_delay_s >= 0, multiplier >= 1, jitter >= 0"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ParameterError("deadline_s must be > 0")

    def backoff_delay(self, attempt: int, rng: DeterministicRandom) -> float:
        """Simulated delay before retry *attempt* (1-based), with jitter
        drawn from the injected rng so runs replay exactly."""
        if attempt < 1:
            raise ParameterError("attempt is 1-based")
        delay = self.base_delay_s * self.multiplier ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def call(self, fn, rng: DeterministicRandom, on_retry=None):
        """Run *fn*, retrying only :data:`RETRYABLE_ERRORS`.

        Any other exception type -- missing object, integrity failure, a
        programming error -- propagates on the first raise.  On each retry,
        ``on_retry(attempt, delay_s, exc)`` is invoked with the attempt
        number just failed, the simulated backoff delay, and the transient
        exception that triggered the retry (so degraded-read reports can
        name the error being waited out).
        """
        waited = 0.0
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except RETRYABLE_ERRORS as exc:
                if attempt == self.max_attempts:
                    raise
                delay = self.backoff_delay(attempt, rng)
                if self.deadline_s is not None and waited + delay > self.deadline_s:
                    raise
                waited += delay
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
        # The loop always returns or re-raises; this guard is unreachable and
        # not a failure mode callers can catch, so it stays a builtin.
        raise AssertionError("unreachable")  # pragma: no cover  # noqa: ARCH011


def default_retry_policy() -> RetryPolicy:
    """The fleet default: 3 attempts, 10 ms base backoff, and a total
    backoff deadline priced for a 1 MiB object on the Pergamum profile."""
    return RetryPolicy(deadline_s=op_deadline_s(1 << 20))


# -- degraded-read reporting -------------------------------------------------------


@dataclass
class DegradedReadReport:
    """What one degraded fetch saw, share by share.

    Deterministic by construction (no timestamps, dict keys sorted in
    :meth:`as_dict`), so two runs of the same seeded scenario compare
    byte-identical.
    """

    object_id: str
    shares_total: int
    shares_tried: int = 0
    shares_ok: int = 0
    #: share index -> loss reason ("offline" | "missing" | "corrupted" | "timeout")
    shares_failed: dict[int, str] = field(default_factory=dict)
    shares_repaired: int = 0
    retries: int = 0
    #: Transient error class name -> count of retries it caused
    #: (e.g. ``{"NodeUnavailableError": 2}``); names, not instances, so the
    #: report stays deterministic and JSON-able.
    retry_errors: dict[str, int] = field(default_factory=dict)
    simulated_wait_s: float = 0.0
    #: True when the fetch stopped at the decode quorum before trying
    #: every placed share.
    stopped_early: bool = False

    @property
    def degraded(self) -> bool:
        return bool(self.shares_failed)

    @property
    def repair_candidates(self) -> list[int]:
        """Share indices that failed their integrity check: the shares
        repair-on-read rewrites once the object decodes."""
        return sorted(i for i, r in self.shares_failed.items() if r == "corrupted")

    def as_dict(self) -> dict:
        return {
            "object_id": self.object_id,
            "shares_total": self.shares_total,
            "shares_tried": self.shares_tried,
            "shares_ok": self.shares_ok,
            "shares_failed": {str(i): self.shares_failed[i] for i in sorted(self.shares_failed)},
            "shares_repaired": self.shares_repaired,
            "retries": self.retries,
            "retry_errors": {k: self.retry_errors[k] for k in sorted(self.retry_errors)},
            "simulated_wait_s": self.simulated_wait_s,
            "stopped_early": self.stopped_early,
        }
