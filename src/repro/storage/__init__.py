"""Storage substrate: nodes, media models, placement, and the I/O models.

- ``node`` -- in-memory storage nodes with fault injection (the
  "geographically dispersed storage nodes" the paper assumes throughout).
- ``media`` -- parametric models of archival media (tape, HDD, glass, DNA,
  film...) for the Section 4 media trade-off analysis.
- ``placement`` -- dispersal of shares across administratively independent
  providers (the POTSHARDS deployment assumption).
- ``archive_model`` -- the analytic re-encryption feasibility model behind
  the paper's Section 3.2 numbers (Oak Ridge, ECMWF, CERN, Pergamum).
- ``simulator`` -- a discrete-event cross-check of the analytic model with
  ingest/read contention.
- ``failures`` -- failure schedules and availability accounting.
- ``faults`` -- deterministic fault injection (seeded FaultPlans over
  wrapped nodes), retry/backoff policies, and degraded-read reports.
- ``tiering`` -- hot/warm/cold tier registry bound to the media catalog,
  decayed access tracking, and the policy-driven tier migrator.
"""

from repro.storage.node import StorageNode, StoredObject
from repro.storage.media import MediaSpec, MEDIA_CATALOG
from repro.storage.placement import PlacementPolicy, Placement
from repro.storage.archive_model import (
    ArchiveProfile,
    PAPER_ARCHIVES,
    op_deadline_s,
    reencryption_estimate,
)
from repro.storage.faults import (
    DegradedReadReport,
    FaultPlan,
    FaultRule,
    FaultyNode,
    RetryPolicy,
    default_retry_policy,
)
from repro.storage.tiering import (
    AccessTracker,
    MigrationPolicy,
    MigrationReport,
    TierMigrator,
    TierRegistry,
    TierSpec,
    default_tier_registry,
    make_tiered_fleet,
)

__all__ = [
    "StorageNode",
    "StoredObject",
    "MediaSpec",
    "MEDIA_CATALOG",
    "PlacementPolicy",
    "Placement",
    "ArchiveProfile",
    "PAPER_ARCHIVES",
    "op_deadline_s",
    "reencryption_estimate",
    "DegradedReadReport",
    "FaultPlan",
    "FaultRule",
    "FaultyNode",
    "RetryPolicy",
    "default_retry_policy",
    "AccessTracker",
    "MigrationPolicy",
    "MigrationReport",
    "TierMigrator",
    "TierRegistry",
    "TierSpec",
    "default_tier_registry",
    "make_tiered_fleet",
]
