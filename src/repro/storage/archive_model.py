"""The re-encryption feasibility model (paper Section 3.2).

The paper's argument that naive re-encryption cannot respond to a broken
cipher rests on a back-of-envelope that this module makes precise and
repeatable:

    "A conservative approximation for the time to just read all the data in
    an archive can be obtained by dividing the size of the archive by its
    aggregate read throughput."

with three multiplicative corrections the paper then applies:

- writing the re-encrypted data back "will at least double the
  re-encryption duration" (write-verify factor, default 2x);
- reserving capacity for ongoing ingest/reads "can easily double" it again
  (reserve factor, default 2x);
- real target archives are "in the many exabyte and even zettabyte sizes",
  so the final step extrapolates.

The four archives the paper cites are provided as :data:`PAPER_ARCHIVES`
with the paper's own capacity/throughput numbers.  Note on units: the
paper's months figures are consistent with decimal (TB = 10^12) capacity
over quoted throughputs for ECMWF/CERN/Pergamum and sit between the decimal
and binary interpretations for Oak Ridge; :func:`reencryption_estimate`
exposes the convention so EXPERIMENTS.md can report both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

#: Days per month used when converting; the astronomical mean.
DAYS_PER_MONTH = 30.44

TB = 1.0
PB = 1_000.0  # TB
EB = 1_000_000.0  # TB
ZB = 1_000_000_000.0  # TB


@dataclass(frozen=True)
class ArchiveProfile:
    """A real archive's published capacity and aggregate read throughput."""

    name: str
    capacity_tb: float
    read_throughput_tb_per_day: float
    medium: str = "tape"
    source: str = ""

    def __post_init__(self) -> None:
        if self.capacity_tb <= 0 or self.read_throughput_tb_per_day <= 0:
            raise ParameterError("capacity and throughput must be positive")

    @property
    def read_time_days(self) -> float:
        """Days to stream the whole archive once at full aggregate rate."""
        return self.capacity_tb / self.read_throughput_tb_per_day

    @property
    def read_time_months(self) -> float:
        return self.read_time_days / DAYS_PER_MONTH


#: The systems quoted in Section 3.2, with the paper's numbers.
PAPER_ARCHIVES: tuple[ArchiveProfile, ...] = (
    ArchiveProfile(
        name="Oak Ridge HPSS",
        capacity_tb=80 * PB,
        read_throughput_tb_per_day=400.0,
        medium="tape",
        source="Sim & Vazhkudai, MASCOTS '19 (paper: 6.75 months)",
    ),
    ArchiveProfile(
        name="ECMWF MARS",
        capacity_tb=37.9 * PB,
        read_throughput_tb_per_day=120.0,
        medium="tape",
        source="Grawinkel et al., FAST '15 (paper: 10.35 months)",
    ),
    ArchiveProfile(
        name="CERN EOS",
        capacity_tb=230 * PB,
        read_throughput_tb_per_day=909.0,
        medium="tape",
        source="Purandare et al., CHEOPS '22 (paper: 8.3 months)",
    ),
    ArchiveProfile(
        name="Pergamum (hypothetical)",
        capacity_tb=10 * PB,
        # 5 GB/s aggregate = 5 * 86400 GB/day = 432 TB/day.
        read_throughput_tb_per_day=432.0,
        medium="disk",
        source="Storer et al., FAST '08 (paper: 0.76 months)",
    ),
)


def op_deadline_s(
    payload_bytes: int,
    profile: ArchiveProfile | None = None,
    slack: float = 4.0,
    floor_s: float = 0.05,
) -> float:
    """Price a per-operation deadline from an archive's latency figures.

    The same arithmetic the Section 3.2 model uses for whole-archive reads,
    applied to one object: time to move *payload_bytes* at the archive's
    aggregate read rate, times a *slack* factor for queueing and seeks, with
    a *floor_s* floor so tiny objects still get a realistic media-latency
    budget.  The default profile is Pergamum (disk), the paper's
    low-latency reference point; tape profiles price much looser deadlines.
    """
    if payload_bytes < 0:
        raise ParameterError("payload_bytes must be >= 0")
    if slack < 1 or floor_s <= 0:
        raise ParameterError("need slack >= 1 and floor_s > 0")
    profile = profile or PAPER_ARCHIVES[3]  # Pergamum: the disk profile
    read_s = (payload_bytes / 1e12) / profile.read_throughput_tb_per_day * 86_400.0
    return max(floor_s, slack * read_s)


#: Paper convention ("writing ... tends to be slower than reading"): a
#: store moves the bytes at half the archive's aggregate read rate.
WRITE_FACTOR = 2.0


def op_service_time_s(
    payload_bytes: int,
    op: str = "retrieve",
    profile: ArchiveProfile | None = None,
    overhead_s: float = 1e-3,
    write_factor: float = WRITE_FACTOR,
) -> float:
    """Price the service time of one request on an archive's data path.

    The per-request analogue of the Section 3.2 whole-archive arithmetic:
    byte-transfer time at the profile's aggregate read rate (writes slowed
    by *write_factor*, the paper's read-vs-write asymmetry), plus a fixed
    *overhead_s* for request handling, metadata, and media latency.  The
    default profile is Pergamum (disk), the paper's low-latency reference.
    """
    if payload_bytes < 0:
        raise ParameterError("payload_bytes must be >= 0")
    if op not in ("store", "retrieve"):
        raise ParameterError(f"unknown op {op!r}")
    if overhead_s < 0 or write_factor < 1:
        raise ParameterError("need overhead_s >= 0 and write_factor >= 1")
    profile = profile or PAPER_ARCHIVES[3]  # Pergamum: the disk profile
    transfer_s = (payload_bytes / 1e12) / profile.read_throughput_tb_per_day * 86_400.0
    if op == "store":
        transfer_s *= write_factor
    return overhead_s + transfer_s


def capacity_rps(
    profile: ArchiveProfile,
    mean_payload_bytes: float,
    store_fraction: float = 0.0,
    write_factor: float = WRITE_FACTOR,
) -> float:
    """Sustainable requests/second of *profile* for a given request mix.

    This is how Section 3.2 sizes real archives (capacity over aggregate
    throughput), inverted into a request rate: aggregate bytes/second
    divided by the mean bytes one request moves (stores weighted by the
    read-vs-write asymmetry).  The service benchmark reports its measured
    saturation throughput against this model for each paper archive.
    """
    if mean_payload_bytes <= 0:
        raise ParameterError("mean_payload_bytes must be > 0")
    if not 0 <= store_fraction <= 1:
        raise ParameterError("store_fraction must be in [0, 1]")
    bytes_per_s = profile.read_throughput_tb_per_day * 1e12 / 86_400.0
    weighted_bytes = mean_payload_bytes * (
        1.0 + store_fraction * (write_factor - 1.0)
    )
    return bytes_per_s / weighted_bytes


@dataclass(frozen=True)
class ReencryptionEstimate:
    """Breakdown of a whole-archive re-encryption duration."""

    archive: ArchiveProfile
    read_months: float
    write_factor: float
    reserve_factor: float

    @property
    def total_months(self) -> float:
        return self.read_months * self.write_factor * self.reserve_factor

    @property
    def total_years(self) -> float:
        return self.total_months / 12.0

    @property
    def vulnerable_data_fraction_halfway(self) -> float:
        """At the halfway point of the campaign, half the archive still sits
        under the broken cipher -- the 'during which time all not-yet-
        encrypted data remains vulnerable' observation, quantified."""
        return 0.5


def reencryption_estimate(
    archive: ArchiveProfile,
    write_factor: float = 2.0,
    reserve_factor: float = 2.0,
) -> ReencryptionEstimate:
    """Estimate a full re-encryption campaign for *archive*.

    ``write_factor`` models read+process+write-back with write verification
    ("writing ... tends to be slower than reading ... this factor will at
    least double the re-encryption duration").  ``reserve_factor`` models
    capacity withheld for ongoing ingest and reads ("this additional factor
    can easily double the re-encryption duration").
    """
    if write_factor < 1 or reserve_factor < 1:
        raise ParameterError("factors must be >= 1")
    return ReencryptionEstimate(
        archive=archive,
        read_months=archive.read_time_months,
        write_factor=write_factor,
        reserve_factor=reserve_factor,
    )


def scaled_archive(base: ArchiveProfile, capacity_tb: float, name: str | None = None) -> ArchiveProfile:
    """An archive with *capacity_tb* but *base*'s throughput density.

    Throughput is scaled proportionally to capacity (more data, more
    drives), which is the *generous* assumption: if throughput does not
    scale, the durations below are underestimates.
    """
    scale = capacity_tb / base.capacity_tb
    return ArchiveProfile(
        name=name or f"{base.name} @ {capacity_tb:g} TB",
        capacity_tb=capacity_tb,
        read_throughput_tb_per_day=base.read_throughput_tb_per_day * scale,
        medium=base.medium,
        source=f"scaled from {base.name}",
    )


def exabyte_extrapolation(
    base: ArchiveProfile,
    capacity_tb: float,
    throughput_scaling: float = 1.0,
    write_factor: float = 2.0,
    reserve_factor: float = 2.0,
) -> ReencryptionEstimate:
    """The paper's closing step: at exabyte/zettabyte scale with sub-linear
    throughput scaling, "the practical time for re-encrypting an entire
    archive could turn into many years".

    ``throughput_scaling`` in (0, 1]: 1.0 means throughput grows with
    capacity (duration unchanged); 0.5 means throughput grows with the
    square root of the capacity ratio, and so on.
    """
    if not 0 < throughput_scaling <= 1:
        raise ParameterError("throughput_scaling must be in (0, 1]")
    ratio = capacity_tb / base.capacity_tb
    throughput = base.read_throughput_tb_per_day * ratio**throughput_scaling
    profile = ArchiveProfile(
        name=f"{base.name} extrapolated to {capacity_tb:g} TB",
        capacity_tb=capacity_tb,
        read_throughput_tb_per_day=throughput,
        medium=base.medium,
        source=f"extrapolated from {base.name}",
    )
    return reencryption_estimate(profile, write_factor, reserve_factor)
