"""Failure schedules and availability accounting.

Availability is the best-understood leg of the CIA triad for storage (the
paper defers to the reliability literature), but the archival systems still
need failures to react to: erasure-coded and secret-shared objects should
survive up to their slack, and the tests/benchmarks need deterministic ways
to knock nodes out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError
from repro.storage.node import StorageNode


@dataclass
class FailureEvent:
    epoch: int
    node_id: str
    kind: str  # "offline" | "repair" | "data-loss"


class FailureSchedule:
    """Epoch-stepped random failure/repair process over a node fleet."""

    def __init__(
        self,
        nodes: list[StorageNode],
        failure_probability: float,
        repair_epochs: int = 1,
        rng: DeterministicRandom | None = None,
    ):
        if not 0 <= failure_probability <= 1:
            raise ParameterError("failure probability must be in [0, 1]")
        if repair_epochs < 1:
            raise ParameterError("repair_epochs must be >= 1")
        self.nodes = nodes
        self.failure_probability = failure_probability
        self.repair_epochs = repair_epochs
        self.rng = rng or DeterministicRandom(b"failure-schedule")
        self.epoch = 0
        self.events: list[FailureEvent] = []
        self._down_until: dict[str, int] = {}

    def step(self) -> list[FailureEvent]:
        """Advance one epoch; returns the events that occurred."""
        self.epoch += 1
        new_events: list[FailureEvent] = []
        for node in self.nodes:
            down_until = self._down_until.get(node.node_id)
            if down_until is not None:
                if self.epoch >= down_until:
                    node.set_online(True)
                    del self._down_until[node.node_id]
                    new_events.append(
                        FailureEvent(self.epoch, node.node_id, "repair")
                    )
                continue
            if self.rng.random() < self.failure_probability:
                node.set_online(False)
                self._down_until[node.node_id] = self.epoch + self.repair_epochs
                new_events.append(FailureEvent(self.epoch, node.node_id, "offline"))
        self.events.extend(new_events)
        return new_events

    def online_count(self) -> int:
        return sum(1 for node in self.nodes if node.online)

    def downtime_windows(self) -> list[tuple[str, int, int]]:
        """Per-node downtime as ``(node_id, start_epoch, end_epoch)`` pairs
        (end exclusive; still-open outages end at the current epoch + 1).

        This is the bridge to deterministic replay: feed the windows to
        :func:`repro.storage.faults.outage_rules_from_windows` to re-run the
        same availability pattern as injected faults under a fresh fleet.
        """
        windows: list[tuple[str, int, int]] = []
        open_since: dict[str, int] = {}
        for event in self.events:
            if event.kind == "offline":
                open_since[event.node_id] = event.epoch
            elif event.kind == "repair" and event.node_id in open_since:
                windows.append(
                    (event.node_id, open_since.pop(event.node_id), event.epoch)
                )
        for node_id, start in sorted(open_since.items()):
            windows.append((node_id, start, self.epoch + 1))
        windows.sort()
        return windows


def survivable_loss(total_shares: int, threshold: int) -> int:
    """How many shares an encoding can lose and still reconstruct."""
    if not 1 <= threshold <= total_shares:
        raise ParameterError("need 1 <= threshold <= total_shares")
    return total_shares - threshold


@dataclass
class AvailabilityReport:
    """Fraction of objects reconstructible under a failure pattern."""

    objects_total: int
    objects_available: int

    @property
    def availability(self) -> float:
        if self.objects_total == 0:
            return 1.0
        return self.objects_available / self.objects_total
