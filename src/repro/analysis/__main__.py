"""Regenerate every paper artifact from the command line.

    python -m repro.analysis                # all three artifacts
    python -m repro.analysis figure1        # just one
    python -m repro.analysis --metrics      # append the observability report
    python -m repro.analysis --faults       # replay the chaos scenario too
    python -m repro.analysis --faults=99    # ... with a specific seed

Prints the measured Figure 1, Table 1, and Section 3.2 re-encryption table,
each followed by its shape verdict.  With ``--metrics``, a final section
dumps the metrics registry accumulated while generating the artifacts --
every encode byte, share fetch, and span timing the run produced.  With
``--faults``, a seeded fault-injection scenario (transient outages plus
silent bit-rot on an AONT-RS fleet) runs after the artifacts and reports
the retries, degraded-read shape, and repair-on-read behavior.
"""

from __future__ import annotations

import sys

from repro.analysis.faults_scenario import DEFAULT_SEED, run_chaos_scenario
from repro.analysis.figure1 import generate_figure1
from repro.analysis.reencryption_table import generate_reencryption_table
from repro.analysis.report import render_metrics_report
from repro.analysis.table1 import generate_table1
from repro.obs import get_registry


def _figure1() -> bool:
    result = generate_figure1()
    print(result.render())
    print(f"\n=> Figure 1 shape {'HOLDS' if result.shape_holds else 'BROKEN'}\n")
    return result.shape_holds


def _table1() -> bool:
    result = generate_table1()
    print(result.render())
    verdict = "8/8 rows match" if result.all_match else f"mismatches: {result.matches}"
    print(f"\n=> Table 1: {verdict}\n")
    return result.all_match


def _reencryption() -> bool:
    result = generate_reencryption_table()
    print(result.render())
    print(f"\n=> Section 3.2 shape {'HOLDS' if result.shape_holds else 'BROKEN'}\n")
    return result.shape_holds


_ARTIFACTS = {
    "figure1": _figure1,
    "table1": _table1,
    "reencryption": _reencryption,
}


def _parse_faults_flag(argv: list[str]) -> tuple[list[str], int | None]:
    """Strip ``--faults`` / ``--faults=SEED``; returns (rest, seed or None)."""
    rest: list[str] = []
    seed: int | None = None
    for arg in argv:
        if arg == "--faults":
            seed = DEFAULT_SEED
        elif arg.startswith("--faults="):
            seed = int(arg.split("=", 1)[1])
        else:
            rest.append(arg)
    return rest, seed


def main(argv: list[str]) -> int:
    show_metrics = "--metrics" in argv
    argv = [arg for arg in argv if arg != "--metrics"]
    argv, faults_seed = _parse_faults_flag(argv)
    requested = argv or list(_ARTIFACTS)
    unknown = [name for name in requested if name not in _ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"choose from {', '.join(_ARTIFACTS)}")
        return 2
    ok = True
    for name in requested:
        print(f"{'=' * 72}\n{name}\n{'=' * 72}")
        ok = _ARTIFACTS[name]() and ok
    if faults_seed is not None:
        print(f"{'=' * 72}\nfaults\n{'=' * 72}")
        scenario = run_chaos_scenario(seed=faults_seed)
        print(scenario.render())
        verdict = "SURVIVED" if scenario.healthy else "DEGRADED BEYOND REPAIR"
        print(f"\n=> Chaos scenario {verdict}\n")
        ok = scenario.healthy and ok
    if show_metrics:
        print(f"{'=' * 72}\nmetrics\n{'=' * 72}")
        print(render_metrics_report(get_registry().snapshot()))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
