"""Regenerate every paper artifact from the command line.

    python -m repro.analysis                # all three artifacts
    python -m repro.analysis figure1        # just one
    python -m repro.analysis --metrics      # append the observability report
    python -m repro.analysis --faults       # replay the chaos scenario too
    python -m repro.analysis --faults=99    # ... with a specific seed
    python -m repro.analysis --serve        # tiny-service admission demo
    python -m repro.analysis --load         # zipfian service load replay
    python -m repro.analysis --load=99      # ... with a specific seed
    python -m repro.analysis --tiers        # hot/warm/cold migration replay
    python -m repro.analysis --tiers=99     # ... with a specific seed

Prints the measured Figure 1, Table 1, and Section 3.2 re-encryption table,
each followed by its shape verdict.  With ``--metrics``, a final section
dumps the metrics registry accumulated while generating the artifacts --
every encode byte, share fetch, and span timing the run produced.  With
``--faults``, a seeded fault-injection scenario (transient outages plus
silent bit-rot on an AONT-RS fleet) runs after the artifacts and reports
the retries, degraded-read shape, and repair-on-read behavior.  With
``--serve`` / ``--load``, the archive-service scenarios run: a burst demo
that makes admission control, quotas, and backpressure fire visibly, and a
seeded zipfian load replay reporting latency percentiles and throughput.
With ``--tiers``, the tiered-storage life-cycle replays: objects cool down
the hot/warm/cold demotion ladder, reheat through priced cold reads, and
the migrator promotes them back -- all on simulated time under one seed.
"""

from __future__ import annotations

import sys

from repro.analysis.faults_scenario import DEFAULT_SEED, run_chaos_scenario
from repro.analysis.figure1 import generate_figure1
from repro.analysis.reencryption_table import generate_reencryption_table
from repro.analysis.report import render_metrics_report
from repro.analysis.service_scenario import run_load_scenario, run_service_demo
from repro.analysis.table1 import generate_table1
from repro.analysis.tiers_scenario import run_tiers_scenario
from repro.obs import get_registry


def _figure1() -> bool:
    result = generate_figure1()
    print(result.render())
    print(f"\n=> Figure 1 shape {'HOLDS' if result.shape_holds else 'BROKEN'}\n")
    return result.shape_holds


def _table1() -> bool:
    result = generate_table1()
    print(result.render())
    verdict = "8/8 rows match" if result.all_match else f"mismatches: {result.matches}"
    print(f"\n=> Table 1: {verdict}\n")
    return result.all_match


def _reencryption() -> bool:
    result = generate_reencryption_table()
    print(result.render())
    print(f"\n=> Section 3.2 shape {'HOLDS' if result.shape_holds else 'BROKEN'}\n")
    return result.shape_holds


_ARTIFACTS = {
    "figure1": _figure1,
    "table1": _table1,
    "reencryption": _reencryption,
}


def _parse_seed_flag(argv: list[str], flag: str) -> tuple[list[str], int | None]:
    """Strip ``--FLAG`` / ``--FLAG=SEED``; returns (rest, seed or None)."""
    rest: list[str] = []
    seed: int | None = None
    for arg in argv:
        if arg == f"--{flag}":
            seed = DEFAULT_SEED
        elif arg.startswith(f"--{flag}="):
            seed = int(arg.split("=", 1)[1])
        else:
            rest.append(arg)
    return rest, seed


def main(argv: list[str]) -> int:
    show_metrics = "--metrics" in argv
    argv = [arg for arg in argv if arg != "--metrics"]
    argv, faults_seed = _parse_seed_flag(argv, "faults")
    argv, serve_seed = _parse_seed_flag(argv, "serve")
    argv, load_seed = _parse_seed_flag(argv, "load")
    argv, tiers_seed = _parse_seed_flag(argv, "tiers")
    requested = argv or list(_ARTIFACTS)
    unknown = [name for name in requested if name not in _ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"choose from {', '.join(_ARTIFACTS)}")
        return 2
    ok = True
    for name in requested:
        print(f"{'=' * 72}\n{name}\n{'=' * 72}")
        ok = _ARTIFACTS[name]() and ok
    if faults_seed is not None:
        print(f"{'=' * 72}\nfaults\n{'=' * 72}")
        scenario = run_chaos_scenario(seed=faults_seed)
        print(scenario.render())
        verdict = "SURVIVED" if scenario.healthy else "DEGRADED BEYOND REPAIR"
        print(f"\n=> Chaos scenario {verdict}\n")
        ok = scenario.healthy and ok
    if serve_seed is not None:
        print(f"{'=' * 72}\nserve\n{'=' * 72}")
        demo = run_service_demo(seed=serve_seed)
        print(demo.render())
        verdict = "ALL GUARDS FIRED" if demo.healthy else "GUARDS DID NOT FIRE"
        print(f"\n=> Service demo {verdict}\n")
        ok = demo.healthy and ok
    if load_seed is not None:
        print(f"{'=' * 72}\nload\n{'=' * 72}")
        result = run_load_scenario(seed=load_seed)
        print(result.render())
        verdict = "SERVED" if result.healthy else "NO TRAFFIC SERVED"
        print(f"\n=> Service load {verdict}\n")
        ok = result.healthy and ok
    if tiers_seed is not None:
        print(f"{'=' * 72}\ntiers\n{'=' * 72}")
        tiers = run_tiers_scenario(seed=tiers_seed)
        print(tiers.render())
        verdict = (
            "FULL LIFE-CYCLE" if tiers.healthy else "MIGRATION DID NOT FIRE"
        )
        print(f"\n=> Tiered storage {verdict}\n")
        ok = tiers.healthy and ok
    if show_metrics:
        print(f"{'=' * 72}\nmetrics\n{'=' * 72}")
        print(render_metrics_report(get_registry().snapshot()))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
