"""Table 1 generator: the systems summary, measured end to end.

Builds every surveyed system on a fresh node fleet, stores a corpus through
it, and derives the paper's three columns (confidentiality in transit, at
rest, storage cost) with :class:`repro.core.classifier.SecurityClassifier`.
The result carries both the measured rows and the paper's expected rows so
the benchmark can print the comparison and the tests can assert agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.core.classifier import SecurityClassifier, SystemClassification
from repro.crypto.drbg import DeterministicRandom
from repro.security import StorageCostBand
from repro.storage.node import make_node_fleet
from repro.systems import (
    AontRsArchive,
    ArchiveSafeLT,
    CloudProviderArchive,
    HasDpss,
    Lincos,
    Pasis,
    PasisPolicy,
    Potshards,
    VsrArchive,
)
from repro.systems.pasis import PasisParameters

#: The paper's Table 1, row for row (transit, at rest, cost band).
PAPER_TABLE1: dict[str, tuple[str, str, str]] = {
    "ArchiveSafeLT": ("Computational", "Computational", "Low"),
    "AONT-RS": ("Computational", "Computational", "Low"),
    "HasDPSS": ("Computational", "ITS", "High"),
    "LINCOS": ("ITS", "ITS", "High"),
    "PASIS": ("Computational", "ITS (sometimes)", "Low-High"),
    "POTSHARDS": ("Computational", "ITS", "High"),
    "VSR Archive": ("Computational", "ITS", "High"),
    "AWS/Azure/Google Cloud": ("Computational", "Computational", "Low"),
}


@dataclass
class Table1Result:
    rows: list[SystemClassification]
    matches: dict[str, bool]

    @property
    def all_match(self) -> bool:
        return all(self.matches.values())

    def render(self) -> str:
        body = []
        for row in self.rows:
            expected = PAPER_TABLE1[row.system]
            measured = row.as_row()
            ok = self.matches[row.system]
            body.append(
                (
                    row.system,
                    measured[1],
                    measured[2],
                    f"{row.storage_overhead:.2f}x -> {measured[3]}",
                    f"{expected[0]}/{expected[1]}/{expected[2]}",
                    "ok" if ok else "MISMATCH",
                )
            )
        return render_table(
            headers=[
                "System",
                "Transit (measured)",
                "At rest (measured)",
                "Storage (measured)",
                "Paper says",
                "Match",
            ],
            rows=body,
            title="Table 1 (measured vs paper)",
        )


def generate_table1(object_size: int = 4096, objects: int = 3, seed: int = 7) -> Table1Result:
    classifier = SecurityClassifier()
    rows: list[SystemClassification] = []

    def corpus(rng: DeterministicRandom) -> list[bytes]:
        return [rng.bytes(object_size) for _ in range(objects)]

    def run(system, note: str = "", band_override=None) -> None:
        rng = DeterministicRandom(seed + len(rows))
        for i, blob in enumerate(corpus(rng)):
            system.store(f"obj-{i}", blob)
        rows.append(
            classifier.classify_system(
                system, storage_band_override=band_override, at_rest_note=note
            )
        )

    run(ArchiveSafeLT(make_node_fleet(2, providers=["org"]), DeterministicRandom(seed)))
    run(AontRsArchive(make_node_fleet(6), DeterministicRandom(seed + 100)))
    run(HasDpss(make_node_fleet(8), DeterministicRandom(seed + 200)))
    run(Lincos(make_node_fleet(5), DeterministicRandom(seed + 300)))

    # PASIS stores a representative mixed workload, which is the point:
    # its at-rest column depends on the per-object policy.
    pasis = Pasis(make_node_fleet(8), DeterministicRandom(seed + 400))
    rng = DeterministicRandom(seed + 401)
    # The PASIS workload always needs one object per policy.
    blobs = [rng.bytes(object_size) for _ in range(3)]
    pasis.store("rep", blobs[0], PasisParameters(PasisPolicy.REPLICATION, n=2, threshold=1))
    pasis.store("ec", blobs[1], PasisParameters(PasisPolicy.ERASURE, n=6, threshold=4))
    pasis.store("ss", blobs[2], PasisParameters(PasisPolicy.SHAMIR, n=5, threshold=3))
    rows.append(
        SecurityClassifier().classify_system(
            pasis,
            storage_band_override=StorageCostBand.VARIABLE,
            at_rest_note="sometimes",
        )
    )

    run(Potshards(make_node_fleet(8), DeterministicRandom(seed + 500)))
    run(VsrArchive(make_node_fleet(8), DeterministicRandom(seed + 600)))
    run(
        CloudProviderArchive(
            make_node_fleet(3, providers=["aws"]), DeterministicRandom(seed + 700)
        )
    )

    matches = {row.system: _matches_paper(row) for row in rows}
    return Table1Result(rows=rows, matches=matches)


def _matches_paper(row: SystemClassification) -> bool:
    expected_transit, expected_rest, expected_cost = PAPER_TABLE1[row.system]
    transit_ok = row.transit.label == expected_transit
    # "ITS (sometimes)" matches a PASIS row annotated "sometimes"; the
    # measured notion for a mixed workload is the weaker one.
    if expected_rest == "ITS (sometimes)":
        rest_ok = row.at_rest_note == "sometimes"
    else:
        rest_ok = row.at_rest.label == expected_rest
    cost_ok = row.storage_band.value == expected_cost
    return transit_ok and rest_ok and cost_ok
