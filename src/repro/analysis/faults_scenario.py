"""The chaos replay scenario behind the analysis CLI's ``--faults`` flag.

Table-1-style runs measure the systems on a *healthy* fleet; this module
replays the flagship degraded scenario -- an n=7, k=4 AONT-RS fleet with
two transient provider outages and one silently bit-rotted share -- under a
seeded :class:`repro.storage.faults.FaultPlan` and reports what the
retry/degraded-read machinery did about it.  Every number is deterministic
in the seed, so the rendered report doubles as a reproducibility vector
(see ``tests/test_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.obs import use_registry
from repro.storage.faults import (
    DegradedReadReport,
    FaultPlan,
    silent_bitrot,
    transient_outage,
)
from repro.storage.node import make_node_fleet
from repro.storage.placement import PlacementPolicy
from repro.systems.aontrs_system import AontRsArchive

#: The default seed; ``--faults=SEED`` overrides it.
DEFAULT_SEED = 2024


@dataclass
class ChaosScenarioResult:
    """One deterministic run of the flagship fault scenario."""

    seed: int
    plaintext_ok: bool
    report: DegradedReadReport
    #: Metrics registry snapshot scoped to this scenario run.
    snapshot: dict

    @property
    def healthy(self) -> bool:
        counters = self.snapshot["counters"]
        return (
            self.plaintext_ok
            and counters.get("repairs_on_read_total", 0) >= 1
            and counters.get("fetch_retries_total", 0) >= 1
        )

    def render(self) -> str:
        counters = self.snapshot["counters"]
        fault_lines = [
            f"  {name}: {counters[name]}"
            for name in sorted(counters)
            if name.startswith(("faults_injected_total", "fetch_retries_total",
                                "repairs_on_read_total", "storage_shares_lost_total"))
        ]
        r = self.report
        return "\n".join(
            [
                f"Chaos scenario (seed={self.seed}): AONT-RS n=7 k=4, "
                "2 transient outages + 1 bit-rotted share",
                f"  plaintext recovered exactly: {self.plaintext_ok}",
                f"  shares tried/ok/repaired: {r.shares_tried}/{r.shares_ok}/"
                f"{r.shares_repaired}",
                f"  failed shares: "
                f"{ {i: r.shares_failed[i] for i in sorted(r.shares_failed)} }",
                f"  retries: {r.retries} "
                f"({ {k: r.retry_errors[k] for k in sorted(r.retry_errors)} })  "
                f"simulated wait: {r.simulated_wait_s * 1000:.2f} ms  "
                f"stopped early: {r.stopped_early}",
                "  counters:",
                *fault_lines,
            ]
        )


def run_chaos_scenario(seed: int = DEFAULT_SEED) -> ChaosScenarioResult:
    """Store under faults, retrieve degraded, repair on read -- seeded.

    The fault rules are aimed *after* the store, using the actual placement
    map (which shares landed where is itself deterministic), so the
    scenario always hits: the first-placed share rots silently, the next
    two nodes suffer a one-attempt transient outage each.
    """
    with use_registry() as registry:
        plan = FaultPlan(seed=seed)
        fleet = plan.wrap_fleet(make_node_fleet(7))
        archive = AontRsArchive(fleet, DeterministicRandom(seed), n=7, k=4)
        # Re-seed the retry jitter from the scenario seed so the backoff
        # waits (and their histogram) are part of the reproducibility vector.
        archive.placement_policy = PlacementPolicy(
            fleet, retry_seed=(seed, "chaos-backoff").__repr__()
        )
        data = DeterministicRandom((seed, "chaos-payload").__repr__()).bytes(4096)
        archive.store("doc", data)
        placed = sorted(archive.receipt("doc").placement.node_by_share.items())
        plan.add_rule(
            silent_bitrot(placed[0][1], object_substr=f"share-{placed[0][0]}")
        )
        plan.add_rule(transient_outage(placed[1][1], first_op=0, attempts=1))
        plan.add_rule(transient_outage(placed[2][1], first_op=0, attempts=1))
        retrieved, report = archive.retrieve_with_report("doc")
        snapshot = registry.snapshot()
    return ChaosScenarioResult(
        seed=seed,
        plaintext_ok=retrieved == data,
        report=report,
        snapshot=snapshot,
    )
