"""The archive-service scenarios behind the analysis CLI's ``--serve`` and
``--load`` flags.

Two entry points share the same machinery:

- :func:`run_service_demo` (``--serve``) builds a deliberately tiny service
  -- one worker, a two-slot queue, a tight tenant quota -- and offers it a
  synchronized burst, so every protection mechanism fires visibly: typed
  overload rejection, quota exhaustion, and the OK -> THROTTLE -> SHED
  backpressure ladder.

- :func:`run_load_scenario` (``--load``, ``--load=SEED``) replays a zipfian
  store/retrieve mix from concurrent closed-loop clients through a
  realistically sized service and reports the latency percentiles and
  throughput the observability layer measured.  Everything is simulated
  time under one seed, so the rendered numbers are a reproducibility
  vector like the chaos scenario's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.archive import SecureArchive
from repro.core.policy import CENTURY_SAFE
from repro.crypto.drbg import DeterministicRandom
from repro.obs import use_registry
from repro.service import (
    ArchiveService,
    Backpressure,
    Request,
    ServiceConfig,
    TenantQuota,
)
from repro.storage.node import make_node_fleet
from repro.service.load import ServiceLoadSpec, run_service_load

#: Default seed; ``--load=SEED`` overrides it.
DEFAULT_SEED = 2024

#: Default request count for the CLI load run (the benchmark uses far more).
DEFAULT_REQUESTS = 2_000


@dataclass
class ServiceDemoResult:
    """One deterministic burst against a deliberately tiny service."""

    seed: int
    outcomes: list
    report: dict

    @property
    def healthy(self) -> bool:
        seen = {o.outcome for o in self.outcomes}
        signals = {o.backpressure for o in self.outcomes}
        return (
            "ok" in seen
            and "rejected_overload" in seen
            and "rejected_quota" in seen
            and Backpressure.SHED in signals
        )

    def render(self) -> str:
        lines = [
            f"Service demo (seed={self.seed}): 1 worker, queue of 2, "
            "quota 4 tokens @ 1/s -- a 10-request burst",
        ]
        for o in self.outcomes:
            lines.append(
                f"  {o.op:8s} {o.object_id:10s} tenant={o.tenant}  "
                f"{o.outcome:17s} backpressure={o.backpressure.value:8s} "
                f"latency={o.latency_s * 1000:7.2f} ms"
            )
        r = self.report
        lines.append(
            f"  totals: completed={r['completed']} rejected={r['rejected']} "
            f"max queue depth={r['max_queue_depth']}"
        )
        return "\n".join(lines)


@dataclass
class ServiceLoadResult:
    """One deterministic zipfian load run through the service."""

    seed: int
    load: dict
    report: dict

    @property
    def healthy(self) -> bool:
        counts = self.load["counts"]
        return counts["ok_retrieve"] > 0 and counts["ok_store"] > 0

    def render(self) -> str:
        load, report = self.load, self.report
        lines = [
            f"Service load (seed={self.seed}): {load['offered']} requests, "
            f"zipfian reads over {load['population']} objects",
            f"  counts: { {k: load['counts'][k] for k in sorted(load['counts'])} }",
            f"  offered: {load['offered_rps']:8.1f} rps over "
            f"{load['offered_window_s']:.2f} s (simulated)",
            f"  served:  {report['throughput_rps']:8.1f} rps  "
            f"worker utilization {report['worker_utilization'] * 100:.1f}%  "
            f"max queue depth {report['max_queue_depth']}",
        ]
        for op in sorted(report["latency"]):
            q = report["latency"][op]
            lines.append(
                f"  {op:8s} latency (ms): p50={q['p50_s'] * 1000:7.3f}  "
                f"p99={q['p99_s'] * 1000:7.3f}  p999={q['p999_s'] * 1000:7.3f}  "
                f"max={q['max_s'] * 1000:7.3f}  (n={q['count']})"
            )
        return "\n".join(lines)


def run_service_demo(seed: int = DEFAULT_SEED) -> ServiceDemoResult:
    """Drive a burst through a tiny service so every guard rail fires."""
    with use_registry():
        archive = SecureArchive(
            CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(seed)
        )
        service = ArchiveService(
            archive,
            ServiceConfig(
                workers=1,
                queue_capacity=2,
                default_quota=TenantQuota(capacity=4, refill_per_s=1.0),
            ),
            rng=DeterministicRandom((seed, "service-demo").__repr__()),
        )
        outcomes = []
        # Two tenants; tenant-b arrives faster than its quota refills, and
        # everyone arrives faster than the single worker drains the queue.
        for i in range(10):
            tenant = "tenant-b" if i % 2 else "tenant-a"
            outcomes.append(
                service.offer(
                    Request(
                        op="store",
                        object_id=f"burst-{i:02d}",
                        tenant=tenant,
                        payload=bytes([i]) * 2048,
                        arrival_s=i * 1e-4,
                    )
                )
            )
        report = service.report()
    return ServiceDemoResult(seed=seed, outcomes=outcomes, report=report)


def run_load_scenario(
    seed: int = DEFAULT_SEED, requests: int = DEFAULT_REQUESTS
) -> ServiceLoadResult:
    """Replay the zipfian client mix through a realistically sized service."""
    with use_registry():
        archive = SecureArchive(
            CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(seed)
        )
        service = ArchiveService(
            archive,
            ServiceConfig(
                workers=4,
                queue_capacity=64,
                default_quota=TenantQuota(capacity=256, refill_per_s=120.0),
            ),
            rng=DeterministicRandom((seed, "service-load-jitter").__repr__()),
        )
        spec = ServiceLoadSpec(clients=16, requests=requests, mean_think_s=0.01)
        load = run_service_load(service, spec, seed=seed)
        report = service.report()
    return ServiceLoadResult(seed=seed, load=load, report=report)
