"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows the paper's tables report; this renderer
keeps that output aligned and diff-friendly (fixed column order, no
locale-dependent formatting).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParameterError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ParameterError("a table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ParameterError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
