"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows the paper's tables report; this renderer
keeps that output aligned and diff-friendly (fixed column order, no
locale-dependent formatting).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParameterError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ParameterError("a table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ParameterError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


# -- observability report ------------------------------------------------------


def render_metrics_report(snapshot: dict) -> str:
    """Render a :meth:`repro.obs.MetricsRegistry.snapshot` as aligned tables.

    Three sections: counters (sorted by name), gauges, and histogram
    summaries (count / mean / min / max, durations shown in milliseconds).
    Used by ``python -m repro.analysis --metrics`` and by benchmarks that
    want their registry-derived numbers in artifact output.
    """
    sections = []
    counters = snapshot.get("counters", {})
    if counters:
        sections.append(
            render_table(
                headers=["Counter", "Value"],
                rows=[(name, _fmt_count(v)) for name, v in counters.items()],
                title="Counters",
            )
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        sections.append(
            render_table(
                headers=["Gauge", "Value"],
                rows=list(gauges.items()),
                title="Gauges",
            )
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, summary in histograms.items():
            seconds = name.endswith("_seconds") or "_seconds{" in name
            scale, unit = (1e3, " ms") if seconds else (1, "")
            rows.append(
                (
                    name,
                    summary["count"],
                    f"{summary['mean'] * scale:.3f}{unit}",
                    f"{(summary['min'] or 0) * scale:.3f}{unit}",
                    f"{(summary['max'] or 0) * scale:.3f}{unit}",
                )
            )
        sections.append(
            render_table(
                headers=["Histogram", "Count", "Mean", "Min", "Max"],
                rows=rows,
                title="Histograms",
            )
        )
    if not sections:
        return "Metrics\n(no metrics recorded)"
    return "\n\n".join(sections)


def _fmt_count(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))
