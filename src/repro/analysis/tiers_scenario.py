"""The tiered-storage replay behind the analysis CLI's ``--tiers`` flag.

The Table-1 runs measure the systems on a flat fleet; this module replays
the full tier life-cycle on a hot/warm/cold topology: a batch of objects
lands hot, cools down the demotion ladder as epochs pass without demand,
and a working set is then reheated by repeated retrieves -- which are
served *from cold media at cold prices* until the migrator promotes the
objects back up.  Epochs are driven through the same
:class:`repro.core.scheduler.EpochScheduler` that paces obsolescence
checks and proactive renewal, so migration demonstrably rides the shared
background pipeline rather than a private clock.

Every number is deterministic in the seed (see ``tests/test_analysis.py``):
tier assignments, migration counts, priced waits, and the rendered report
are all pure functions of the operation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.archive import SecureArchive
from repro.core.policy import ArchivePolicy, ConfidentialityTarget
from repro.core.scheduler import EpochScheduler
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.errors import IntegrityError
from repro.obs import use_registry
from repro.storage.tiering import (
    TIER_COLD,
    TIER_HOT,
    TIER_WARM,
    MigrationPolicy,
    TierMigrator,
    make_tiered_fleet,
)

#: The default seed; ``--tiers=SEED`` overrides it.
DEFAULT_SEED = 2024

#: Objects stored in the load phase and the subset reheated afterwards.
NUM_OBJECTS = 8
REHEAT_SET = 3

#: Retrieves per reheated object per epoch; with the default decay (0.5)
#: and promote threshold (2.0), five same-epoch reads clear the bar.
REHEAT_READS = 5

_POLICY = ArchivePolicy(
    target=ConfidentialityTarget.LONG_TERM, n=5, t=3, renew_every_epochs=None
)


class _ScenarioArchive(SecureArchive):
    # 2**5 one-time signature keys: plenty for this replay's stores and
    # migration renewals, and keeps the CLI snappy (Merkle keygen is
    # linear in 2**SIGNER_HEIGHT).
    SIGNER_HEIGHT = 5


@dataclass
class TiersScenarioResult:
    """One deterministic run of the tier life-cycle scenario."""

    seed: int
    round_trips_ok: bool
    promotions: int
    demotions: int
    migration_bytes: int
    #: Reads served per tier while reheating (cold > 0 proves the degraded
    #: path was exercised and priced).
    reads_by_tier: dict[str, int]
    #: Simulated wait of the first reheat read -- priced on cold media.
    cold_read_wait_s: float
    #: Final per-tier occupancy from the migrator.
    occupancy: dict[str, dict[str, int]]
    #: The migrator's per-epoch log lines.
    migration_log: list[str]
    #: Metrics registry snapshot scoped to this scenario run.
    snapshot: dict

    @property
    def healthy(self) -> bool:
        return (
            self.round_trips_ok
            and self.promotions >= 1
            and self.demotions >= 1
            and self.reads_by_tier.get(TIER_COLD, 0) >= 1
        )

    def render(self) -> str:
        reads = "  ".join(
            f"{tier}={self.reads_by_tier.get(tier, 0)}"
            for tier in (TIER_HOT, TIER_WARM, TIER_COLD)
        )
        occupancy = "  ".join(
            f"{tier}={stats['objects']}" for tier, stats in self.occupancy.items()
        )
        return "\n".join(
            [
                f"Tiered storage scenario (seed={self.seed}): "
                f"{NUM_OBJECTS} objects cool down the hot/warm/cold ladder, "
                f"{REHEAT_SET} reheat on demand",
                f"  round trips exact: {self.round_trips_ok}",
                f"  migrations: {self.promotions} promoted, "
                f"{self.demotions} demoted, {self.migration_bytes} bytes re-split",
                f"  shares read by tier: {reads}",
                f"  first reheat read waited "
                f"{self.cold_read_wait_s * 1000:.2f} ms on cold media",
                f"  final occupancy (objects): {occupancy}",
                "  migration log:",
                *[f"    {line}" for line in self.migration_log],
            ]
        )


def _scrub_host_timings(snapshot: dict) -> dict:
    """Drop the ``span_*`` wall/CPU histograms from a registry snapshot.

    Span timings measure the *host*, not the simulation (the archive
    facade times its own calls), so they legitimately vary run to run.
    Everything else in the snapshot -- every counter, gauge, and simulated
    histogram -- is part of the reproducibility vector and must be
    byte-identical for a given seed.
    """
    return {
        kind: {
            name: value
            for name, value in values.items()
            if not name.startswith("span_")
        }
        for kind, values in snapshot.items()
    }


def _tier_read_counts(snapshot: dict) -> dict[str, int]:
    counts: dict[str, int] = {}
    for name, value in snapshot["counters"].items():
        if name.startswith("tier_reads_total{tier="):
            counts[name.split("=", 1)[1].rstrip("}")] = value
    return counts


def run_tiers_scenario(seed: int = DEFAULT_SEED) -> TiersScenarioResult:
    """Store hot, cool to cold, reheat through cold reads -- seeded.

    Three phases on an n=5/t=3 fleet spread over three tiers:

    1. *Load*: eight objects stored; the decode quorum lands hot, parity
       lands cold.
    2. *Cool-down*: four epochs with zero demand; everything walks the
       demotion ladder (hot -> warm -> cold, one step per tick).
    3. *Reheat*: a three-object working set is read five times per epoch
       for two epochs.  The first reads come off cold media (priced by
       the archive I/O model), the migrator sees the demand and promotes
       the set back toward hot.
    """
    rng = DeterministicRandom((seed, "tiers-payload").__repr__())
    with use_registry() as registry:
        archive = _ScenarioArchive(
            _POLICY, make_tiered_fleet({TIER_HOT: 4, TIER_WARM: 4, TIER_COLD: 6}),
            DeterministicRandom(seed),
        )
        migrator = archive.enable_tiering(
            TierMigrator(policy=MigrationPolicy(demote_idle_epochs=2))
        )
        maintenance = []
        scheduler = EpochScheduler(BreakTimeline())
        scheduler.every(
            1, "archive-epoch", lambda epoch: maintenance.append(archive.advance_epoch())
        )

        payloads = {}
        for k in range(NUM_OBJECTS):
            object_id = f"doc-{k}"
            payloads[object_id] = rng.bytes(512 + rng.randrange(1024))
            archive.store(object_id, payloads[object_id])

        scheduler.advance(4)  # cool-down: no demand, everything demotes

        cold_read_wait_s = 0.0
        for _ in range(2):  # reheat: demand pulls the working set back up
            for k in range(REHEAT_SET):
                for _ in range(REHEAT_READS):
                    data, read = archive.retrieve_with_report(f"doc-{k}")
                    if data != payloads[f"doc-{k}"]:
                        raise IntegrityError(f"wrong bytes for doc-{k}")
                    if cold_read_wait_s == 0.0:
                        cold_read_wait_s = read.simulated_wait_s
            scheduler.advance(1)

        round_trips_ok = all(
            archive.retrieve(object_id) == payload
            for object_id, payload in sorted(payloads.items())
        )
        snapshot = _scrub_host_timings(registry.snapshot())
    return TiersScenarioResult(
        seed=seed,
        round_trips_ok=round_trips_ok,
        promotions=sum(m.objects_promoted for m in maintenance),
        demotions=sum(m.objects_demoted for m in maintenance),
        migration_bytes=sum(m.migration_bytes for m in maintenance),
        reads_by_tier=_tier_read_counts(snapshot),
        cold_read_wait_s=cold_read_wait_s,
        occupancy=migrator.occupancy(),
        migration_log=list(migrator.log),
        snapshot=snapshot,
    )
