"""Figure 1 generator: measured storage cost vs classified security level.

Regenerates the paper's qualitative quadrant graph from the implemented
encodings.  :func:`generate_figure1` returns the points plus the paper's
qualitative assertions evaluated against the measurements, so both the
benchmark and the tests share one source of truth about "does our Figure 1
have the paper's shape?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.core.tradeoff import EncodingPoint, TradeoffAnalyzer
from repro.security import SecurityLevel


@dataclass
class Figure1Result:
    points: list[EncodingPoint]
    assertions: dict[str, bool]

    @property
    def shape_holds(self) -> bool:
        return all(self.assertions.values())

    def render(self) -> str:
        table = render_table(
            headers=["Encoding", "Security level", "Overhead (x)", "Note"],
            rows=[
                (p.label, p.security_level.name, p.storage_overhead, p.note)
                for p in sorted(self.points, key=lambda p: p.coordinates)
            ],
            title="Figure 1 (measured): storage cost vs security level",
        )
        quadrant = TradeoffAnalyzer.render_quadrant(self.points)
        checks = "\n".join(
            f"  [{'ok' if ok else 'FAIL'}] {name}" for name, ok in self.assertions.items()
        )
        return f"{table}\n\n{quadrant}\n\nPaper-shape assertions:\n{checks}"


def generate_figure1(
    n: int = 5, t: int = 3, object_size: int = 1 << 16
) -> Figure1Result:
    analyzer = TradeoffAnalyzer(n=n, t=t)
    points = analyzer.analyze(object_size=object_size)
    by_name = {p.name: p for p in points}

    assertions = {
        # Left column of Figure 1: replication and erasure coding give no
        # confidentiality; erasure coding is the cheaper of the two.
        "replication and erasure coding provide no confidentiality": (
            by_name["replication"].security_level is SecurityLevel.NONE
            and by_name["erasure"].security_level is SecurityLevel.NONE
        ),
        "erasure coding is cheaper than replication": (
            by_name["erasure"].storage_overhead
            < by_name["replication"].storage_overhead
        ),
        # Bottom: traditional encryption is cheap but only computational.
        "traditional encryption is low-cost": (
            by_name["traditional-encryption"].storage_overhead < 1.5
        ),
        "traditional encryption is computational": (
            by_name["traditional-encryption"].security_level
            is SecurityLevel.COMPUTATIONAL
        ),
        # Right column: the sharing family is information-theoretic.
        "secret sharing is information-theoretic": (
            by_name["shamir"].security_level is SecurityLevel.ITS_PERFECT
        ),
        # Orderings within the ITS family.
        "packed sharing is cheaper than Shamir": (
            by_name["packed"].storage_overhead < by_name["shamir"].storage_overhead
        ),
        "LRSS costs at least as much as Shamir": (
            by_name["lrss"].storage_overhead >= by_name["shamir"].storage_overhead
        ),
        # Shamir's cost matches replication (the Beimel bound).
        "Shamir costs ~ replication": (
            abs(
                by_name["shamir"].storage_overhead
                - by_name["replication"].storage_overhead
            )
            < 0.2
        ),
        # The odd duck: entropic encryption is cheap and conditionally ITS.
        "entropic encryption is low-cost conditional ITS": (
            by_name["entropic"].storage_overhead < 1.5
            and by_name["entropic"].security_level is SecurityLevel.ITS_CONDITIONAL
        ),
        # The smiley-face corner stays empty: nothing unconditional is cheap.
        "no unconditional ITS encoding is low-cost": not any(
            p.security_level is SecurityLevel.ITS_PERFECT and p.storage_overhead < 2.5
            for p in points
        ),
    }
    return Figure1Result(points=points, assertions=assertions)
