"""SVG rendering of the measured Figure 1 (no plotting dependencies).

The paper's Figure 1 is a drawing; this module regenerates it as a real
scatter plot from the measured :class:`repro.core.tradeoff.EncodingPoint`
list -- security level on the x-axis (ordinal), storage overhead on the
y-axis (log scale), quadrant shading, and the smiley-face corner the paper
wants systems to reach.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from repro.core.tradeoff import EncodingPoint
from repro.errors import ParameterError
from repro.security import SecurityLevel

_WIDTH = 860
_HEIGHT = 560
_MARGIN_LEFT = 90
_MARGIN_RIGHT = 40
_MARGIN_TOP = 70
_MARGIN_BOTTOM = 80

_PLOT_W = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
_PLOT_H = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

#: x positions per security rank (0..5), evenly spread.
_MAX_RANK = SecurityLevel.ITS_PERFECT.rank


def _x(rank: int) -> float:
    return _MARGIN_LEFT + _PLOT_W * rank / _MAX_RANK


def _y(overhead: float, max_overhead: float) -> float:
    # Log scale from 1x to max; 1x sits at the bottom axis.
    span = math.log10(max(max_overhead, 1.01))
    fraction = math.log10(max(overhead, 1.0)) / span if span else 0.0
    return _MARGIN_TOP + _PLOT_H * (1 - fraction)


def render_figure1_svg(points: list[EncodingPoint]) -> str:
    """Render the measured points as a self-contained SVG document."""
    if not points:
        raise ParameterError("no points to plot")
    max_overhead = max(p.storage_overhead for p in points) * 1.3
    mid_x = _MARGIN_LEFT + _PLOT_W * (SecurityLevel.ITS_CONDITIONAL.rank - 0.5) / _MAX_RANK
    mid_y = _y(2.5, max_overhead)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        '<text x="430" y="32" text-anchor="middle" font-size="18" font-weight="bold">'
        "Figure 1 (measured): storage cost vs. security level</text>",
        # Quadrant shading: the desirable corner (low cost, high security).
        f'<rect x="{mid_x}" y="{mid_y}" width="{_MARGIN_LEFT + _PLOT_W - mid_x}" '
        f'height="{_MARGIN_TOP + _PLOT_H - mid_y}" fill="#e8f7e8"/>',
        # Axes.
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + _PLOT_H}" '
        f'x2="{_MARGIN_LEFT + _PLOT_W}" y2="{_MARGIN_TOP + _PLOT_H}" stroke="black"/>',
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{_MARGIN_TOP + _PLOT_H}" stroke="black"/>',
        f'<text x="{_MARGIN_LEFT + _PLOT_W / 2}" y="{_HEIGHT - 18}" '
        'text-anchor="middle" font-size="14">Security level &#8594;</text>',
        f'<text x="24" y="{_MARGIN_TOP + _PLOT_H / 2}" font-size="14" '
        f'transform="rotate(-90 24 {_MARGIN_TOP + _PLOT_H / 2})" '
        'text-anchor="middle">Storage cost (x plaintext, log) &#8594;</text>',
        # Quadrant divider lines.
        f'<line x1="{mid_x}" y1="{_MARGIN_TOP}" x2="{mid_x}" '
        f'y2="{_MARGIN_TOP + _PLOT_H}" stroke="#999" stroke-dasharray="6,4"/>',
        f'<line x1="{_MARGIN_LEFT}" y1="{mid_y}" x2="{_MARGIN_LEFT + _PLOT_W}" '
        f'y2="{mid_y}" stroke="#999" stroke-dasharray="6,4"/>',
        # The smiley face in the empty desirable corner.
        _smiley(_MARGIN_LEFT + _PLOT_W - 60, _MARGIN_TOP + _PLOT_H - 55),
    ]

    # x-axis tick labels per security level.
    for level in SecurityLevel:
        parts.append(
            f'<text x="{_x(level.rank)}" y="{_MARGIN_TOP + _PLOT_H + 20}" '
            f'text-anchor="middle" font-size="10">{escape(level.name)}</text>'
        )
    # y-axis reference ticks.
    for tick in (1, 2, 5, 10):
        if tick <= max_overhead:
            y = _y(tick, max_overhead)
            parts.append(
                f'<line x1="{_MARGIN_LEFT - 5}" y1="{y}" x2="{_MARGIN_LEFT}" '
                f'y2="{y}" stroke="black"/>'
                f'<text x="{_MARGIN_LEFT - 10}" y="{y + 4}" text-anchor="end" '
                f'font-size="11">{tick}x</text>'
            )

    # Points, with collision-avoiding label stacking per (x, rounded-y).
    seen: dict[tuple[int, int], int] = {}
    for point in sorted(points, key=lambda p: p.coordinates):
        x = _x(point.security_level.rank)
        y = _y(point.storage_overhead, max_overhead)
        slot = seen.setdefault((point.security_level.rank, int(y // 24)), 0)
        seen[(point.security_level.rank, int(y // 24))] += 1
        label_y = y - 10 - slot * 14
        color = "#2c7fb8" if point.security_level >= SecurityLevel.ITS_CONDITIONAL else "#d95f0e"
        parts.append(f'<circle cx="{x}" cy="{y}" r="6" fill="{color}"/>')
        parts.append(
            f'<text x="{x}" y="{label_y}" text-anchor="middle" font-size="11">'
            f"{escape(point.label)} ({point.storage_overhead:.1f}x)</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def _smiley(cx: float, cy: float) -> str:
    return (
        f'<g stroke="#2a8f2a" fill="none" stroke-width="2">'
        f'<circle cx="{cx}" cy="{cy}" r="18"/>'
        f'<circle cx="{cx - 6}" cy="{cy - 5}" r="2" fill="#2a8f2a"/>'
        f'<circle cx="{cx + 6}" cy="{cy - 5}" r="2" fill="#2a8f2a"/>'
        f'<path d="M {cx - 8} {cy + 5} Q {cx} {cy + 13} {cx + 8} {cy + 5}"/>'
        "</g>"
    )
