"""Empirical statistical indistinguishability (paper Definition 2.1).

Definition 2.1 calls an encryption epsilon-statistically indistinguishable
if no function of the ciphertext separates two chosen messages by more than
epsilon.  For the library's encodings we can *estimate* the distinguishing
advantage of a concrete, reasonably strong distinguisher family -- per-byte
value histograms over many fresh encodings -- and check that information-
theoretic schemes sit at statistical noise while leaky encodings (erasure
coding's systematic shards) are separated immediately.

This is an estimator, not a proof: a low measured advantage against this
family never *proves* secrecy (a stronger distinguisher might exist), but a
HIGH measured advantage is a sound demonstration of leakage, and the noise
floor is reported so the two cases are distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.crypto.drbg import DeterministicRandom

#: An adversary-view extractor: scheme-specific "what fewer-than-threshold
#: compromised nodes see" for one split of the given message.
ViewSampler = Callable[[bytes, DeterministicRandom], bytes]


@dataclass(frozen=True)
class SecrecyEstimate:
    """Estimated distinguishing advantage for one encoding."""

    name: str
    advantage: float
    noise_floor: float
    trials: int

    @property
    def indistinguishable(self) -> bool:
        """Advantage within 3x the same-message noise floor."""
        return self.advantage <= 3 * self.noise_floor + 1e-9


def _byte_histogram(samples: list[bytes]) -> np.ndarray:
    counts = np.zeros(256, dtype=np.float64)
    for sample in samples:
        counts += np.bincount(
            np.frombuffer(sample, dtype=np.uint8), minlength=256
        )
    total = counts.sum()
    return counts / total if total else counts


def _total_variation(p: np.ndarray, q: np.ndarray) -> float:
    return 0.5 * float(np.abs(p - q).sum())


def estimate_secrecy(
    name: str,
    sampler: ViewSampler,
    message_zero: bytes,
    message_one: bytes,
    trials: int = 50,
    seed: int = 0,
) -> SecrecyEstimate:
    """Estimate the histogram distinguisher's advantage for *sampler*.

    The advantage is the total-variation distance between the adversary-view
    byte distributions under the two messages; the noise floor is the same
    statistic computed between two independent runs of the SAME message,
    which calibrates finite-sample fluctuation.
    """
    views = {0: [], 1: [], "calibration": []}
    for trial in range(trials):
        views[0].append(sampler(message_zero, DeterministicRandom((seed, 0, trial).__repr__())))
        views[1].append(sampler(message_one, DeterministicRandom((seed, 1, trial).__repr__())))
        views["calibration"].append(
            sampler(message_zero, DeterministicRandom((seed, 2, trial).__repr__()))
        )
    advantage = _total_variation(_byte_histogram(views[0]), _byte_histogram(views[1]))
    noise = _total_variation(
        _byte_histogram(views[0]), _byte_histogram(views["calibration"])
    )
    return SecrecyEstimate(
        name=name, advantage=advantage, noise_floor=noise, trials=trials
    )


def standard_samplers() -> dict[str, ViewSampler]:
    """Sub-threshold adversary views for the Figure 1 encodings."""
    from repro.crypto.aes import AesCtrCipher
    from repro.crypto.otp import otp_xor
    from repro.gmath.reedsolomon import ReedSolomonCode
    from repro.secretsharing.leakage import LeakageResilientSharing
    from repro.secretsharing.packed import PackedSecretSharing
    from repro.secretsharing.shamir import ShamirSecretSharing

    def shamir_view(message: bytes, rng: DeterministicRandom) -> bytes:
        split = ShamirSecretSharing(5, 3).split(message, rng)
        return split.shares[0].payload + split.shares[1].payload  # t-1 shares

    def packed_view(message: bytes, rng: DeterministicRandom) -> bytes:
        split = PackedSecretSharing(n=7, t=2, k=3).split(message, rng)
        return split.shares[4].payload  # t-1 = 1 share

    def lrss_view(message: bytes, rng: DeterministicRandom) -> bytes:
        split = LeakageResilientSharing(5, 3).split(message, rng)
        return split.shares[0].payload + split.shares[1].payload

    def otp_view(message: bytes, rng: DeterministicRandom) -> bytes:
        return otp_xor(rng.bytes(len(message)), message)

    def aes_view(message: bytes, rng: DeterministicRandom) -> bytes:
        cipher = AesCtrCipher()
        return cipher.encrypt(rng.bytes(32), rng.bytes(12), message)

    def erasure_view(message: bytes, rng: DeterministicRandom) -> bytes:
        del rng  # erasure coding uses no randomness -- that IS the leak
        return ReedSolomonCode(5, 3).encode(message)[0].data  # systematic shard

    return {
        "one-time-pad": otp_view,
        "shamir": shamir_view,
        "packed": packed_view,
        "lrss": lrss_view,
        "aes-256-ctr": aes_view,
        "erasure": erasure_view,
    }
