"""Availability analysis: the CIA triad's third leg, quantified.

The paper defers availability to the storage-reliability literature but
Figure 1's encodings differ sharply in it: replication tolerates n-1
losses, erasure/Shamir tolerate n-t, additive tolerates none, and packed
sharing pays for its storage discount with a smaller loss budget
(n - t - k).  This module computes both the exact combinatorial object
availability under independent node failures and a Monte Carlo cross-check
over the real node/placement substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError


@dataclass(frozen=True)
class EncodingAvailability:
    name: str
    total_shares: int
    required_shares: int

    @property
    def loss_tolerance(self) -> int:
        return self.total_shares - self.required_shares

    def availability(self, node_failure_probability: float) -> float:
        """P[object readable] with i.i.d. node failures: at least
        ``required`` of ``total`` shares survive (binomial tail)."""
        if not 0 <= node_failure_probability <= 1:
            raise ParameterError("failure probability must be in [0, 1]")
        p_up = 1 - node_failure_probability
        n, k = self.total_shares, self.required_shares
        return sum(
            math.comb(n, up) * p_up**up * (1 - p_up) ** (n - up)
            for up in range(k, n + 1)
        )

    def nines(self, node_failure_probability: float) -> float:
        """-log10 of unavailability (the 'how many nines' figure)."""
        unavailable = 1 - self.availability(node_failure_probability)
        if unavailable <= 0:
            return float("inf")
        return -math.log10(unavailable)


#: The Figure 1 encodings at matched dispersal width n=6.
STANDARD_ENCODINGS: tuple[EncodingAvailability, ...] = (
    EncodingAvailability("replication (6x)", total_shares=6, required_shares=1),
    EncodingAvailability("erasure [6,3]", total_shares=6, required_shares=3),
    EncodingAvailability("aont-rs (6,4)", total_shares=6, required_shares=4),
    EncodingAvailability("shamir (6,3)", total_shares=6, required_shares=3),
    EncodingAvailability("packed (6, t=2, k=3)", total_shares=6, required_shares=5),
    EncodingAvailability("additive (6-of-6)", total_shares=6, required_shares=6),
)


def correlated_availability(
    encoding: EncodingAvailability,
    providers: int,
    provider_failure_probability: float,
) -> float:
    """Availability when failures are *provider-correlated*.

    Shares spread round-robin over ``providers`` organizations; a provider
    outage takes down all of its shares at once.  With fewer providers than
    shares, correlation collapses the loss tolerance -- the quantitative
    form of POTSHARDS' 'administratively independent storage provider'
    requirement (and of Table 1's deployment assumption).
    """
    if providers < 1:
        raise ParameterError("need at least one provider")
    if not 0 <= provider_failure_probability <= 1:
        raise ParameterError("failure probability must be in [0, 1]")
    shares_per_provider = [
        len(range(i, encoding.total_shares, providers)) for i in range(providers)
    ]
    p_up = 1 - provider_failure_probability
    total = 0.0
    for mask in range(1 << providers):
        up_providers = [i for i in range(providers) if mask & (1 << i)]
        probability = p_up ** len(up_providers) * (
            (1 - p_up) ** (providers - len(up_providers))
        )
        surviving = sum(shares_per_provider[i] for i in up_providers)
        if surviving >= encoding.required_shares:
            total += probability
    return total


def monte_carlo_availability(
    encoding: EncodingAvailability,
    node_failure_probability: float,
    trials: int = 5000,
    seed: int = 0,
) -> float:
    """Simulation cross-check of :meth:`EncodingAvailability.availability`."""
    rng = DeterministicRandom((seed, encoding.name).__repr__())
    readable = 0
    for _ in range(trials):
        survivors = sum(
            1
            for _ in range(encoding.total_shares)
            if rng.random() >= node_failure_probability
        )
        readable += survivors >= encoding.required_shares
    return readable / trials
