"""The Section 3.2 re-encryption feasibility table.

The paper's in-text "table": months to read each cited archive once, the
write doubling, the reserved-capacity doubling, and the exabyte
extrapolation.  Analytic numbers come from the model; each row is
cross-checked against the day-stepped simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.storage.archive_model import (
    EB,
    PAPER_ARCHIVES,
    ArchiveProfile,
    exabyte_extrapolation,
    reencryption_estimate,
)
from repro.storage.simulator import simulate_reencryption

#: Read-time months the paper states in the text, keyed by archive name.
PAPER_READ_MONTHS: dict[str, float] = {
    "Oak Ridge HPSS": 6.75,
    "ECMWF MARS": 10.35,
    "CERN EOS": 8.3,
    "Pergamum (hypothetical)": 0.76,
}


@dataclass
class ReencryptionRow:
    archive: ArchiveProfile
    paper_read_months: float
    model_read_months: float
    model_total_months: float
    simulated_total_months: float

    @property
    def relative_error_vs_paper(self) -> float:
        return abs(self.model_read_months - self.paper_read_months) / self.paper_read_months

    @property
    def sim_matches_model(self) -> bool:
        return (
            abs(self.simulated_total_months - self.model_total_months)
            / self.model_total_months
            < 0.02
        )


@dataclass
class ReencryptionTableResult:
    rows: list[ReencryptionRow]
    extrapolation_years_10eb: float

    @property
    def shape_holds(self) -> bool:
        ordering_ok = self._paper_ordering_preserved()
        errors_ok = all(r.relative_error_vs_paper < 0.05 for r in self.rows)
        sims_ok = all(r.sim_matches_model for r in self.rows)
        many_years = self.extrapolation_years_10eb > 10
        return ordering_ok and errors_ok and sims_ok and many_years

    def _paper_ordering_preserved(self) -> bool:
        by_paper = sorted(self.rows, key=lambda r: r.paper_read_months)
        by_model = sorted(self.rows, key=lambda r: r.model_read_months)
        return [r.archive.name for r in by_paper] == [
            r.archive.name for r in by_model
        ]

    def render(self) -> str:
        table = render_table(
            headers=[
                "Archive",
                "Paper (mo)",
                "Model read (mo)",
                "x4 total (mo)",
                "Simulated (mo)",
                "Err vs paper",
            ],
            rows=[
                (
                    r.archive.name,
                    r.paper_read_months,
                    r.model_read_months,
                    r.model_total_months,
                    r.simulated_total_months,
                    f"{100 * r.relative_error_vs_paper:.1f}%",
                )
                for r in self.rows
            ],
            title="Section 3.2: whole-archive re-encryption feasibility",
        )
        tail = (
            f"\n10 EB archive, throughput scaling with sqrt(capacity): "
            f"{self.extrapolation_years_10eb:.1f} years "
            f"('the practical time ... could turn into many years')"
        )
        return table + tail


def generate_reencryption_table(
    write_factor: float = 2.0, reserve_factor: float = 2.0
) -> ReencryptionTableResult:
    rows = []
    for archive in PAPER_ARCHIVES:
        estimate = reencryption_estimate(archive, write_factor, reserve_factor)
        simulation = simulate_reencryption(
            archive,
            reserve_fraction=1 - 1 / reserve_factor,
            record_every=30,
        )
        rows.append(
            ReencryptionRow(
                archive=archive,
                paper_read_months=PAPER_READ_MONTHS[archive.name],
                model_read_months=archive.read_time_months,
                model_total_months=estimate.total_months,
                simulated_total_months=simulation.months,
            )
        )
    extrapolation = exabyte_extrapolation(
        PAPER_ARCHIVES[0], 10 * EB, throughput_scaling=0.5
    )
    return ReencryptionTableResult(
        rows=rows, extrapolation_years_10eb=extrapolation.total_years
    )
