"""Artifact generators: one module per figure/table in the paper.

- ``figure1`` -- the storage-cost vs security-level quadrant, measured;
- ``table1`` -- the systems-summary table, measured end to end;
- ``reencryption_table`` -- the Section 3.2 re-encryption feasibility
  numbers (Oak Ridge / ECMWF / CERN / Pergamum), analytic + simulated;
- ``report`` -- plain-text table rendering shared by the benchmarks.
"""

from repro.analysis.figure1 import generate_figure1
from repro.analysis.table1 import generate_table1
from repro.analysis.reencryption_table import generate_reencryption_table
from repro.analysis.report import render_table

__all__ = [
    "generate_figure1",
    "generate_table1",
    "generate_reencryption_table",
    "render_table",
]
