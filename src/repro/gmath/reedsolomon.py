"""Reed-Solomon erasure codes over GF(2^8).

Two variants, matching the paper's usage:

- **Systematic** ``[n, k]`` codes: the first *k* codeword symbols are the
  message itself, the remaining ``n - k`` are parity.  This is what AONT-RS
  and plain erasure-coded availability use.
- **Non-systematic** evaluation codes: the codeword is the polynomial whose
  *coefficients* are the message, evaluated at *n* points.  The paper (citing
  McEliece-Sarwate) notes Shamir's secret sharing is exactly a non-systematic
  ``[n, t]`` RS code applied to ``(m, r_1, ..., r_{t-1})``; we expose this
  form so the equivalence is testable.

All bulk data paths are numpy-vectorized: a stripe of *k* byte-rows is
extended to *n* byte-rows with ``k * (n - k)`` table-row lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError, ParameterError
from repro.gmath.gf256 import GF256
from repro.obs import metrics as _metrics
from repro.gmath.matrix import FieldMatrix
from repro.gmath.poly import lagrange_basis_at

_MAX_SYMBOLS = 255  # evaluation points are the nonzero field elements


@dataclass(frozen=True)
class Shard:
    """One erasure-coded shard: its codeword index plus payload bytes."""

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class ReedSolomonCode:
    """A ``[n, k]`` Reed-Solomon erasure code over GF(256).

    Evaluation points are ``1..n`` (zero is reserved so the non-systematic
    form can hide a secret at x = 0, Shamir-style).

    Parameters
    ----------
    n:
        Total number of shards produced (codeword length).
    k:
        Number of shards required to reconstruct (dimension).
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n <= _MAX_SYMBOLS:
            raise ParameterError(f"need 1 <= k <= n <= {_MAX_SYMBOLS}, got n={n} k={k}")
        self.n = n
        self.k = k
        self.points = list(range(1, n + 1))
        # Precompute the parity generator: for each parity point x, the
        # Lagrange coefficients mapping the k systematic rows to row(x).
        self._parity_coeffs = [
            [
                lagrange_basis_at(GF256, self.points[: k], j, x)
                for j in range(k)
            ]
            for x in self.points[k:]
        ]

    # -- helpers ---------------------------------------------------------------

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per plaintext byte (n / k)."""
        return self.n / self.k

    def _split_rows(self, data: bytes) -> tuple[list[np.ndarray], int]:
        """Pad *data* and split into k equal byte-rows.

        Returns the rows and the original length (needed to strip padding on
        decode).  Padding is zeros; the true length is carried out-of-band by
        the caller (the Shard container's metadata lives at a higher layer).
        """
        original = len(data)
        row_len = max(1, -(-original // self.k))
        padded = np.zeros(row_len * self.k, dtype=np.uint8)
        padded[:original] = np.frombuffer(data, dtype=np.uint8)
        rows = [padded[i * row_len : (i + 1) * row_len] for i in range(self.k)]
        return rows, original

    # -- systematic form --------------------------------------------------------

    def encode(self, data: bytes) -> list[Shard]:
        """Systematically encode *data* into n shards (any k reconstruct)."""
        _metrics.inc("rs_encode_bytes_total", len(data))
        rows, _ = self._split_rows(data)
        shards = [Shard(i, rows[i].tobytes()) for i in range(self.k)]
        for parity_offset, coeffs in enumerate(self._parity_coeffs):
            acc = np.zeros_like(rows[0])
            for coefficient, row in zip(coeffs, rows):
                if coefficient:
                    acc ^= GF256.scalar_mul_vec(coefficient, row)
            shards.append(Shard(self.k + parity_offset, acc.tobytes()))
        return shards

    def decode(self, shards: list[Shard], original_length: int) -> bytes:
        """Reconstruct the original bytes from any k distinct shards."""
        _metrics.inc("rs_decode_bytes_total", original_length)
        rows = self._decode_rows(shards)
        flat = np.concatenate(rows)
        if original_length > flat.size:
            raise DecodingError(
                f"original_length {original_length} exceeds decoded size {flat.size}"
            )
        return flat[:original_length].tobytes()

    def _decode_rows(self, shards: list[Shard]) -> list[np.ndarray]:
        chosen = self._select_shards(shards)
        indices = [s.index for s in chosen]
        if indices[: self.k] == list(range(self.k)) and len(indices) >= self.k:
            # Fast path: all systematic shards survived.
            _metrics.inc("rs_decode_path_total", path="systematic")
            return [np.frombuffer(s.data, dtype=np.uint8) for s in chosen[: self.k]]
        _metrics.inc("rs_decode_path_total", path="interpolated")
        xs = [self.points[s.index] for s in chosen]
        # Message row i equals the codeword polynomial evaluated at points[i].
        vander = FieldMatrix.vandermonde(GF256, xs, self.k)
        inv = vander.inverse()
        payload = [np.frombuffer(s.data, dtype=np.uint8) for s in chosen]
        # coefficient rows = inv @ payload, then re-evaluate at systematic pts
        coeff_rows = _gf_mat_apply(inv.rows, payload)
        out = []
        for i in range(self.k):
            x = self.points[i]
            out.append(_poly_rows_eval(coeff_rows, x))
        return out

    def _select_shards(self, shards: list[Shard]) -> list[Shard]:
        seen: dict[int, Shard] = {}
        for s in shards:
            if not 0 <= s.index < self.n:
                raise DecodingError(f"shard index {s.index} out of range for n={self.n}")
            seen.setdefault(s.index, s)
        if len(seen) < self.k:
            raise DecodingError(f"need {self.k} distinct shards, got {len(seen)}")
        chosen = [seen[i] for i in sorted(seen)][: self.k]
        lengths = {len(s.data) for s in chosen}
        if len(lengths) != 1:
            raise DecodingError(f"inconsistent shard lengths: {sorted(lengths)}")
        return chosen

    # -- non-systematic (Shamir-equivalent) form ---------------------------------

    def encode_nonsystematic(self, coefficient_rows: list[np.ndarray]) -> list[Shard]:
        """Evaluate the polynomial whose coefficient rows are given at all n
        points.  With ``coefficient_rows = [secret, r1, ..., r_{k-1}]`` and the
        secret recovered at x = 0, this *is* Shamir's scheme."""
        if len(coefficient_rows) != self.k:
            raise ParameterError(f"expected {self.k} coefficient rows")
        return [
            Shard(i, _poly_rows_eval(coefficient_rows, x).tobytes())
            for i, x in enumerate(self.points)
        ]

    def decode_nonsystematic(self, shards: list[Shard]) -> list[np.ndarray]:
        """Recover the k coefficient rows from any k distinct shards."""
        chosen = self._select_shards(shards)
        xs = [self.points[s.index] for s in chosen]
        inv = FieldMatrix.vandermonde(GF256, xs, self.k).inverse()
        payload = [np.frombuffer(s.data, dtype=np.uint8) for s in chosen]
        return _gf_mat_apply(inv.rows, payload)


def _gf_mat_apply(matrix_rows: list[list[int]], vec_rows: list[np.ndarray]) -> list[np.ndarray]:
    """Apply a small scalar GF(256) matrix to a vector of byte-rows."""
    out = []
    for row in matrix_rows:
        acc = np.zeros_like(vec_rows[0])
        for coefficient, data in zip(row, vec_rows):
            if coefficient:
                acc ^= GF256.scalar_mul_vec(coefficient, data)
        out.append(acc)
    return out


def _poly_rows_eval(coefficient_rows: list[np.ndarray], x: int) -> np.ndarray:
    """Evaluate polynomial with byte-row coefficients at scalar x (Horner)."""
    return GF256.poly_eval_vec(list(coefficient_rows), x)
