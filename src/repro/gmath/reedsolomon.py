"""Reed-Solomon erasure codes over GF(2^8).

Two variants, matching the paper's usage:

- **Systematic** ``[n, k]`` codes: the first *k* codeword symbols are the
  message itself, the remaining ``n - k`` are parity.  This is what AONT-RS
  and plain erasure-coded availability use.
- **Non-systematic** evaluation codes: the codeword is the polynomial whose
  *coefficients* are the message, evaluated at *n* points.  The paper (citing
  McEliece-Sarwate) notes Shamir's secret sharing is exactly a non-systematic
  ``[n, t]`` RS code applied to ``(m, r_1, ..., r_{t-1})``; we expose this
  form so the equivalence is testable.

Every bulk data path is one call into the batched GF(256) kernel
(:func:`repro.gmath.kernel.gf256_matmul`): a stripe of *k* byte-rows becomes
*n* byte-rows with a single cached-plan matrix product -- no per-coefficient
Python loop, and the Vandermonde inverses that degraded reads need are
LRU-cached by survivor set instead of re-derived O(k^3) per read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError, ParameterError
from repro.gmath.gf256 import GF256
from repro.gmath.kernel import (
    gf256_matmul,
    lagrange_matrix_plan,
    rows_as_matrix,
    rs_decode_plan,
    vandermonde_inverse_plan,
    vandermonde_plan,
)
from repro.obs import metrics as _metrics

_MAX_SYMBOLS = 255  # evaluation points are the nonzero field elements


def _as_payload_array(data) -> np.ndarray:
    """View bytes-like *data* as a flat uint8 array without copying."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ParameterError("payload array must be a flat uint8 array")
        return data
    return np.frombuffer(data, dtype=np.uint8)


@dataclass(frozen=True)
class Shard:
    """One erasure-coded shard: its codeword index plus payload bytes."""

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class ReedSolomonCode:
    """A ``[n, k]`` Reed-Solomon erasure code over GF(256).

    Evaluation points are ``1..n`` (zero is reserved so the non-systematic
    form can hide a secret at x = 0, Shamir-style).

    Parameters
    ----------
    n:
        Total number of shards produced (codeword length).
    k:
        Number of shards required to reconstruct (dimension).
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n <= _MAX_SYMBOLS:
            raise ParameterError(f"need 1 <= k <= n <= {_MAX_SYMBOLS}, got n={n} k={k}")
        self.n = n
        self.k = k
        self.points = list(range(1, n + 1))
        # The parity plan: for each parity point x, the Lagrange coefficients
        # mapping the k systematic rows to row(x).  Shared LRU cache, so all
        # [n, k] code instances reuse one plan.
        self._parity_plan = lagrange_matrix_plan(
            tuple(self.points[:k]), tuple(self.points[k:])
        )

    # -- helpers ---------------------------------------------------------------

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per plaintext byte (n / k)."""
        return self.n / self.k

    def _split_rows(self, data) -> tuple[np.ndarray, int]:
        """Pad *data* and reshape into a (k, row_len) byte matrix.

        *data* may be bytes-like or a flat uint8 array (e.g. an AONT package
        handed along without a ``bytes()`` round-trip).  Returns the matrix
        and the original length (needed to strip padding on decode).  Padding
        is zeros; the true length is carried out-of-band by the caller (the
        Shard container's metadata lives at a higher layer).  When the data
        length is already divisible by k the matrix is a zero-copy view of
        the input buffer.
        """
        buf = _as_payload_array(data)
        original = buf.size
        row_len = max(1, -(-original // self.k))
        if row_len * self.k == original:
            rows = buf.reshape(self.k, row_len)
        else:
            padded = np.zeros(row_len * self.k, dtype=np.uint8)
            padded[:original] = buf
            rows = padded.reshape(self.k, row_len)
        return rows, original

    # -- systematic form --------------------------------------------------------

    def encode(self, data) -> list[Shard]:
        """Systematically encode *data* (bytes-like or flat uint8 array) into
        n shards (any k reconstruct)."""
        rows, original = self._split_rows(data)
        _metrics.inc("rs_encode_bytes_total", original)
        shards = [Shard(i, rows[i].tobytes()) for i in range(self.k)]
        if self.n > self.k:
            parity = gf256_matmul(self._parity_plan, rows)
            shards.extend(
                Shard(self.k + offset, parity[offset].tobytes())
                for offset in range(self.n - self.k)
            )
        return shards

    def decode_array(self, shards: list[Shard], original_length: int) -> np.ndarray:
        """Reconstruct the original payload as a flat uint8 array.

        Zero-copy sibling of :meth:`decode`: the returned array is a view of
        the decoded row matrix, so downstream stages (AONT unpackaging) can
        keep working on the buffer directly.
        """
        _metrics.inc("rs_decode_bytes_total", original_length)
        rows = self._decode_rows(shards)
        flat = rows.reshape(-1)
        if original_length > flat.size:
            raise DecodingError(
                f"original_length {original_length} exceeds decoded size {flat.size}"
            )
        return flat[:original_length]

    def decode(self, shards: list[Shard], original_length: int) -> bytes:
        """Reconstruct the original bytes from any k distinct shards."""
        return self.decode_array(shards, original_length).tobytes()

    def _decode_rows(self, shards: list[Shard]) -> np.ndarray:
        chosen = self._select_shards(shards)
        indices = [s.index for s in chosen]
        if indices[: self.k] == list(range(self.k)) and len(indices) >= self.k:
            # Fast path: all systematic shards survived.
            _metrics.inc("rs_decode_path_total", path="systematic")
            return rows_as_matrix(
                [np.frombuffer(s.data, dtype=np.uint8) for s in chosen[: self.k]]
            )
        _metrics.inc("rs_decode_path_total", path="interpolated")
        xs = tuple(self.points[s.index] for s in chosen)
        # One cached plan takes surviving codeword rows straight to message
        # rows: (evaluate at systematic points) o (Vandermonde inverse).
        plan = rs_decode_plan(xs, tuple(self.points[: self.k]))
        payload = rows_as_matrix(
            [np.frombuffer(s.data, dtype=np.uint8) for s in chosen]
        )
        return gf256_matmul(plan, payload)

    def _select_shards(self, shards: list[Shard]) -> list[Shard]:
        seen: dict[int, Shard] = {}
        for s in shards:
            if not 0 <= s.index < self.n:
                raise DecodingError(f"shard index {s.index} out of range for n={self.n}")
            seen.setdefault(s.index, s)
        if len(seen) < self.k:
            raise DecodingError(f"need {self.k} distinct shards, got {len(seen)}")
        chosen = [seen[i] for i in sorted(seen)][: self.k]
        lengths = {len(s.data) for s in chosen}
        if len(lengths) != 1:
            raise DecodingError(f"inconsistent shard lengths: {sorted(lengths)}")
        return chosen

    # -- non-systematic (Shamir-equivalent) form ---------------------------------

    def encode_nonsystematic(self, coefficient_rows: list[np.ndarray]) -> list[Shard]:
        """Evaluate the polynomial whose coefficient rows are given at all n
        points.  With ``coefficient_rows = [secret, r1, ..., r_{k-1}]`` and the
        secret recovered at x = 0, this *is* Shamir's scheme."""
        if len(coefficient_rows) != self.k:
            raise ParameterError(f"expected {self.k} coefficient rows")
        plan = vandermonde_plan(tuple(self.points), self.k)
        evaluated = gf256_matmul(plan, rows_as_matrix(coefficient_rows))
        return [
            Shard(i, evaluated[i].tobytes()) for i in range(self.n)
        ]

    def decode_nonsystematic(self, shards: list[Shard]) -> list[np.ndarray]:
        """Recover the k coefficient rows from any k distinct shards."""
        chosen = self._select_shards(shards)
        xs = tuple(self.points[s.index] for s in chosen)
        inverse = vandermonde_inverse_plan(xs, self.k)
        payload = rows_as_matrix(
            [np.frombuffer(s.data, dtype=np.uint8) for s in chosen]
        )
        coefficients = gf256_matmul(inverse, payload)
        return [coefficients[i] for i in range(self.k)]


def _gf_mat_apply(matrix_rows: list[list[int]], vec_rows: list[np.ndarray]) -> list[np.ndarray]:
    """Apply a small scalar GF(256) matrix to a vector of byte-rows.

    Retained as the kernel call's list-in/list-out form for protocol code
    (verifiable redistribution) that works with loose rows.
    """
    out = gf256_matmul(
        np.array(matrix_rows, dtype=np.uint8), rows_as_matrix(vec_rows)
    )
    return [out[i] for i in range(out.shape[0])]


def _poly_rows_eval(coefficient_rows: list[np.ndarray], x: int) -> np.ndarray:
    """Evaluate polynomial with byte-row coefficients at scalar x (kernel)."""
    return GF256.poly_eval_vec(list(coefficient_rows), x)
