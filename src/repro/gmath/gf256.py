"""The finite field GF(2^8).

GF(2^8) is represented with the AES/Rijndael reduction polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  Elements are Python ints in ``[0, 255]``
or numpy ``uint8`` arrays for bulk operations.

The module builds log/antilog tables once at import time using the generator
``0x03`` and exposes both scalar operations (for clarity and for use by the
generic polynomial code) and vectorized operations (for throughput: secret
sharing and Reed-Solomon coding touch every byte of every object).

Design note (DESIGN.md "substrates"): Shamir's scheme is applied bytewise, so
a 1 MiB object means 2^20 independent GF(256) polynomial evaluations per
share.  Pure-Python loops would dominate the entire library's runtime; the
table-driven numpy path keeps encode/decode in the tens-of-MB/s range, enough
for the paper's workloads at laptop scale.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ParameterError
from repro.obs import metrics as _metrics

#: The AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
REDUCING_POLYNOMIAL = 0x11B

#: Generator element used to build the discrete-log tables.
GENERATOR = 0x03

ORDER = 256
_MULT_GROUP_ORDER = ORDER - 1  # 255


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for GF(2^8) under the AES polynomial."""
    exp = np.zeros(2 * _MULT_GROUP_ORDER, dtype=np.uint8)
    log = np.zeros(ORDER, dtype=np.int32)
    value = 1
    for power in range(_MULT_GROUP_ORDER):
        exp[power] = value
        log[value] = power
        # Multiply by the generator 0x03 = x + 1: v*3 = (v << 1) ^ v.
        value ^= value << 1
        if value & 0x100:
            value ^= REDUCING_POLYNOMIAL
    # Duplicate so exp[log a + log b] never needs a modulo.
    exp[_MULT_GROUP_ORDER:] = exp[:_MULT_GROUP_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()

# Full 256x256 multiplication table: 64 KiB, lets vectorized multiply be a
# single fancy-index instead of three lookups plus a zero mask.
_MUL_TABLE = np.zeros((ORDER, ORDER), dtype=np.uint8)
_nz = np.arange(1, ORDER)
_MUL_TABLE[1:, 1:] = _EXP[(_LOG[_nz][:, None] + _LOG[_nz][None, :])]

_INV_TABLE = np.zeros(ORDER, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[_MULT_GROUP_ORDER - _LOG[_nz]]


class GF256:
    """Namespace class for GF(2^8) arithmetic.

    All methods are static/class methods; the class exists so the generic
    polynomial and matrix code can treat "a field" as an object with
    ``add``/``sub``/``mul``/``div``/``inv``/``zero``/``one`` and so GF(256)
    and :class:`repro.gmath.gfp.PrimeField` are interchangeable.
    """

    order = ORDER
    zero = 0
    one = 1

    # -- scalar operations -------------------------------------------------

    @staticmethod
    def validate(a: int) -> int:
        """Return *a* if it is a valid field element, else raise."""
        if not isinstance(a, (int, np.integer)) or not 0 <= a < ORDER:
            raise ParameterError(f"not a GF(256) element: {a!r}")
        return int(a)

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR in characteristic 2)."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction; identical to addition in GF(2^8)."""
        return a ^ b

    @staticmethod
    def neg(a: int) -> int:
        """Additive inverse; every element is its own negative."""
        return a

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via log/antilog tables.

        Deliberately unmetered: protocol code (matrix inversion, Lagrange
        plans) calls this O(k^3) times per operation, and a registry
        round-trip per scalar op dominated the pure-Python paths.  Callers
        aggregate into ``gf256_scalar_ops_total`` at their boundaries
        (see :mod:`repro.gmath.kernel` and :class:`FieldMatrix`).
        """
        if a == 0 or b == 0:
            return 0
        return int(_EXP[_LOG[a] + _LOG[b]])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_INV_TABLE[a])

    @classmethod
    def div(cls, a: int, b: int) -> int:
        """Field division a / b (unmetered; see :meth:`mul`)."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(_EXP[_LOG[a] - _LOG[b] + _MULT_GROUP_ORDER])

    @staticmethod
    def pow(a: int, e: int) -> int:
        """Exponentiation a**e with e >= 0 (a != 0 for negative logic)."""
        if e < 0:
            return GF256.pow(GF256.inv(a), -e)
        if e == 0:
            return 1
        if a == 0:
            return 0
        return int(_EXP[(_LOG[a] * e) % _MULT_GROUP_ORDER])

    @staticmethod
    def elements() -> Iterable[int]:
        """Iterate over all 256 field elements."""
        return range(ORDER)

    # -- vectorized operations ---------------------------------------------

    @staticmethod
    def as_array(data: bytes | bytearray | np.ndarray) -> np.ndarray:
        """View *data* as a uint8 numpy array without copying when possible."""
        if isinstance(data, np.ndarray):
            if data.dtype != np.uint8:
                raise ParameterError("GF(256) arrays must be uint8")
            return data
        return np.frombuffer(bytes(data), dtype=np.uint8)

    @staticmethod
    def add_vec(a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """Elementwise addition of uint8 arrays (XOR)."""
        return np.bitwise_xor(a, b)

    # Subtraction is the same operation; alias for readable call sites.
    sub_vec = add_vec

    @staticmethod
    def mul_vec(a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """Elementwise multiplication via the 64 KiB product table."""
        _metrics.inc("gf256_vec_ops_total")
        return _MUL_TABLE[a, b]

    @staticmethod
    def scalar_mul_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
        """Multiply every element of *vec* by *scalar* (one table row)."""
        _metrics.inc("gf256_vec_ops_total")
        return _MUL_TABLE[scalar][vec]

    @staticmethod
    def inv_vec(a: np.ndarray) -> np.ndarray:
        """Elementwise inverse; zero entries raise."""
        if np.any(a == 0):
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return _INV_TABLE[a]

    @staticmethod
    def poly_eval_vec(coeffs: list[np.ndarray], x: int) -> np.ndarray:
        """Evaluate a polynomial with vector coefficients at scalar *x*.

        ``coeffs[0]`` is the constant term; each coefficient is a uint8 array
        of the same length (one independent polynomial per byte position).
        Horner's rule with one table-row lookup per degree step.
        """
        if not coeffs:
            raise ParameterError("empty coefficient list")
        row = _MUL_TABLE[x]
        acc = coeffs[-1]
        for coefficient in reversed(coeffs[:-1]):
            acc = np.bitwise_xor(row[acc], coefficient)
        _metrics.inc("gf256_vec_evals_total")
        _metrics.inc("gf256_vec_bytes_total", acc.size * len(coeffs))
        return acc


def gf256_dot(vector: np.ndarray, matrix_col: np.ndarray) -> int:
    """Dot product of two small uint8 vectors in GF(256) (scalar result)."""
    return int(np.bitwise_xor.reduce(_MUL_TABLE[vector, matrix_col]))
