"""Finite-field and coding-theory substrate.

This package provides the algebra every higher layer builds on:

- :mod:`repro.gmath.gf256` — the field GF(2^8) with numpy-vectorized bulk
  operations (the workhorse for byte-oriented secret sharing and RS coding).
- :mod:`repro.gmath.gfp` — prime fields GF(p) used by verifiable secret
  sharing and Pedersen commitments.
- :mod:`repro.gmath.poly` — polynomial arithmetic and interpolation over any
  supported field.
- :mod:`repro.gmath.matrix` — Vandermonde construction and Gaussian
  elimination over finite fields.
- :mod:`repro.gmath.reedsolomon` — systematic and non-systematic
  Reed–Solomon erasure codes.
- :mod:`repro.gmath.primes` — Miller–Rabin primality testing and Schnorr
  group parameter generation.
"""

from repro.gmath.gf256 import GF256
from repro.gmath.gfp import PrimeField
from repro.gmath.poly import Polynomial, lagrange_interpolate_at
from repro.gmath.reedsolomon import ReedSolomonCode

__all__ = [
    "GF256",
    "PrimeField",
    "Polynomial",
    "lagrange_interpolate_at",
    "ReedSolomonCode",
]
