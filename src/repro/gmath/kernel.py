"""Batched GF(256) linear algebra: the one kernel every codec calls.

Every encoding in this library -- Shamir, packed sharing, systematic and
non-systematic Reed-Solomon, proactive renewal -- is the same operation:
multiply a *small* scalar matrix (share counts, so < 256 on a side) by a
*wide* matrix of byte-rows (one row per polynomial coefficient or share,
one column per byte of the object).  This module provides that product,
:func:`gf256_matmul`, plus an LRU-cached **plan layer** for the small
matrices themselves, so steady-state encode/decode never rebuilds a
Vandermonde matrix, inverts one in pure Python, or re-derives Lagrange
coefficients.

Kernel shape
------------

``gf256_matmul(A, B)`` computes the ``(m, L)`` product of an ``(m, k)``
scalar matrix with a ``(k, L)`` byte matrix.  Each output row is an
XOR-accumulation of table-row gathers (``np.take`` into a preallocated
scratch row), with two short-circuits worth real throughput: coefficient
``0`` contributes nothing and coefficient ``1`` is a plain XOR.  The
measured alternative -- one 3-D fancy-index ``_MUL_TABLE[A[:, :, None],
B[None, :, :]]`` followed by ``np.bitwise_xor.reduce`` -- materializes an
``(m, k, L)`` intermediate and benches ~2x slower on MiB-scale rows, so
the gather loop is the kernel.  Both are exact field arithmetic; results
are byte-identical.

Plan-cache invariants (documented in DESIGN.md "Performance")
-------------------------------------------------------------

- Every cached plan is a **pure function of its key**: evaluation points,
  matrix width, survivor-index tuples.  No plan depends on payload bytes,
  archive state, or the rng, so a hit can never change an output.
- Cached arrays are returned **read-only** (``writeable=False``); callers
  that need to mutate must copy.  This makes sharing across threads safe.
- Caches are **bounded LRUs** (``functools.lru_cache``), sized for fleets
  far larger than any benchmark: eviction is correctness-neutral, only a
  re-derivation cost.
- Plan builds record **no metrics**: a counter that fires only on a cache
  miss would make two identically seeded runs produce different registry
  snapshots (the chaos suite pins snapshot determinism).  Observability of
  the plan layer is per-*request* instead --
  ``codec_plan_requests_total{plan=...}`` counts every lookup, which is a
  pure function of the workload; cache temperature shows up only in
  :func:`plan_cache_info`, never in the metrics registry.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.gmath.gf256 import _MUL_TABLE, GF256
from repro.gmath.matrix import FieldMatrix
from repro.gmath.poly import lagrange_basis_at
from repro.obs import metrics as _metrics

#: Plans are tiny (at most ~64 KiB each); 512 entries comfortably covers
#: every (n, k) x survivor-set mix a large fleet cycles through.
_PLAN_CACHE_SIZE = 512


# -- the kernel ----------------------------------------------------------------


def gf256_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of an ``(m, k)`` scalar matrix and a ``(k, L)`` byte matrix.

    ``a`` holds GF(256) scalars (the codec plan); ``b`` holds one byte-row
    per input symbol.  Returns the ``(m, L)`` uint8 product -- one output
    byte-row per output symbol -- computed entirely in vectorized table
    gathers, no per-byte Python.
    """
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2:
        raise ParameterError(f"plan matrix must be 2-D, got shape {a.shape}")
    b = np.asarray(b)
    if b.dtype != np.uint8:
        raise ParameterError("GF(256) byte rows must be uint8")
    if b.ndim != 2:
        raise ParameterError(f"byte matrix must be 2-D, got shape {b.shape}")
    m, k = a.shape
    k2, width = b.shape
    if k != k2:
        raise ParameterError(f"matmul dimension mismatch: ({m},{k}) x {b.shape}")
    out = np.zeros((m, width), dtype=np.uint8)
    scratch = np.empty(width, dtype=np.uint8)
    for i in range(m):
        acc = out[i]
        for j in range(k):
            coefficient = a[i, j]
            if coefficient == 0:
                continue
            if coefficient == 1:
                acc ^= b[j]
                continue
            np.take(_MUL_TABLE[coefficient], b[j], out=scratch, mode="clip")
            acc ^= scratch
    _metrics.inc("gf256_vec_ops_total")
    _metrics.inc("gf256_vec_bytes_total", m * k * width)
    return out


def rows_as_matrix(
    rows: list[np.ndarray] | tuple[np.ndarray, ...] | np.ndarray,
) -> np.ndarray:
    """Stack equal-length uint8 byte-rows into the kernel's (k, L) shape.

    Already-2-D arrays pass through untouched; hot paths that can produce
    a contiguous (k, L) matrix directly should do so and skip the copy.
    """
    if isinstance(rows, np.ndarray) and rows.ndim == 2:
        return rows
    if len(rows) == 0:
        raise ParameterError("cannot stack zero rows")
    return np.stack(rows)


# -- cached codec plans --------------------------------------------------------


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _vandermonde_cached(xs: tuple[int, ...], width: int) -> np.ndarray:
    return _freeze(FieldMatrix.vandermonde(GF256, list(xs), width).rows)


def vandermonde_plan(xs: tuple[int, ...], width: int) -> np.ndarray:
    """Rows ``[1, x, ..., x^(width-1)]`` for each evaluation point, cached.

    This is the split/evaluation plan: ``shares = V @ coefficient_rows``.
    """
    _metrics.inc("codec_plan_requests_total", plan="vandermonde")
    return _vandermonde_cached(xs, width)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _vandermonde_inverse_cached(xs: tuple[int, ...], width: int) -> np.ndarray:
    matrix = FieldMatrix.vandermonde(GF256, list(xs), width).inverse(record=False)
    return _freeze(matrix.rows)


def vandermonde_inverse_plan(xs: tuple[int, ...], width: int) -> np.ndarray:
    """Inverse Vandermonde for the surviving points, cached by survivor set.

    The pure-Python Gauss-Jordan inversion is O(width^3) scalar field ops;
    caching by the survivor-index tuple means a degraded read pays it once
    per loss pattern, not once per object.
    """
    _metrics.inc("codec_plan_requests_total", plan="vandermonde-inverse")
    return _vandermonde_inverse_cached(xs, width)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _lagrange_matrix_cached(
    xs: tuple[int, ...], targets: tuple[int, ...]
) -> np.ndarray:
    rows = [
        [lagrange_basis_at(GF256, list(xs), j, x) for j in range(len(xs))]
        for x in targets
    ]
    return _freeze(rows)


def lagrange_matrix_plan(
    xs: tuple[int, ...], targets: tuple[int, ...]
) -> np.ndarray:
    """Rows of Lagrange coefficients mapping values at *xs* to each target.

    Row r is ``[l_0(target_r), ..., l_{k-1}(target_r)]``: the plan that
    re-evaluates the interpolating polynomial at the target points.  With
    ``targets = (0,)`` this is Shamir reconstruction; with the packed
    scheme's secret points it is packed reconstruction; with share points
    it is packed splitting.
    """
    _metrics.inc("codec_plan_requests_total", plan="lagrange")
    return _lagrange_matrix_cached(xs, targets)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _lagrange_zero_cached(xs: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(int(v) for v in _lagrange_matrix_cached(xs, (0,))[0])


def lagrange_zero_plan(xs: tuple[int, ...]) -> tuple[int, ...]:
    """Lagrange coefficients at zero, cached by the xs tuple.

    The scalar-protocol twin of :func:`lagrange_matrix_plan`: callers that
    combine share *scalars* (leakage masks, redistribution) want plain ints.
    """
    _metrics.inc("codec_plan_requests_total", plan="lagrange-zero")
    return _lagrange_zero_cached(xs)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _rs_decode_cached(
    xs: tuple[int, ...], systematic_points: tuple[int, ...]
) -> np.ndarray:
    width = len(xs)
    inverse = _vandermonde_inverse_cached(xs, width)
    evaluate = _vandermonde_cached(systematic_points, width)
    composed = FieldMatrix(GF256, evaluate.tolist()).matmul(
        FieldMatrix(GF256, inverse.tolist()), record=False
    )
    return _freeze(composed.rows)


def rs_decode_plan(
    xs: tuple[int, ...], systematic_points: tuple[int, ...]
) -> np.ndarray:
    """One matrix taking surviving codeword rows straight to message rows.

    Composes the cached Vandermonde inverse (codeword rows -> coefficient
    rows) with re-evaluation at the systematic points (coefficient rows ->
    message rows).  Field arithmetic is exact, so folding the two steps
    into one matmul is byte-identical to running them separately.
    """
    _metrics.inc("codec_plan_requests_total", plan="rs-decode")
    return _rs_decode_cached(xs, systematic_points)


def _freeze(rows: list[list[int]]) -> np.ndarray:
    array = np.array(rows, dtype=np.uint8)
    array.setflags(write=False)
    return array


# -- cache management ----------------------------------------------------------

_PLAN_FUNCTIONS = {
    "vandermonde_plan": _vandermonde_cached,
    "vandermonde_inverse_plan": _vandermonde_inverse_cached,
    "lagrange_matrix_plan": _lagrange_matrix_cached,
    "lagrange_zero_plan": _lagrange_zero_cached,
    "rs_decode_plan": _rs_decode_cached,
}


def plan_cache_info() -> dict[str, object]:
    """Hit/miss statistics for every plan cache (tests and diagnostics)."""
    return {name: fn.cache_info()._asdict() for name, fn in _PLAN_FUNCTIONS.items()}


def clear_plan_caches() -> None:
    """Drop every cached plan (test isolation; never needed for correctness)."""
    for fn in _PLAN_FUNCTIONS.values():
        fn.cache_clear()
