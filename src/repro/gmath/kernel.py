"""Batched GF(256) linear algebra: the one kernel every codec calls.

Every encoding in this library -- Shamir, packed sharing, systematic and
non-systematic Reed-Solomon, proactive renewal -- is the same operation:
multiply a *small* scalar matrix (share counts, so < 256 on a side) by a
*wide* matrix of byte-rows (one row per polynomial coefficient or share,
one column per byte of the object).  This module provides that product,
:func:`gf256_matmul`, plus an LRU-cached **plan layer** for the small
matrices themselves, so steady-state encode/decode never rebuilds a
Vandermonde matrix, inverts one in pure Python, or re-derives Lagrange
coefficients.

Kernel shape
------------

``gf256_matmul(A, B)`` computes the ``(m, L)`` product of an ``(m, k)``
scalar matrix with a ``(k, L)`` byte matrix.  Three execution strategies,
all exact field arithmetic and therefore byte-identical:

- **Gather loop** (small payloads): each output row is an XOR-accumulation
  of table-row gathers (``np.take`` into a preallocated scratch row), with
  two short-circuits worth real throughput: coefficient ``0`` contributes
  nothing and coefficient ``1`` is a plain XOR.
- **Packed pair tables** (wide payloads, the codec shapes ``m <= 8``):
  input byte-rows are combined two at a time into 16-bit indices into a
  64 KiB table whose entries pack *all m* output bytes into one machine
  word, so the whole product is ``ceil(k/2)`` gathers instead of ``m*k``
  -- the dominant cost of the gather loop is ``np.take`` widening every
  uint8 index row to ``intp``, and pair-packing divides that traffic by
  ``2m``.  Tables are pure functions of the plan matrix and LRU-cached.
- **Sharded** (wide payloads, ``REPRO_KERNEL_WORKERS > 1``): the payload
  axis is cut at deterministic block boundaries and the blocks run on a
  worker pool.  Output bytes never depend on the partition -- each output
  column is a function of its input column only -- so the result is
  byte-identical to single-thread for every shape and worker count.

The measured alternative -- one 3-D fancy-index ``_MUL_TABLE[A[:, :, None],
B[None, :, :]]`` followed by ``np.bitwise_xor.reduce`` -- materializes an
``(m, k, L)`` intermediate and benches ~2x slower on MiB-scale rows than
even the gather loop, so it is not used.

Plan-cache invariants (documented in DESIGN.md "Performance")
-------------------------------------------------------------

- Every cached plan is a **pure function of its key**: evaluation points,
  matrix width, survivor-index tuples.  No plan depends on payload bytes,
  archive state, or the rng, so a hit can never change an output.
- Cached arrays are returned **read-only** (``writeable=False``); callers
  that need to mutate must copy.  This makes sharing across threads safe.
- Caches are **bounded LRUs** (``functools.lru_cache``), sized for fleets
  far larger than any benchmark: eviction is correctness-neutral, only a
  re-derivation cost.
- Plan builds record **no metrics**: a counter that fires only on a cache
  miss would make two identically seeded runs produce different registry
  snapshots (the chaos suite pins snapshot determinism).  Observability of
  the plan layer is per-*request* instead --
  ``codec_plan_requests_total{plan=...}`` counts every lookup, which is a
  pure function of the workload; cache temperature shows up only in
  :func:`plan_cache_info`, never in the metrics registry.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache

import numpy as np

from repro import config as _config
from repro.errors import ParameterError
from repro.gmath.gf256 import _MUL_TABLE, GF256
from repro.gmath.matrix import FieldMatrix
from repro.gmath.poly import lagrange_basis_at
from repro.obs import metrics as _metrics

#: Plans are tiny (at most ~64 KiB each); 512 entries comfortably covers
#: every (n, k) x survivor-set mix a large fleet cycles through.
_PLAN_CACHE_SIZE = 512

#: Below this payload width the gather loop wins: packed tables and worker
#: hand-off have fixed costs that only amortize over wide rows.
PACKED_MIN_WIDTH = 16384

#: Packed tables hold one machine word per entry, so at most 8 output rows
#: fit; wider plans fall back to the gather loop.  ``k`` is capped so one
#: plan's table set stays bounded (ceil(k/2) tables of 64 KiB * pad each).
_PACKED_MAX_OUT = 8
_PACKED_MAX_IN = 16

#: Sharding floor: never hand a worker a block narrower than this (the
#: per-task submit/wake cost would exceed the matmul itself).
SHARD_MIN_BLOCK = 32768

_PAD_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


# -- the kernel ----------------------------------------------------------------


def gf256_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of an ``(m, k)`` scalar matrix and a ``(k, L)`` byte matrix.

    ``a`` holds GF(256) scalars (the codec plan); ``b`` holds one byte-row
    per input symbol.  Returns the ``(m, L)`` uint8 product -- one output
    byte-row per output symbol -- computed entirely in vectorized table
    gathers, no per-byte Python.  Wide payloads ride the packed pair-table
    path, sharded across the kernel worker pool when
    ``REPRO_KERNEL_WORKERS`` (see :mod:`repro.config`) allows; every path
    is exact GF(256) arithmetic, so outputs are byte-identical regardless
    of strategy, cache temperature, or worker count.
    """
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2:
        raise ParameterError(f"plan matrix must be 2-D, got shape {a.shape}")
    b = np.asarray(b)
    if b.dtype != np.uint8:
        raise ParameterError("GF(256) byte rows must be uint8")
    if b.ndim != 2:
        raise ParameterError(f"byte matrix must be 2-D, got shape {b.shape}")
    m, k = a.shape
    k2, width = b.shape
    if k != k2:
        raise ParameterError(f"matmul dimension mismatch: ({m},{k}) x {b.shape}")
    out = np.zeros((m, width), dtype=np.uint8)
    if m and k and width:
        packed = (
            width >= PACKED_MIN_WIDTH
            and m <= _PACKED_MAX_OUT
            and k <= _PACKED_MAX_IN
        )
        block_fn = _packed_block if packed else _gather_block
        args = (
            # Cache key is the (m*k)-byte plan matrix, not the payload.
            (_packed_tables(a.tobytes(), m, k),) if packed else (a,)  # noqa: ARCH008
        )
        _run_sharded(block_fn, args, b, out)
    _metrics.inc("gf256_vec_ops_total")
    _metrics.inc("gf256_vec_bytes_total", m * k * width)
    return out


def _gather_block(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """Gather-loop strategy: one ``np.take`` per nonzero, non-one scalar."""
    m, k = a.shape
    width = b.shape[1]
    scratch = np.empty(width, dtype=np.uint8)
    for i in range(m):
        acc = out[i]
        for j in range(k):
            coefficient = a[i, j]
            if coefficient == 0:
                continue
            if coefficient == 1:
                acc ^= b[j]
                continue
            np.take(_MUL_TABLE[coefficient], b[j], out=scratch, mode="clip")
            acc ^= scratch


def _packed_block(
    tables: tuple[np.ndarray, ...], b: np.ndarray, out: np.ndarray
) -> None:
    """Packed strategy: pair-indexed tables, all output rows per gather.

    Accumulation happens in the packed word domain (contiguous, SIMD-wide);
    the single strided unpack at the end is the only per-output-row pass.
    """
    k, width = b.shape
    m = out.shape[0]
    pad = tables[0].dtype.itemsize
    acc = np.zeros(width, dtype=tables[0].dtype)
    position = 0
    for j in range(0, k - 1, 2):
        index = b[j].astype(np.uint16)
        index <<= 8
        index |= b[j + 1]
        acc ^= np.take(tables[position], index, mode="clip")
        position += 1
    if k % 2:
        acc ^= np.take(tables[position], b[k - 1], mode="clip")
    unpacked = acc.view(np.uint8).reshape(width, pad)
    for i in range(m):
        out[i] = unpacked[:, i]


@lru_cache(maxsize=32)
def _packed_tables(a_bytes: bytes, m: int, k: int) -> tuple[np.ndarray, ...]:
    """Packed multiplication tables for one plan matrix, LRU-cached.

    Pure function of the plan bytes: entry ``x*256 + y`` of pair table
    ``j/2`` holds ``mul(a[i, j], x) ^ mul(a[i, j+1], y)`` in byte lane
    ``i``.  Returned arrays are frozen read-only so worker threads can
    share them.
    """
    a = np.frombuffer(a_bytes, dtype=np.uint8).reshape(m, k)
    pad = 1 if m == 1 else 2 if m == 2 else 4 if m <= 4 else 8
    dtype = _PAD_DTYPE[pad]
    tables = []
    for j in range(0, k - 1, 2):
        lanes = np.zeros((65536, pad), dtype=np.uint8)
        for i in range(m):
            lanes[:, i] = (
                _MUL_TABLE[a[i, j]][:, None] ^ _MUL_TABLE[a[i, j + 1]][None, :]
            ).reshape(-1)
        tables.append(_freeze_words(lanes, dtype))
    if k % 2:
        lanes = np.zeros((256, pad), dtype=np.uint8)
        for i in range(m):
            lanes[:, i] = _MUL_TABLE[a[i, k - 1]]
        tables.append(_freeze_words(lanes, dtype))
    return tuple(tables)


def _freeze_words(lanes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    words = lanes.view(dtype).reshape(-1)
    words.setflags(write=False)
    return words


# -- worker-pool sharding ------------------------------------------------------

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_SIZE = 0


def _worker_pool(workers: int) -> ThreadPoolExecutor:
    """The shared kernel pool, rebuilt only when the worker knob changes."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE != workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _POOL_SIZE = workers
        return _POOL


def shard_bounds(width: int, workers: int) -> list[tuple[int, int]]:
    """Deterministic payload-axis block boundaries for *workers* shards.

    A pure function of ``(width, workers)``: equal-width blocks, never
    narrower than :data:`SHARD_MIN_BLOCK`.  The partition can never change
    output bytes (each output column depends only on its input column);
    determinism here keeps the *work distribution* reproducible too.
    """
    if width <= 0:
        return []
    blocks = min(workers, max(1, width // SHARD_MIN_BLOCK))
    bounds = []
    for i in range(blocks):
        lo = i * width // blocks
        hi = (i + 1) * width // blocks
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def _run_sharded(block_fn, args: tuple, b: np.ndarray, out: np.ndarray) -> None:
    """Run *block_fn* over payload-axis shards of ``b``/``out``.

    Falls through to one direct call when the pool would not help (single
    worker, or payload too narrow to cut).
    """
    workers = _config.kernel_workers()
    bounds = shard_bounds(b.shape[1], workers) if workers > 1 else []
    if len(bounds) <= 1:
        block_fn(*args, b, out)
        return
    pool = _worker_pool(workers)
    futures = [
        pool.submit(block_fn, *args, b[:, lo:hi], out[:, lo:hi])
        for lo, hi in bounds
    ]
    for future in futures:
        future.result()


def rows_as_matrix(
    rows: list[np.ndarray] | tuple[np.ndarray, ...] | np.ndarray,
) -> np.ndarray:
    """Stack equal-length uint8 byte-rows into the kernel's (k, L) shape.

    Already-2-D arrays pass through untouched; hot paths that can produce
    a contiguous (k, L) matrix directly should do so and skip the copy.
    """
    if isinstance(rows, np.ndarray) and rows.ndim == 2:
        return rows
    if len(rows) == 0:
        raise ParameterError("cannot stack zero rows")
    return np.stack(rows)


# -- cached codec plans --------------------------------------------------------


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _vandermonde_cached(xs: tuple[int, ...], width: int) -> np.ndarray:
    return _freeze(FieldMatrix.vandermonde(GF256, list(xs), width).rows)


def vandermonde_plan(xs: tuple[int, ...], width: int) -> np.ndarray:
    """Rows ``[1, x, ..., x^(width-1)]`` for each evaluation point, cached.

    This is the split/evaluation plan: ``shares = V @ coefficient_rows``.
    """
    _metrics.inc("codec_plan_requests_total", plan="vandermonde")
    return _vandermonde_cached(xs, width)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _vandermonde_inverse_cached(xs: tuple[int, ...], width: int) -> np.ndarray:
    matrix = FieldMatrix.vandermonde(GF256, list(xs), width).inverse(record=False)
    return _freeze(matrix.rows)


def vandermonde_inverse_plan(xs: tuple[int, ...], width: int) -> np.ndarray:
    """Inverse Vandermonde for the surviving points, cached by survivor set.

    The pure-Python Gauss-Jordan inversion is O(width^3) scalar field ops;
    caching by the survivor-index tuple means a degraded read pays it once
    per loss pattern, not once per object.
    """
    _metrics.inc("codec_plan_requests_total", plan="vandermonde-inverse")
    return _vandermonde_inverse_cached(xs, width)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _lagrange_matrix_cached(
    xs: tuple[int, ...], targets: tuple[int, ...]
) -> np.ndarray:
    rows = [
        [lagrange_basis_at(GF256, list(xs), j, x) for j in range(len(xs))]
        for x in targets
    ]
    return _freeze(rows)


def lagrange_matrix_plan(
    xs: tuple[int, ...], targets: tuple[int, ...]
) -> np.ndarray:
    """Rows of Lagrange coefficients mapping values at *xs* to each target.

    Row r is ``[l_0(target_r), ..., l_{k-1}(target_r)]``: the plan that
    re-evaluates the interpolating polynomial at the target points.  With
    ``targets = (0,)`` this is Shamir reconstruction; with the packed
    scheme's secret points it is packed reconstruction; with share points
    it is packed splitting.
    """
    _metrics.inc("codec_plan_requests_total", plan="lagrange")
    return _lagrange_matrix_cached(xs, targets)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _lagrange_zero_cached(xs: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(int(v) for v in _lagrange_matrix_cached(xs, (0,))[0])


def lagrange_zero_plan(xs: tuple[int, ...]) -> tuple[int, ...]:
    """Lagrange coefficients at zero, cached by the xs tuple.

    The scalar-protocol twin of :func:`lagrange_matrix_plan`: callers that
    combine share *scalars* (leakage masks, redistribution) want plain ints.
    """
    _metrics.inc("codec_plan_requests_total", plan="lagrange-zero")
    return _lagrange_zero_cached(xs)


@lru_cache(maxsize=_PLAN_CACHE_SIZE)
def _rs_decode_cached(
    xs: tuple[int, ...], systematic_points: tuple[int, ...]
) -> np.ndarray:
    width = len(xs)
    inverse = _vandermonde_inverse_cached(xs, width)
    evaluate = _vandermonde_cached(systematic_points, width)
    composed = FieldMatrix(GF256, evaluate.tolist()).matmul(
        FieldMatrix(GF256, inverse.tolist()), record=False
    )
    return _freeze(composed.rows)


def rs_decode_plan(
    xs: tuple[int, ...], systematic_points: tuple[int, ...]
) -> np.ndarray:
    """One matrix taking surviving codeword rows straight to message rows.

    Composes the cached Vandermonde inverse (codeword rows -> coefficient
    rows) with re-evaluation at the systematic points (coefficient rows ->
    message rows).  Field arithmetic is exact, so folding the two steps
    into one matmul is byte-identical to running them separately.
    """
    _metrics.inc("codec_plan_requests_total", plan="rs-decode")
    return _rs_decode_cached(xs, systematic_points)


def _freeze(rows: list[list[int]]) -> np.ndarray:
    array = np.array(rows, dtype=np.uint8)
    array.setflags(write=False)
    return array


# -- cache management ----------------------------------------------------------

_PLAN_FUNCTIONS = {
    "vandermonde_plan": _vandermonde_cached,
    "vandermonde_inverse_plan": _vandermonde_inverse_cached,
    "lagrange_matrix_plan": _lagrange_matrix_cached,
    "lagrange_zero_plan": _lagrange_zero_cached,
    "rs_decode_plan": _rs_decode_cached,
    "packed_mul_tables": _packed_tables,
}

#: Serializes cache maintenance (clear/info) against itself.  Plan *lookups*
#: stay lock-free: CPython's lru_cache wrapper is thread-safe at the C level,
#: and a shard that raced a clear simply rebuilds its plan -- the plans are
#: pure functions of their keys, so any rebuild is byte-identical.  The lock
#: exists so two maintenance calls can't interleave a half-cleared view, and
#: so ``plan_cache_info`` reports one consistent cut of the statistics.
_MAINTENANCE_LOCK = threading.Lock()


def plan_cache_info() -> dict[str, object]:
    """Hit/miss statistics for every plan cache (tests and diagnostics).

    Safe while shards are in flight: taken under the maintenance lock so it
    never interleaves with a ``clear_plan_caches`` half-way through its
    sweep (which would report some caches cleared and some not, a view no
    sequential execution could produce).
    """
    with _MAINTENANCE_LOCK:
        return {name: fn.cache_info()._asdict() for name, fn in _PLAN_FUNCTIONS.items()}


def clear_plan_caches() -> None:
    """Drop every cached plan (test isolation; never needed for correctness).

    Safe while shards are in flight: each ``cache_clear`` is atomic inside
    CPython's lru_cache, in-flight shards keep the (immutable) plan arrays
    they already hold, and any concurrent miss rebuilds an identical plan.
    The maintenance lock only serializes this sweep against other
    maintenance calls so ``plan_cache_info`` never sees a torn clear.
    """
    with _MAINTENANCE_LOCK:
        for fn in _PLAN_FUNCTIONS.values():
            fn.cache_clear()
