"""Prime fields GF(p).

Used by the discrete-log layer: Feldman/Pedersen verifiable secret sharing,
Pedersen commitments, and the toy Schnorr-group constructions.  Elements are
plain Python ints, which keeps arbitrary-precision arithmetic free.

The class mirrors the interface of :class:`repro.gmath.gf256.GF256` so the
generic polynomial and matrix helpers work over either field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.gmath.primes import is_probable_prime


@dataclass(frozen=True)
class PrimeField:
    """The field of integers modulo a prime ``p``."""

    p: int

    def __post_init__(self) -> None:
        if self.p < 2 or not is_probable_prime(self.p):
            raise ParameterError(f"field modulus must be prime, got {self.p}")

    # Properties named to match the GF256 interface.
    @property
    def order(self) -> int:
        return self.p

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def validate(self, a: int) -> int:
        if not isinstance(a, int) or not 0 <= a < self.p:
            raise ParameterError(f"not a GF({self.p}) element: {a!r}")
        return a

    def reduce(self, a: int) -> int:
        """Map an arbitrary integer into the canonical range [0, p)."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        if a % self.p == 0:
            raise ZeroDivisionError(f"0 has no inverse in GF({self.p})")
        return pow(a, -1, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        if e < 0:
            return pow(self.inv(a), -e, self.p)
        return pow(a, e, self.p)

    def elements(self) -> range:
        """Iterate all elements; only sensible for tiny test fields."""
        if self.p > 1 << 20:
            raise ParameterError("refusing to enumerate a large field")
        return range(self.p)


#: A small prime field handy for tests (fits a byte of headroom).
F257 = PrimeField(257)

#: A 61-bit Mersenne prime field: large enough that random collisions are
#: negligible in simulations, small enough that operations stay fast.
F_M61 = PrimeField((1 << 61) - 1)
