"""Primality testing and discrete-log group parameter generation.

Provides deterministic Miller-Rabin for 64-bit integers, probabilistic
Miller-Rabin for larger ones, safe-prime search, and Schnorr group parameter
generation used by the Pedersen commitment and verifiable secret sharing
layers.

Everything here is deterministic given the caller-supplied seed so test runs
and benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError

# Witness sets giving *deterministic* Miller-Rabin answers for bounded inputs
# (Jaeschke / Sorenson-Webster results).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """Return True if *n* passes one Miller-Rabin round for *witness*."""
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (exact) for n below ~3.3e24 via fixed witness sets;
    probabilistic with *rounds* random witnesses above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, d, r, w) for w in witnesses)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than *n*."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Random prime with exactly *bits* bits (top bit set)."""
    if bits < 2:
        raise ParameterError("need at least 2 bits for a prime")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Random safe prime p = 2q + 1 with *bits* bits.

    Safe primes give a prime-order subgroup of index 2, convenient for
    Pedersen commitments.  Keep *bits* modest (<= 256) in tests; generation
    is expected-case polynomial but not fast in pure Python.
    """
    if bits < 4:
        raise ParameterError("safe primes need at least 4 bits")
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p):
            return p


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order-q subgroup of Z_p^* with two generators.

    ``g`` and ``h`` generate the subgroup of order ``q``; ``h`` is derived so
    that nobody knows log_g(h), which is what makes Pedersen commitments
    binding (computationally) while staying perfectly hiding.
    """

    p: int
    q: int
    g: int
    h: int

    def __post_init__(self) -> None:
        if (self.p - 1) % self.q != 0:
            raise ParameterError("q must divide p - 1")
        for gen in (self.g, self.h):
            if pow(gen, self.q, self.p) != 1 or gen in (0, 1):
                raise ParameterError("generator is not in the order-q subgroup")

    def exp_g(self, e: int) -> int:
        return pow(self.g, e % self.q, self.p)

    def exp_h(self, e: int) -> int:
        return pow(self.h, e % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def random_exponent(self, rng: random.Random) -> int:
        return rng.randrange(self.q)


def generate_schnorr_group(bits: int = 128, seed: int = 2024) -> SchnorrGroup:
    """Generate a Schnorr group from a safe prime of *bits* bits.

    The default 128 bits is a *simulation* parameter: large enough that the
    algebra is non-degenerate and collisions never happen by accident, small
    enough that the pure-Python proactive-VSS protocols stay fast.  The
    break-timeline registry (``repro.crypto.registry``) is what models
    real-world security levels, not this bit length.
    """
    rng = random.Random(seed)
    p = random_safe_prime(bits, rng)
    q = (p - 1) // 2
    # Any quadratic residue != 1 generates the order-q subgroup.
    while True:
        candidate = rng.randrange(2, p - 1)
        g = pow(candidate, 2, p)
        if g != 1:
            break
    while True:
        candidate = rng.randrange(2, p - 1)
        h = pow(candidate, 2, p)
        if h not in (1, g):
            break
    return SchnorrGroup(p=p, q=q, g=g, h=h)


#: Default group used across the library when the caller does not supply one.
#: Built lazily because safe-prime search takes a moment.
_DEFAULT_GROUP: SchnorrGroup | None = None


def default_group() -> SchnorrGroup:
    """Return the library-wide default Schnorr group (memoized)."""
    global _DEFAULT_GROUP
    if _DEFAULT_GROUP is None:
        _DEFAULT_GROUP = generate_schnorr_group()
    return _DEFAULT_GROUP
