"""Small dense matrices over finite fields.

Used to build and invert Vandermonde matrices for Reed-Solomon decoding and
for the verifiable secret redistribution protocol.  Matrices here are tiny
(n is the shareholder count, typically < 30), so clarity beats asymptotics:
plain Gaussian elimination with partial search for a nonzero pivot.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DecodingError, ParameterError
from repro.obs import metrics as _metrics


def _record_scalar_ops(field, count: int) -> None:
    """Aggregate GF(256) scalar-op accounting once per matrix operation.

    ``GF256.mul``/``div`` are unmetered (a registry round-trip per scalar
    op dominated the O(n^3) pure-Python paths); matrix routines record one
    aggregated count at their call boundary instead, keeping the
    ``gf256_scalar_ops_total`` snapshot key stable.  Prime-field matrices
    are not counted under the GF(256) key.  Callers running inside a
    memoized build (the kernel's plan caches) pass ``record=False``:
    metrics that fire only on a cache miss would make two identically
    seeded runs produce different snapshots.
    """
    if getattr(field, "order", None) == 256:
        _metrics.inc("gf256_scalar_ops_total", count)


class FieldMatrix:
    """A dense row-major matrix with entries in a generic finite field."""

    __slots__ = ("field", "rows")

    def __init__(self, field, rows: Sequence[Sequence[int]]):
        self.field = field
        self.rows = [list(r) for r in rows]
        if not self.rows or not self.rows[0]:
            raise ParameterError("matrix must be non-empty")
        width = len(self.rows[0])
        if any(len(r) != width for r in self.rows):
            raise ParameterError("ragged matrix rows")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def identity(cls, field, n: int) -> "FieldMatrix":
        return cls(
            field,
            [[field.one if i == j else field.zero for j in range(n)] for i in range(n)],
        )

    @classmethod
    def vandermonde(cls, field, xs: Sequence[int], width: int) -> "FieldMatrix":
        """Rows ``[1, x, x^2, ..., x^(width-1)]`` for each evaluation point."""
        rows = []
        for x in xs:
            row, power = [], field.one
            for _ in range(width):
                row.append(power)
                power = field.mul(power, x)
            rows.append(row)
        return cls(field, rows)

    # -- shape ----------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.rows), len(self.rows[0])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FieldMatrix) and self.rows == other.rows

    def __repr__(self) -> str:
        return f"FieldMatrix({self.shape[0]}x{self.shape[1]})"

    # -- arithmetic -------------------------------------------------------------

    def matvec(self, vec: Sequence[int], record: bool = True) -> list[int]:
        f = self.field
        n_rows, n_cols = self.shape
        if len(vec) != n_cols:
            raise ParameterError("matvec dimension mismatch")
        out = []
        for row in self.rows:
            acc = f.zero
            for a, b in zip(row, vec):
                acc = f.add(acc, f.mul(a, b))
            out.append(acc)
        if record:
            _record_scalar_ops(f, n_rows * n_cols)
        return out

    def matmul(self, other: "FieldMatrix", record: bool = True) -> "FieldMatrix":
        f = self.field
        n, k = self.shape
        k2, m = other.shape
        if k != k2:
            raise ParameterError("matmul dimension mismatch")
        rows = []
        for i in range(n):
            row = []
            for j in range(m):
                acc = f.zero
                for t in range(k):
                    acc = f.add(acc, f.mul(self.rows[i][t], other.rows[t][j]))
                row.append(acc)
            rows.append(row)
        if record:
            _record_scalar_ops(f, n * m * k)
        return FieldMatrix(f, rows)

    def inverse(self, record: bool = True) -> "FieldMatrix":
        """Gauss-Jordan inversion; raises DecodingError if singular."""
        f = self.field
        n, m = self.shape
        if n != m:
            raise ParameterError("only square matrices can be inverted")
        aug = [list(row) + ident for row, ident in zip(self.rows, FieldMatrix.identity(f, n).rows)]
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if aug[r][col] != f.zero), None
            )
            if pivot_row is None:
                raise DecodingError("singular matrix (repeated share indices?)")
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
            pivot_inv = f.inv(aug[col][col])
            aug[col] = [f.mul(pivot_inv, v) for v in aug[col]]
            for r in range(n):
                if r == col or aug[r][col] == f.zero:
                    continue
                factor = aug[r][col]
                aug[r] = [
                    f.sub(v, f.mul(factor, p)) for v, p in zip(aug[r], aug[col])
                ]
        # One aggregated count for the whole Gauss-Jordan elimination
        # (~2n^3 multiplies over the n x 2n augmented matrix).
        if record:
            _record_scalar_ops(f, 2 * n * n * n)
        return FieldMatrix(f, [row[n:] for row in aug])

    def solve(self, rhs: Sequence[int]) -> list[int]:
        """Solve ``A x = rhs`` for square A."""
        return self.inverse().matvec(list(rhs))
