"""Polynomials and Lagrange interpolation over a generic finite field.

A "field" here is anything exposing the interface shared by
:class:`repro.gmath.gf256.GF256` (a namespace class) and
:class:`repro.gmath.gfp.PrimeField` (instances): ``add``, ``sub``, ``mul``,
``div``, ``inv``, ``neg``, ``pow``, plus ``zero``/``one``/``order``.

These scalar routines are used for protocol-level math (VSS coefficients,
redistribution matrices, commitment exponents) where operand counts are tiny.
Bulk per-byte work goes through the vectorized GF(256) paths instead.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import DecodingError, ParameterError


class Polynomial:
    """A dense polynomial ``c0 + c1 x + ... + cd x^d`` over a finite field."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field, coeffs: Sequence[int]):
        self.field = field
        trimmed = list(coeffs)
        while len(trimmed) > 1 and trimmed[-1] == field.zero:
            trimmed.pop()
        if not trimmed:
            trimmed = [field.zero]
        self.coeffs = trimmed

    # -- constructors --------------------------------------------------------

    @classmethod
    def random(cls, field, degree: int, constant: int, rng: random.Random) -> "Polynomial":
        """Random polynomial of exactly the given degree bound with fixed
        constant term -- the core object of Shamir's scheme."""
        if degree < 0:
            raise ParameterError("degree must be non-negative")
        coeffs = [constant] + [rng.randrange(field.order) for _ in range(degree)]
        return cls(field, coeffs)

    @classmethod
    def zero_poly(cls, field) -> "Polynomial":
        return cls(field, [field.zero])

    # -- basic queries --------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.field == other.field
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((id(self.field), tuple(self.coeffs)))

    def __repr__(self) -> str:
        return f"Polynomial(deg={self.degree}, coeffs={self.coeffs})"

    # -- arithmetic -----------------------------------------------------------

    def evaluate(self, x: int) -> int:
        """Horner evaluation at the point *x*."""
        f = self.field
        acc = self.coeffs[-1]
        for coefficient in reversed(self.coeffs[:-1]):
            acc = f.add(f.mul(acc, x), coefficient)
        return acc

    def __add__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else f.zero
            b = other.coeffs[i] if i < len(other.coeffs) else f.zero
            out.append(f.add(a, b))
        return Polynomial(f, out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else f.zero
            b = other.coeffs[i] if i < len(other.coeffs) else f.zero
            out.append(f.sub(a, b))
        return Polynomial(f, out)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        out = [f.zero] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == f.zero:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = f.add(out[i + j], f.mul(a, b))
        return Polynomial(f, out)

    def scale(self, scalar: int) -> "Polynomial":
        f = self.field
        return Polynomial(f, [f.mul(scalar, c) for c in self.coeffs])


def lagrange_basis_at(field, xs: Sequence[int], j: int, x: int) -> int:
    """Evaluate the j-th Lagrange basis polynomial for nodes *xs* at *x*."""
    f = field
    num, den = f.one, f.one
    xj = xs[j]
    for m, xm in enumerate(xs):
        if m == j:
            continue
        num = f.mul(num, f.sub(x, xm))
        den = f.mul(den, f.sub(xj, xm))
    return f.div(num, den)


def lagrange_interpolate_at(
    field, points: Sequence[tuple[int, int]], x: int
) -> int:
    """Interpolate the unique degree-(k-1) polynomial through *points* and
    evaluate it at *x*.

    This is the heart of both Shamir reconstruction (x = 0) and share
    redistribution (x = new shareholder index).
    """
    if not points:
        raise DecodingError("cannot interpolate zero points")
    xs = [p[0] for p in points]
    if len(set(xs)) != len(xs):
        raise DecodingError("duplicate x-coordinates in interpolation")
    f = field
    acc = f.zero
    for j, (_, yj) in enumerate(points):
        acc = f.add(acc, f.mul(yj, lagrange_basis_at(f, xs, j, x)))
    return acc


def lagrange_coefficients_at_zero(field, xs: Sequence[int]) -> list[int]:
    """Lagrange coefficients lambda_j such that secret = sum lambda_j * y_j.

    Precomputing these once per share-set makes bulk bytewise reconstruction
    a handful of table-row operations per share.
    """
    if len(set(xs)) != len(xs):
        raise DecodingError("duplicate x-coordinates")
    return [lagrange_basis_at(field, xs, j, field.zero) for j in range(len(xs))]
