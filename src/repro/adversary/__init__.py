"""Adversary models and attack harnesses.

The paper's Section 2 lays out a spectrum of adversaries; this package makes
each executable:

- ``model`` -- the taxonomy: PPT, unbounded, time-indexed, rate-bounded
  computational power; static vs mobile corruption.
- ``mobile`` -- the Ostrovsky-Yung mobile adversary walking a node fleet
  epoch by epoch, against which proactive renewal is the defense.
- ``harvest`` -- the Harvest Now, Decrypt Later harness: record ciphertext
  today, advance the break timeline, decrypt tomorrow.

Cryptanalytic obsolescence itself is modeled by
:class:`repro.crypto.registry.BreakTimeline`.
"""

from repro.adversary.model import AdversaryModel, ComputePower, STANDARD_MODELS
from repro.adversary.mobile import MobileAdversary, MobileAttackOutcome
from repro.adversary.harvest import HarvestingAdversary, HarvestOutcome
from repro.adversary.computation import (
    ComputeBudget,
    bits_needed_for_horizon,
    derive_timeline,
)

__all__ = [
    "AdversaryModel",
    "ComputePower",
    "STANDARD_MODELS",
    "MobileAdversary",
    "MobileAttackOutcome",
    "HarvestingAdversary",
    "HarvestOutcome",
    "ComputeBudget",
    "bits_needed_for_horizon",
    "derive_timeline",
]
