"""The Ostrovsky-Yung mobile adversary, walking a shared object's holders.

Paper, Section 3.2: "given enough time, we must entertain the possibility
that a mobile adversary eventually steals a threshold number of shares"; and
proactive renewal is the countermeasure because it "re-randomizes shares",
"rendering stolen shares obsolete".

:class:`MobileAdversary` corrupts up to *budget* shareholders per epoch
(choosing targets it has not yet visited this refresh period first), records
every share it sees tagged with its epoch, and wins if it ever holds >= t
shares *from the same epoch*.  Running the same walk with and without
renewal between epochs is the proactive-sharing benchmark's core sweep: the
paper's qualitative claim is that without renewal compromise is inevitable
(after ceil(t/budget) epochs), while with per-epoch renewal the adversary
never accumulates a same-epoch threshold as long as budget < t.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import DeterministicRandom
from repro.errors import AdversaryError
from repro.secretsharing.proactive import EpochShare, ProactiveShareGroup
from repro.security import redact_secret


@dataclass
class MobileAttackOutcome:
    """Result of a mobile-adversary campaign against one shared object."""

    compromised: bool
    compromise_epoch: int | None
    epochs_run: int
    shares_stolen: int
    recovered_secret: bytes | None = None

    def __repr__(self) -> str:
        return (
            f"MobileAttackOutcome(compromised={self.compromised}, "
            f"compromise_epoch={self.compromise_epoch}, "
            f"epochs_run={self.epochs_run}, shares_stolen={self.shares_stolen}, "
            f"recovered_secret={redact_secret(self.recovered_secret)})"
        )


@dataclass
class MobileAdversary:
    """Corrupts up to *budget* shareholders per epoch."""

    budget: int
    rng: DeterministicRandom
    stolen: list[EpochShare] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise AdversaryError("corruption budget must be >= 0")

    def corrupt_epoch(self, group: ProactiveShareGroup) -> list[EpochShare]:
        """One epoch's corruption: visit *budget* holders, copy their shares."""
        holders = sorted(range(1, group.n + 1))
        # Prefer holders whose current-epoch share we don't have yet.
        have_now = {
            es.share.index for es in self.stolen if es.epoch == group.epoch
        }
        fresh = [h for h in holders if h not in have_now]
        targets = (fresh + [h for h in holders if h in have_now])[: self.budget]
        grabbed = [group.share_of(t) for t in targets]
        self.stolen.extend(grabbed)
        return grabbed

    def same_epoch_haul(self) -> dict[int, set[int]]:
        """Epoch -> set of share indices held from that epoch."""
        haul: dict[int, set[int]] = {}
        for es in self.stolen:
            haul.setdefault(es.epoch, set()).add(es.share.index)
        return haul

    def try_win(self, group: ProactiveShareGroup) -> bytes | None:
        """Attempt reconstruction from any same-epoch haul of size >= t."""
        for epoch, indices in self.same_epoch_haul().items():
            if len(indices) >= group.scheme.t:
                shares = [
                    es.share
                    for es in self.stolen
                    if es.epoch == epoch and es.share.index in indices
                ]
                return group.scheme.reconstruct(shares)[: group.original_length]
        return None


def run_mobile_campaign(
    group: ProactiveShareGroup,
    adversary: MobileAdversary,
    epochs: int,
    renew_every: int | None,
    rng: DeterministicRandom,
) -> MobileAttackOutcome:
    """Walk *epochs* epochs; renew shares every *renew_every* epochs
    (None = never, the no-defense baseline)."""
    for epoch_number in range(1, epochs + 1):
        adversary.corrupt_epoch(group)
        recovered = adversary.try_win(group)
        if recovered is not None:
            return MobileAttackOutcome(
                compromised=True,
                compromise_epoch=epoch_number,
                epochs_run=epoch_number,
                shares_stolen=len(adversary.stolen),
                recovered_secret=recovered,
            )
        if renew_every and epoch_number % renew_every == 0:
            group.renew(rng)
    return MobileAttackOutcome(
        compromised=False,
        compromise_epoch=None,
        epochs_run=epochs,
        shares_stolen=len(adversary.stolen),
    )
