"""Harvest Now, Decrypt Later (HNDL).

Paper, Section 1: re-encryption "fails to address the threat of adversaries
who steal encrypted data now with the hopes of extracting useful information
years down the line; this is called a 'Harvest Now, Decrypt Later' attack --
a threat being taken seriously by industry and government alike".

The harness is deliberately literal.  At harvest time the adversary stores
an *attempt closure* around whatever it stole (wire bytes, at-rest shares);
at any later epoch it replays every closure against the break timeline.
Closures must raise (:class:`ChannelError`, :class:`CipherBrokenError`,
:class:`DecodingError`...) while the defenses hold and return plaintext once
they fall -- so a system's HNDL resistance is measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.registry import BreakTimeline
from repro.errors import ReproError

#: An attempt closure: (timeline, epoch) -> recovered plaintext, or raise.
AttemptFn = Callable[[BreakTimeline, int], bytes]


@dataclass
class HarvestedItem:
    label: str
    harvested_epoch: int
    attempt: AttemptFn


@dataclass
class HarvestOutcome:
    """One (item, epoch) decryption attempt."""

    label: str
    harvested_epoch: int
    attempt_epoch: int
    recovered: bytes | None
    failure_reason: str | None

    @property
    def success(self) -> bool:
        return self.recovered is not None


@dataclass
class HarvestingAdversary:
    """Stores ciphertext today, retries decryption as epochs pass."""

    timeline: BreakTimeline
    items: list[HarvestedItem] = field(default_factory=list)

    def harvest(self, label: str, epoch: int, attempt: AttemptFn) -> None:
        """Record stolen material together with its decryption procedure."""
        self.items.append(
            HarvestedItem(label=label, harvested_epoch=epoch, attempt=attempt)
        )

    def attempt_all(self, epoch: int) -> list[HarvestOutcome]:
        """Replay every harvested item against the timeline at *epoch*."""
        outcomes = []
        for item in self.items:
            try:
                recovered = item.attempt(self.timeline, epoch)
                outcome = HarvestOutcome(
                    label=item.label,
                    harvested_epoch=item.harvested_epoch,
                    attempt_epoch=epoch,
                    recovered=recovered,
                    failure_reason=None,
                )
            except ReproError as exc:
                outcome = HarvestOutcome(
                    label=item.label,
                    harvested_epoch=item.harvested_epoch,
                    attempt_epoch=epoch,
                    recovered=None,
                    failure_reason=f"{type(exc).__name__}: {exc}",
                )
            outcomes.append(outcome)
        return outcomes

    def successes(self, epoch: int) -> list[HarvestOutcome]:
        return [o for o in self.attempt_all(epoch) if o.success]

    def first_success_epoch(
        self, label: str, horizon: int, step: int = 1
    ) -> int | None:
        """Scan epochs 0..horizon for the first successful decryption of
        *label* -- 'years down the line', located exactly."""
        for epoch in range(0, horizon + 1, step):
            for outcome in self.attempt_all(epoch):
                if outcome.label == label and outcome.success:
                    return epoch
        return None
