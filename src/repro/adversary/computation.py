"""Rate-bounded adversarial computation (paper Section 2's nuanced model).

"One can introduce real-time notions into the model and bound the rate of
computation per unit of real time [Canetti et al.]. Additionally, one can
define an adversary as a sequence of adversaries indexed by time, with each
successive adversary belonging to a more powerful class [Buldas et al.]."

This module makes that adversary concrete enough to *derive* break epochs
rather than decree them: an adversary starts with a compute rate (guesses
per epoch) that grows geometrically (the Moore's-law-style sequence of
ever-stronger adversaries), and a primitive with an effective strength of
``b`` bits falls when the adversary's cumulative guesses reach ``2^b``.

Deriving the :class:`BreakTimeline` this way ties the whole obsolescence
machinery to two auditable numbers -- today's budget and its growth rate --
and exposes the design question archives actually face: *how many bits of
margin buy how many years?* (:func:`bits_needed_for_horizon`).

Brute force is the *floor* of adversarial progress, not the ceiling
(cryptanalytic shortcuts arrive unannounced -- MD5, DES, Shor); callers can
overlay scheduled breaks for shortcut events on the derived timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.registry import BreakTimeline, PrimitiveRegistry, global_registry
from repro.errors import ParameterError
from repro.security import SecurityNotion

#: Effective strengths (bits) for the library's computational primitives.
#: Deliberately simulation-scale for the toys; standard figures otherwise.
DEFAULT_STRENGTHS: dict[str, int] = {
    "legacy-feistel": 16,  # by construction
    "toy-rsa": 32,  # ~strength of factoring a 64-bit modulus
    "toy-dh": 64,  # generic dlog in a ~128-bit group: sqrt cost
    "md5": 24,  # post-2004 collision cost, roughly
    "aes-128-ctr": 128,
    "aes-256-ctr": 256,
    "chacha20": 256,
    "sha256": 128,  # collision resistance (birthday bound)
    "chacha-dm": 128,
    "hmac-sha256": 128,
    "hkdf-sha256": 128,
    "lamport-ots": 128,
    "merkle-lamport": 128,
    "aont": 128,
    "aont-rs": 128,
    "combined-hash": 128,
    "feldman-vss": 64,
    "proxy-reencryption": 64,
    "cascade": 256,
    "entropic": 128,
    "bsm": 256,  # unused: IT primitives are filtered out anyway
}


@dataclass(frozen=True)
class ComputeBudget:
    """An adversary's compute trajectory.

    ``initial_guesses_per_epoch`` is the rate in epoch 1; the rate multiplies
    by ``growth_per_epoch`` each epoch (1.41 ~ doubling every two epochs,
    the classic cadence).
    """

    initial_guesses_per_epoch: float
    growth_per_epoch: float = 1.41

    def __post_init__(self) -> None:
        if self.initial_guesses_per_epoch <= 0:
            raise ParameterError("compute rate must be positive")
        if self.growth_per_epoch < 1:
            raise ParameterError("compute does not shrink in this model")

    def cumulative_guesses(self, epoch: int) -> float:
        """Total guesses spent by the END of *epoch* (epoch 0 = none yet)."""
        if epoch <= 0:
            return 0.0
        r, g = self.growth_per_epoch, self.initial_guesses_per_epoch
        if r == 1.0:
            return g * epoch
        return g * (r**epoch - 1) / (r - 1)

    def epochs_to_break(self, strength_bits: float, max_epochs: int = 10_000) -> int | None:
        """First epoch whose cumulative guesses reach 2^strength_bits."""
        if strength_bits < 0:
            raise ParameterError("strength must be >= 0 bits")
        target = 2.0**strength_bits
        # Closed form when growing; guard with a cap for flat budgets.
        if self.growth_per_epoch > 1.0:
            r, g = self.growth_per_epoch, self.initial_guesses_per_epoch
            # g (r^e - 1)/(r - 1) >= target  =>  e >= log_r(target (r-1)/g + 1)
            epoch = math.ceil(math.log(target * (r - 1) / g + 1, r))
            return epoch if epoch <= max_epochs else None
        epoch = math.ceil(target / self.initial_guesses_per_epoch)
        return epoch if epoch <= max_epochs else None


def derive_timeline(
    budget: ComputeBudget,
    strengths: dict[str, int] | None = None,
    registry: PrimitiveRegistry | None = None,
    horizon_epochs: int = 10_000,
) -> BreakTimeline:
    """Build a BreakTimeline from the adversary's compute trajectory.

    Information-theoretic primitives never enter the timeline -- no budget
    breaks them, which is the paper's thesis falling out of the model.
    """
    registry = registry or global_registry()
    strengths = strengths or DEFAULT_STRENGTHS
    timeline = BreakTimeline(registry=registry)
    for name in registry.names():
        info = registry.get(name)
        if info.notion is SecurityNotion.INFORMATION_THEORETIC:
            continue
        if info.historically_broken:
            continue  # already broken at epoch 0 by registry flag
        strength = strengths.get(name)
        if strength is None:
            continue
        epoch = budget.epochs_to_break(strength, max_epochs=horizon_epochs)
        if epoch is not None:
            timeline.schedule_break(name, epoch)
    return timeline


def bits_needed_for_horizon(
    budget: ComputeBudget, horizon_epochs: int, margin_bits: float = 0.0
) -> float:
    """Minimum effective strength that survives *horizon_epochs*.

    The inverse design question: an archive with a 100-epoch confidentiality
    horizon facing this adversary needs primitives of at least this many
    bits -- plus whatever *margin_bits* hedge against cryptanalytic
    shortcuts the designer can stomach.
    """
    if horizon_epochs < 1:
        raise ParameterError("horizon must be >= 1 epoch")
    total = budget.cumulative_guesses(horizon_epochs)
    return math.log2(total) + margin_bits
