"""Adversary taxonomy (paper Section 2, "Threat Modeling").

"Typically, adversaries are viewed as Turing machines with either
probabilistic polynomial runtime (PPT) or completely unbounded runtime, but
some works make more nuanced computational assumptions" -- rate-bounded
real-time adversaries (Canetti et al.) and time-indexed sequences of
increasingly powerful adversaries (Buldas et al.).  "In this work we
consider a mobile adversary with computational power bounded in this more
nuanced manner."

:class:`AdversaryModel` couples a compute-power class with corruption
parameters; :meth:`AdversaryModel.can_defeat` answers whether a given
primitive falls to this adversary at a given epoch, which is the predicate
all the attack harnesses and the security classifier share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.registry import BreakTimeline, PrimitiveInfo
from repro.errors import ParameterError
from repro.security import SecurityNotion


class ComputePower(enum.Enum):
    """Computational power classes from the paper's Section 2."""

    #: Probabilistic polynomial time: breaks nothing until cryptanalysis
    #: (the break timeline) hands it an attack.
    PPT = "ppt"
    #: Unbounded: instantly breaks everything computational.  "Unbounded
    #: computing machines do not exist in the real world" (Landauer), but
    #: the class is instructive -- ITS schemes shrug it off.
    UNBOUNDED = "unbounded"
    #: A sequence of adversaries indexed by time, each drawn from a more
    #: powerful class (Buldas-Geihs-Buchmann): concretely, the adversary at
    #: epoch e defeats exactly what the timeline says is broken by e.
    TIME_INDEXED = "time-indexed"
    #: Rate-bounded real time (Canetti et al.): like TIME_INDEXED, plus a
    #: bound on how much it can corrupt per epoch (enforced by the mobile
    #: harness, not here).
    RATE_BOUNDED = "rate-bounded"


@dataclass(frozen=True)
class AdversaryModel:
    """One fully specified adversary."""

    name: str
    power: ComputePower
    #: Maximum nodes corrupted simultaneously (the mobile threshold b).
    corruption_budget: int = 1
    #: Whether corruption can move between nodes across epochs (mobile).
    mobile: bool = True

    def __post_init__(self) -> None:
        if self.corruption_budget < 0:
            raise ParameterError("corruption budget must be >= 0")

    def can_defeat(
        self, primitive: PrimitiveInfo, timeline: BreakTimeline, epoch: int
    ) -> bool:
        """Does this adversary defeat *primitive* at *epoch*?"""
        if primitive.notion is SecurityNotion.INFORMATION_THEORETIC:
            return False  # regardless of compute power -- the paper's point
        if self.power is ComputePower.UNBOUNDED:
            return True
        # PPT / time-indexed / rate-bounded: defer to the break timeline.
        return timeline.is_broken(primitive.name, epoch)


#: The named adversaries used across tests and benchmarks.
STANDARD_MODELS: dict[str, AdversaryModel] = {
    "ppt-static": AdversaryModel(
        name="ppt-static", power=ComputePower.PPT, corruption_budget=1, mobile=False
    ),
    "ppt-mobile": AdversaryModel(
        name="ppt-mobile", power=ComputePower.PPT, corruption_budget=1, mobile=True
    ),
    "time-indexed-mobile": AdversaryModel(
        name="time-indexed-mobile",
        power=ComputePower.TIME_INDEXED,
        corruption_budget=1,
        mobile=True,
    ),
    "unbounded": AdversaryModel(
        name="unbounded", power=ComputePower.UNBOUNDED, corruption_budget=1, mobile=True
    ),
}
