"""Security taxonomy shared across the library.

The paper's central axis (Section 2, "Computational vs. Information-Theoretic
Security") distinguishes schemes whose guarantees assume a bounded adversary
from schemes whose guarantees hold against unbounded adversaries.  Figure 1
then ranks data encodings on a qualitative "security level" axis.  This module
makes both notions concrete:

- :class:`SecurityNotion` -- the two-way computational/IT split used in
  security definitions (Definitions 2.1 and 2.2 of the paper).
- :class:`SecurityLevel` -- the ordinal scale used by the trade-off analyzer
  to place encodings on the Figure 1 x-axis.  The ordering is the paper's:
  no confidentiality < broken computational < computational < conditional
  information-theoretic (entropic or leakage-bounded assumptions) < perfect
  information-theoretic.
- :class:`CIAGoal` -- the classic confidentiality/integrity/availability
  triad used when classifying whole systems (Table 1).
- :func:`redact_secret` -- the one sanctioned way to render key/share bytes
  in reprs, logs, and error messages (length + digest prefix, never the
  material itself; enforced by archlint ARCH010).
"""

from __future__ import annotations

import enum
import functools
import hashlib

from repro.errors import ParameterError


def redact_secret(material: bytes | bytearray | memoryview | None) -> str:
    """Render secret *material* without revealing it.

    Returns ``"<empty>"``/``"<none>"`` for degenerate inputs, otherwise
    ``"<N bytes, sha256:xxxxxxxx>"`` -- enough to correlate two values in a
    debug session (equal digests <=> equal material, within sha256) while
    leaking nothing an adversary can invert.  Every ``__repr__`` of a
    key/share-carrying dataclass routes through here.
    """
    if material is None:
        return "<none>"
    data = bytes(material)
    if not data:
        return "<empty>"
    digest = hashlib.sha256(data).hexdigest()[:8]
    return f"<{len(data)} bytes, sha256:{digest}>"


class CIAGoal(enum.Enum):
    """The classic information-security triad (paper Section 2)."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


class SecurityNotion(enum.Enum):
    """Whether a guarantee assumes a computationally bounded adversary."""

    NONE = "none"
    COMPUTATIONAL = "computational"
    INFORMATION_THEORETIC = "information-theoretic"

    @property
    def label(self) -> str:
        """Table 1 label: the paper prints 'ITS' for information-theoretic."""
        if self is SecurityNotion.INFORMATION_THEORETIC:
            return "ITS"
        return self.value.capitalize()


@functools.total_ordering
class SecurityLevel(enum.Enum):
    """Ordinal security scale for the Figure 1 x-axis.

    Values are (rank, description).  Higher rank = further right in Figure 1.
    """

    NONE = (0, "no confidentiality: plaintext recoverable from any share")
    BROKEN = (1, "computational scheme whose primitive has been broken")
    COMPUTATIONAL = (2, "secure against PPT adversaries under hardness assumptions")
    COMPUTATIONAL_COMBINED = (
        3,
        "robust combiner: secure while at least one member primitive holds",
    )
    ITS_CONDITIONAL = (
        4,
        "information-theoretic under side conditions (entropy or leakage bounds)",
    )
    ITS_PERFECT = (5, "perfect information-theoretic secrecy (epsilon = 0)")

    @property
    def rank(self) -> int:
        return self.value[0]

    @property
    def description(self) -> str:
        return self.value[1]

    def __lt__(self, other: "SecurityLevel") -> bool:
        if not isinstance(other, SecurityLevel):
            return NotImplemented
        return self.rank < other.rank

    @property
    def notion(self) -> SecurityNotion:
        """Collapse the ordinal scale back to the two-way notion."""
        if self.rank <= SecurityLevel.BROKEN.rank:
            return SecurityNotion.NONE
        if self.rank <= SecurityLevel.COMPUTATIONAL_COMBINED.rank:
            return SecurityNotion.COMPUTATIONAL
        return SecurityNotion.INFORMATION_THEORETIC


class StorageCostBand(enum.Enum):
    """Table 1's qualitative storage-cost buckets.

    The paper buckets systems as Low / High (PASIS spans "Low-High" because
    its encoding is per-object configurable).  ``classify_overhead`` maps a
    measured stored-bytes/plaintext-bytes ratio to a bucket; the 2.5x border
    separates erasure-style overheads (n/k, typically 1.3-2x) from
    replication-style overheads (n copies, >= 3x in dispersed deployments).
    """

    LOW = "Low"
    HIGH = "High"
    VARIABLE = "Low-High"

    @staticmethod
    def classify_overhead(ratio: float) -> "StorageCostBand":
        if ratio < 0:
            raise ParameterError(f"storage overhead ratio must be >= 0, got {ratio}")
        return StorageCostBand.LOW if ratio < 2.5 else StorageCostBand.HIGH
