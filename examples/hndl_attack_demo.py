#!/usr/bin/env python3
"""Harvest Now, Decrypt Later: the paper's motivating attack, end to end.

An adversary steals a hospital's encrypted archive (wire transcripts and
at-rest ciphertext) in year 0, then waits.  In year 15 the archive's cipher
falls to cryptanalysis.  We watch what happens to the same record stored in
a commercial cloud (AES at rest, TLS in transit) and in LINCOS (Shamir at
rest, QKD in transit).

Run:  python examples/hndl_attack_demo.py
"""

from repro import BreakTimeline, DeterministicRandom, make_node_fleet
from repro.adversary.harvest import HarvestingAdversary
from repro.systems import CloudProviderArchive, Lincos

BREAK_YEAR = 15
RECORD = (
    b"Patient 4711: genomic markers, psychiatric history, HIV status. "
    b"Sensitive for the patient's lifetime and their children's."
)


def main() -> None:
    # The threat model: AES, the TLS key exchange, and the session cipher
    # all fall in year 15 (a quantum computer, an algorithmic advance --
    # the cause does not matter, only that it cannot be ruled out).
    timeline = BreakTimeline()
    for primitive in ("aes-256-ctr", "toy-dh", "chacha20"):
        timeline.schedule_break(primitive, BREAK_YEAR)

    cloud = CloudProviderArchive(
        make_node_fleet(2, providers=["bigcloud"]), DeterministicRandom(1)
    )
    lincos = Lincos(make_node_fleet(5), DeterministicRandom(2))

    print("year 0: hospital archives the record in both systems")
    cloud.store("patient-4711", RECORD)
    lincos.store("patient-4711", RECORD)

    print("year 0: adversary harvests everything it can reach:")
    adversary = HarvestingAdversary(timeline=timeline)

    # 1. Wire transcripts (TLS is recordable; QKD wire bytes are OTP).
    cloud_wire = cloud.transcript[0].transmission
    lincos_wire = lincos.transcript[0].transmission
    adversary.harvest(
        "cloud wire", 0, lambda tl, e: cloud.transit.break_open(cloud_wire, tl, e)
    )
    adversary.harvest(
        "lincos wire", 0, lambda tl, e: lincos.transit.break_open(lincos_wire, tl, e)
    )

    # 2. At-rest theft: the full cloud replica; two of five LINCOS shares
    #    (a sub-threshold haul -- the mobile-adversary benchmark covers the
    #    threshold case and the proactive defense).
    cloud_haul = cloud.steal_at_rest("patient-4711")
    lincos_haul = lincos.steal_at_rest("patient-4711", share_indices=[1, 2])
    adversary.harvest(
        "cloud at-rest", 0,
        lambda tl, e: cloud.attempt_recovery("patient-4711", cloud_haul, tl, e),
    )
    adversary.harvest(
        "lincos at-rest", 0,
        lambda tl, e: lincos.attempt_recovery("patient-4711", lincos_haul, tl, e),
    )
    print(f"  harvested: {len(cloud_haul)} cloud replica(s), "
          f"{len(lincos_haul)}/5 lincos shares, 2 wire transcripts\n")

    for year in (5, BREAK_YEAR, 40):
        print(f"year {year}:")
        for outcome in adversary.attempt_all(epoch=year):
            if outcome.success:
                status = "RECOVERED: " + outcome.recovered[:40].decode(errors="replace") + "..."
            else:
                status = "still safe (" + outcome.failure_reason.split(":")[0] + ")"
            print(f"  {outcome.label:16s} {status}")
        print()

    print("summary:")
    for label in ("cloud wire", "cloud at-rest", "lincos wire", "lincos at-rest"):
        first = adversary.first_success_epoch(label, horizon=100)
        verdict = f"falls in year {first}" if first is not None else "never falls"
        print(f"  {label:16s} {verdict}")
    print(
        "\nre-encrypting the cloud archive after year 15 would protect new "
        "reads -- but the year-0 harvested copy is already gone. That is the "
        "paper's 'showstopping attack' against every computational scheme."
    )


if __name__ == "__main__":
    main()
