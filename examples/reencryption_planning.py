#!/usr/bin/env python3
"""Re-encryption feasibility planning (paper Section 3.2).

You run an archive. A cipher just broke. How long until your data is safe
again -- and was it ever going to be?  This example prices the response for
the four archives the paper cites, simulates the campaign day by day, and
extrapolates to the exabyte archives the paper envisions.

Run:  python examples/reencryption_planning.py
"""

from repro.analysis.report import render_table
from repro.core.reencryption import ReencryptionPlanner
from repro.storage.archive_model import EB, PAPER_ARCHIVES, exabyte_extrapolation
from repro.storage.simulator import simulate_reencryption


def main() -> None:
    print("=== the break response, per archive ===\n")
    rows = []
    for archive in PAPER_ARCHIVES:
        planner = ReencryptionPlanner(archive)
        # Scenario A: plain encrypted archive (AES everywhere).
        plain = planner.plan(at_rest_information_theoretic=False)
        # Scenario B: cascade archive with one unbroken layer left.
        cascade = planner.plan(False, cascade_layers_remaining=1)
        # Scenario C: secret-shared archive.
        its = planner.plan(at_rest_information_theoretic=True)
        rows.append(
            (
                archive.name,
                f"{archive.read_time_months:.2f}",
                f"{plain.campaign_months:.1f}",
                "yes" if plain.harvested_data_recoverable_by_adversary else "no",
                f"{cascade.campaign_months:.1f} (wrap)",
                its.kind.value.split(" (")[0],
            )
        )
    print(
        render_table(
            headers=[
                "Archive",
                "Read (mo)",
                "Re-encrypt (mo)",
                "Harvested lost?",
                "Cascade (mo)",
                "Secret-shared",
            ],
            rows=rows,
        )
    )

    print("\n=== the campaign, day by day (CERN EOS) ===\n")
    sim = simulate_reencryption(PAPER_ARCHIVES[2], record_every=90)
    for day in sim.timeline:
        bar = "#" * int(40 * (1 - day.vulnerable_fraction))
        print(
            f"  day {day.day:5d}  [{bar:<40}] "
            f"{100 * (1 - day.vulnerable_fraction):5.1f}% converted"
        )
    print(f"  total: {sim.months:.1f} months, during which every unconverted")
    print("  byte sits under the broken cipher.")

    print("\n=== the paper's closing extrapolation ===\n")
    for capacity, label in ((1 * EB, "1 EB"), (10 * EB, "10 EB"), (1000 * EB, "1 ZB")):
        estimate = exabyte_extrapolation(
            PAPER_ARCHIVES[0], capacity, throughput_scaling=0.5
        )
        print(f"  {label:>6s} archive, sqrt throughput scaling: "
              f"{estimate.total_years:8.1f} years to re-encrypt")
    print(
        "\n'All things considered, the practical time for re-encrypting an "
        "entire archive could turn into many years.'  -- Section 3.2"
    )


if __name__ == "__main__":
    main()
