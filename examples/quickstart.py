#!/usr/bin/env python3
"""Quickstart: store data in a policy-driven secure archive.

Demonstrates the library's front door: pick a point on the paper's
efficiency/security trade-off (an ArchivePolicy), build a SecureArchive over
a fleet of independent storage providers, and store/retrieve/maintain data.

Run:  python examples/quickstart.py
"""

from repro import (
    ArchivePolicy,
    ConfidentialityTarget,
    DeterministicRandom,
    SecureArchive,
    make_node_fleet,
)


def main() -> None:
    rng = DeterministicRandom(b"quickstart")

    # A fleet of 8 storage nodes, each run by an independent provider --
    # the deployment model POTSHARDS introduced and the paper assumes.
    nodes = make_node_fleet(8)

    # Policy: information-theoretic confidentiality (immune to any future
    # cryptanalysis), 5-way dispersal, any 3 shares reconstruct, shares
    # proactively refreshed every epoch.
    policy = ArchivePolicy(
        target=ConfidentialityTarget.LONG_TERM, n=5, t=3, renew_every_epochs=1
    )
    archive = SecureArchive(policy, nodes, rng)

    document = b"Deed of trust, 2026. Must remain confidential for 99 years."
    archive.store("deeds/2026/042", document)
    print(f"stored {len(document)} bytes under policy {policy.target.value!r}")

    # Retrieval fetches shares from the fleet and reconstructs.
    assert archive.retrieve("deeds/2026/042") == document
    print("retrieved and verified")

    # Storage cost is measured, not estimated: this is the paper's trade-off.
    print(f"measured storage overhead: {archive.storage_overhead():.2f}x")
    print(f"at-rest security: {archive.at_rest_security.label}")

    # Long-term maintenance: each epoch refreshes every object's shares
    # (stale stolen shares become useless) and re-signs the integrity chain.
    for _ in range(3):
        report = archive.advance_epoch()
        print(
            f"epoch {report.epoch}: renewed {report.objects_renewed} object(s), "
            f"{report.renewal_bytes} bytes of share traffic, "
            f"chain length {len(archive.chain)}"
        )

    assert archive.retrieve("deeds/2026/042") == document
    print("document intact after 3 epochs of maintenance")

    # Compare against the cheap computational policy: lower cost, weaker
    # long-term story (see examples/hndl_attack_demo.py for the difference).
    cheap = SecureArchive(
        ArchivePolicy(
            target=ConfidentialityTarget.COMPUTATIONAL,
            n=6,
            t=4,
            renew_every_epochs=None,
        ),
        make_node_fleet(7),
        DeterministicRandom(b"cheap"),
    )
    cheap.store("deeds/2026/042", document)
    print(
        f"\ncomputational policy (AONT-RS): {cheap.storage_overhead():.2f}x overhead, "
        f"at-rest security: {cheap.at_rest_security.label}"
    )
    print("the gap between those two lines is the paper's whole subject.")


if __name__ == "__main__":
    main()
