#!/usr/bin/env python3
"""Proactive secret sharing vs the mobile adversary (paper Section 3.2).

A mobile adversary corrupts one storage node per year. Without share
renewal it accumulates a threshold in t years and reads the secret; with
Herzberg renewal between corruptions its haul never combines. The defense
has a price -- every shareholder sends a share-sized message to every other
shareholder, every epoch -- and this example measures both sides.

Run:  python examples/proactive_refresh.py
"""

from repro import DeterministicRandom
from repro.adversary.mobile import MobileAdversary, run_mobile_campaign
from repro.secretsharing.proactive import ProactiveShareGroup
from repro.secretsharing.shamir import ShamirSecretSharing

SECRET = b"launch codes, er, pension records" * 8
N, T = 5, 3


def campaign(renew_every):
    scheme = ShamirSecretSharing(N, T)
    group = ProactiveShareGroup(
        scheme, scheme.split(SECRET, DeterministicRandom(b"dealer"))
    )
    adversary = MobileAdversary(budget=1, rng=DeterministicRandom(b"thief"))
    return run_mobile_campaign(
        group,
        adversary,
        epochs=30,
        renew_every=renew_every,
        rng=DeterministicRandom(b"renewal"),
    )


def main() -> None:
    print(f"secret shared ({T} of {N}); adversary corrupts 1 node per epoch\n")

    for cadence, label in ((None, "no renewal"), (4, "renew every 4 epochs"),
                           (1, "renew every epoch")):
        outcome = campaign(cadence)
        if outcome.compromised:
            print(
                f"  {label:24s} COMPROMISED at epoch {outcome.compromise_epoch} "
                f"({outcome.shares_stolen} shares stolen)"
            )
            assert outcome.recovered_secret == SECRET
        else:
            print(
                f"  {label:24s} survived {outcome.epochs_run} epochs "
                f"({outcome.shares_stolen} stale shares stolen, all useless)"
            )

    print("\nthe price of the defense (per object, per epoch):\n")
    object_size = 1 << 20  # 1 MiB
    secret = DeterministicRandom(b"big").bytes(object_size)
    for n in (3, 5, 9):
        t = (n + 1) // 2
        scheme = ShamirSecretSharing(n, t)
        group = ProactiveShareGroup(
            scheme, scheme.split(secret, DeterministicRandom(b"d2"))
        )
        report = group.renew(DeterministicRandom(b"r2"))
        print(
            f"  n={n:2d}: {report.messages:3d} messages, "
            f"{report.bytes_sent / (1 << 20):7.1f} MiB moved for a 1 MiB object "
            f"({report.bytes_sent / object_size:.0f}x amplification)"
        )

    print(
        "\nn^2 messages of full share size, per object, per epoch: for an "
        "archive with billions of objects this is the paper's 'may become "
        "impractical for the same reasons as re-encryption'."
    )


if __name__ == "__main__":
    main()
