#!/usr/bin/env python3
"""The crypto-agility playbook: what each design actually does on break day.

Puts the library's response machinery side by side.  One archive profile
(CERN EOS scale), one break event (AES falls), four postures:

1. plain encryption  -> full re-encryption campaign (and HNDL losses);
2. cascade           -> wrap campaign (same I/O, no decrypt, no user keys);
3. delegated (UPRE)  -> KEM rotation is free, DEM migration still pays;
4. secret sharing    -> nothing to do.

Run:  python examples/crypto_agility_playbook.py
"""

from repro import BreakTimeline, DeterministicRandom
from repro.core.keymgmt import KeyManager
from repro.core.reencryption import ReencryptionPlanner
from repro.core.scheduler import EpochScheduler
from repro.crypto.proxy import ProxyReEncryption, keystream_migration_pad
from repro.storage.archive_model import PAPER_ARCHIVES

ARCHIVE = PAPER_ARCHIVES[2]  # CERN EOS: 230 PB @ 909 TB/day
BREAK_EPOCH = 10


def main() -> None:
    timeline = BreakTimeline()
    timeline.schedule_break("aes-256-ctr", BREAK_EPOCH)

    print(f"archive: {ARCHIVE.name}, {ARCHIVE.capacity_tb / 1000:.0f} PB")
    print(f"event:   AES-256 falls at epoch {BREAK_EPOCH}\n")

    planner = ReencryptionPlanner(ARCHIVE)
    keys = KeyManager(rng=DeterministicRandom(b"km"))
    for i in range(3):
        keys.issue(f"dataset-{i}")

    # Wire the response into the epoch clock, as an operator would.
    scheduler = EpochScheduler(timeline=timeline)
    responses: list[str] = []

    def on_break(epoch: int, names: list[str]) -> None:
        if "aes-256-ctr" not in names:
            return
        keys.advance_epoch(epoch)
        exposed = keys.supersede_cipher(timeline, "chacha20")
        responses.append(
            f"epoch {epoch}: keys rotated for {len(exposed)} datasets "
            "(new data safe immediately; old data needs a campaign)"
        )
        for posture, plan in (
            ("plain encryption", planner.plan(False)),
            ("cascade (1 layer left)", planner.plan(False, cascade_layers_remaining=1)),
            ("secret-shared", planner.plan(True)),
        ):
            responses.append(f"  {posture:24s} {plan.summary()}")

    scheduler.on_break(on_break)
    scheduler.advance(BREAK_EPOCH + 2)
    for line in responses:
        print(line)

    print("\ndelegated re-encryption (UPRE) changes who does the work, not how much:")
    pre = ProxyReEncryption()
    rng = DeterministicRandom(b"upre")
    old_owner = pre.generate_keypair(rng)
    new_owner = pre.generate_keypair(rng)
    ciphertext = pre.encrypt(old_owner.public, b"dataset index block" * 100, rng)
    rotated = pre.reencrypt(pre.rekey(old_owner, new_owner), ciphertext)
    assert pre.decrypt(new_owner, rotated) == b"dataset index block" * 100
    capsule_bytes = (pre.group.p.bit_length() + 7) // 8
    print(f"  ownership rotation: {capsule_bytes} bytes per object (capsule only)")

    object_bytes = 1 << 20
    pad = keystream_migration_pad(b"\x01" * 32, b"\x02" * 32, object_bytes)
    print(
        f"  cipher migration:   {len(pad):,} pad bytes + read + write per 1 MiB "
        "object -- the Section 3.2 bill, unavoidable"
    )

    print(
        f"\nand the harvested copies? Only the secret-shared posture has an "
        f"answer: the other three lost every byte exfiltrated before epoch "
        f"{BREAK_EPOCH} the moment the break landed."
    )


if __name__ == "__main__":
    main()
