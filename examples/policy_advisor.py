#!/usr/bin/env python3
"""The policy advisor: navigating "no one size fits all".

Four archive owners with different requirements ask the advisor for a
policy. Three get one (and we verify it delivers); one discovers their
requirements collide with the perfect-secrecy storage bound -- the paper's
trade-off, hit as an error message instead of a surprise in year 40.

Run:  python examples/policy_advisor.py
"""

from repro import DeterministicRandom, SecureArchive, make_node_fleet
from repro.core.advisor import Requirements, recommend

SCENARIOS = {
    "tax authority (7-year retention, cheap)": Requirements(
        confidentiality_years=7,
        max_storage_overhead=1.8,
        min_loss_tolerance=2,
        providers=6,
    ),
    "national archive (150-year secrecy)": Requirements(
        confidentiality_years=150,
        max_storage_overhead=6.0,
        min_loss_tolerance=2,
        providers=5,
    ),
    "genome bank (century secrecy, tight budget)": Requirements(
        confidentiality_years=100,
        max_storage_overhead=3.5,
        min_loss_tolerance=1,
        providers=8,
    ),
    "startup (century secrecy at 1.3x cost??)": Requirements(
        confidentiality_years=100,
        max_storage_overhead=1.3,
        providers=6,
    ),
}


def main() -> None:
    sample = DeterministicRandom(b"sample").bytes(2000)
    for owner, requirements in SCENARIOS.items():
        print(f"--- {owner}")
        recommendation = recommend(requirements)
        print(recommendation.explain())
        if recommendation.feasible:
            archive = SecureArchive(
                recommendation.policy,
                make_node_fleet(requirements.providers + 2),
                DeterministicRandom(owner.encode()),
            )
            archive.store("sample", sample)
            assert archive.retrieve("sample") == sample
            print(
                f"verified: {archive.storage_overhead():.2f}x measured, "
                f"at rest {archive.at_rest_security.label}"
            )
        print()


if __name__ == "__main__":
    main()
