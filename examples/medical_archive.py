#!/usr/bin/env python3
"""A century-scale medical archive: the paper's scenario, fully assembled.

A hospital must keep records confidential and intact for 100 years, across
provider failures, cryptanalytic breaks, side-channel leakage, and a mobile
adversary. This example composes the library's pieces the way Section 4
suggests a real system would:

- data plane: Shamir shares across independent providers, proactively
  refreshed (the POTSHARDS/LINCOS point in the design space);
- key/audit plane: Pedersen-commitment timestamp chain, renewed onto a
  hash-based signer before the old signer's scheme breaks;
- operations: node failures injected and tolerated; a mobile adversary and
  a harvesting adversary both walk away with nothing.

Run:  python examples/medical_archive.py
"""

from repro import (
    ArchivePolicy,
    BreakTimeline,
    ConfidentialityTarget,
    DeterministicRandom,
    SecureArchive,
    make_node_fleet,
)
from repro.adversary.harvest import HarvestingAdversary
from repro.core.scheduler import EpochScheduler
from repro.crypto.registry import global_registry

RECORDS = {
    "records/1924-0001": b"admission notes " * 64,
    "records/1924-0002": b"pathology slides digitized " * 40,
    "records/1924-0003": b"genome sequence fragment " * 50,
}
YEARS = 100


def main() -> None:
    rng = DeterministicRandom(b"hospital")
    nodes = make_node_fleet(10)
    policy = ArchivePolicy(
        target=ConfidentialityTarget.LONG_TERM, n=5, t=3, renew_every_epochs=1
    )
    archive = SecureArchive(policy, nodes, rng)

    # The future, per the paper: every computational primitive eventually
    # falls. Schedule breaks across the century.
    timeline = BreakTimeline()
    timeline.schedule_break("aes-256-ctr", 25)
    timeline.schedule_break("toy-rsa", 30)
    timeline.schedule_break("chacha20", 60)
    timeline.schedule_break("sha256", 80)

    print(f"ingesting {len(RECORDS)} records...")
    for object_id, record in RECORDS.items():
        archive.store(object_id, record)
    print(f"  storage overhead: {archive.storage_overhead():.1f}x "
          f"(the price of {archive.at_rest_security.label} at rest)\n")

    # Year-0 harvest: the adversary exfiltrates two shares of everything
    # and will retry after every break for a century.
    adversary = HarvestingAdversary(timeline=timeline)
    for object_id in RECORDS:
        haul = archive.steal_at_rest(object_id, share_indices=[1, 2])

        def attempt(tl, epoch, object_id=object_id, haul=haul):
            return archive.attempt_recovery(object_id, haul, tl, epoch)

        adversary.harvest(object_id, 0, attempt)

    # A century of operations on one clock.
    scheduler = EpochScheduler(timeline=timeline, years_per_epoch=1.0)
    scheduler.on_break(
        lambda epoch, names: print(
            f"  year {epoch:3d}: cryptanalysis broke {', '.join(names)} -- "
            "archive unaffected (nothing computational protects the data)"
        )
    )
    failures = {"count": 0}

    def maintain(epoch: int) -> None:
        archive.advance_epoch()
        # A provider dies roughly every 20 years and is replaced.
        if epoch % 20 == 0:
            victim = archive.nodes[(epoch // 20) % len(archive.nodes)]
            victim.set_online(False)
            failures["count"] += 1

    scheduler.every(1, "maintenance", maintain)
    print("running 100 years of maintenance...")
    scheduler.advance(YEARS)

    print(f"\nafter {YEARS} years ({failures['count']} provider failures):")
    for object_id, record in RECORDS.items():
        recovered = archive.retrieve(object_id)
        assert recovered == record
        print(f"  {object_id}: intact ({len(recovered)} bytes)")

    print("\nadversary's best attempts across the century:")
    wins = [o for o in adversary.attempt_all(epoch=YEARS) if o.success]
    for item in adversary.items:
        first = adversary.first_success_epoch(item.label, horizon=YEARS, step=10)
        assert first is None
    print(f"  {len(adversary.items)} harvested hauls, {len(wins)} decrypted: "
          "the year-0 shares were re-randomized away decades ago,")
    print("  and no cryptanalytic break ever mattered.")

    broken = timeline.broken_primitives(YEARS)
    registered = global_registry()
    print(f"\nprimitives broken by year {YEARS}: {', '.join(broken)}")
    print("records still confidential. That is what the n-times storage bought.")


if __name__ == "__main__":
    main()
