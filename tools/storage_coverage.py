#!/usr/bin/env python
"""Line-coverage floor for the storage substrate and service layer.

``coverage.py`` is not part of this environment, so the gate is built on
:mod:`trace`: run the storage/service-facing test files under
``trace.Trace`` and compare the executed-line set against the executable
lines of every module in the tracked packages (``src/repro/storage`` and
``src/repro/service``).  Executable lines are recovered by compiling each
file and walking the bytecode's ``co_lines`` tables, which matches what
the trace hook can actually report (docstrings, ``else:`` and other
non-statement lines never appear in either set).

The floor applies *per package*: each tracked package must independently
clear it, so a well-covered storage layer cannot subsidize an untested
service path (or vice versa).

Usage::

    python tools/storage_coverage.py            # enforce the default floor
    python tools/storage_coverage.py --floor=80 # relax/tighten the floor
    python tools/storage_coverage.py --verbose  # per-file missed lines

Exit status is 0 when every tracked package meets the floor, 1 otherwise.
"""

from __future__ import annotations

import sys
import trace
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Packages held to the coverage floor.
TARGETS = [
    SRC / "repro" / "storage",
    SRC / "repro" / "service",
]

#: Test files exercising the tracked packages (kept fast: no chaos marker,
#: and the 200-seed tiering property suite is skipped under trace -- its
#: invariants are enforced by the plain pytest run; here it would only
#: re-cover lines the tiering unit tests already hit, at ~4x trace cost).
TEST_FILES = [
    "tests/test_storage.py",
    "tests/test_faults.py",
    "tests/test_workload_audit.py",
    "tests/test_observability.py",
    "tests/test_analysis.py",
    "tests/test_service.py",
    "tests/test_tiering.py",
]

PYTEST_ARGS = ["-q", "-p", "no:cacheprovider", "-k", "not property_suite"]

#: Raised from 90 once both packages measured ~95%: the floor tracks the
#: coverage actually achieved so new code (the migration paths included)
#: is held to the bar the existing code already clears.
DEFAULT_FLOOR = 94.0


def executable_lines(path: Path) -> set[int]:
    """Line numbers that can fire the trace hook in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    # The def/class lines of module-level bindings fire at import time and
    # count; what never fires is line 0 sentinels, filtered above.
    return lines


def run_tests_traced() -> trace.CoverageResults:
    import pytest

    tracer = trace.Trace(count=1, trace=0)
    exit_code = tracer.runfunc(pytest.main, [*PYTEST_ARGS, *TEST_FILES])
    if exit_code != 0:
        print(f"storage-coverage: test run failed (pytest exit {exit_code})")
        sys.exit(1)
    return tracer.results()


def package_report(
    target: Path, executed: dict[str, set[int]], floor: float, verbose: bool
) -> bool:
    """Print one package's table; returns True when it clears the floor."""
    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(target.glob("*.py")):
        want = executable_lines(path)
        got = executed.get(str(path), set()) & want
        total_lines += len(want)
        total_hit += len(got)
        pct = 100.0 * len(got) / len(want) if want else 100.0
        rows.append((path.name, pct, len(got), len(want), sorted(want - got)))

    label = target.relative_to(REPO)
    print(f"\n{label} coverage (floor {floor:.0f}%):")
    for name, pct, hit, want, missed in rows:
        print(f"  {name:<20} {pct:6.1f}%  ({hit}/{want})")
        if verbose and missed:
            print(f"    missed lines: {missed}")
    overall = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"  {'TOTAL':<20} {overall:6.1f}%  ({total_hit}/{total_lines})")

    if overall < floor:
        print(f"storage-coverage: FAIL -- {overall:.1f}% is below the "
              f"{floor:.0f}% floor for {label}")
        return False
    return True


def main(argv: list[str]) -> int:
    floor = DEFAULT_FLOOR
    verbose = "--verbose" in argv
    for arg in argv:
        if arg.startswith("--floor="):
            floor = float(arg.split("=", 1)[1])

    sys.path.insert(0, str(SRC))
    results = run_tests_traced()
    executed: dict[str, set[int]] = {}
    for (filename, line), hits in results.counts.items():
        if hits > 0:
            executed.setdefault(filename, set()).add(line)

    ok = True
    for target in TARGETS:
        ok = package_report(target, executed, floor, verbose) and ok
    if not ok:
        return 1
    print("storage-coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
