"""Benchmark ratchet: fail the build on a >20% throughput regression.

Reads ``BENCH_throughput.json`` (written by ``make bench-json``) and, for
every primitive in the current warm-median measurement, compares against
the **best** value that primitive ever reached in the append-only
``history`` list (entries from other commits).  A current number below
``RATCHET_FRACTION`` of that best is a regression and exits nonzero --
performance once achieved must be defended, exactly like a coverage floor.

The 20% slack absorbs machine noise that survives the median-of-5 harness;
genuine algorithmic regressions (a codec falling off its packed path, a
cipher losing its slab batching) are order-of-magnitude, not 20%.

Run via ``make bench-ratchet`` (part of ``make all``, after bench-json).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SUMMARY = REPO / "BENCH_throughput.json"

#: A current measurement below this fraction of the historical best fails.
RATCHET_FRACTION = 0.8


def best_historical(
    history: list[dict], current_commit: str, units: str
) -> dict[str, float]:
    """Best throughput per primitive over history entries from other commits.

    Only entries measured with the same *units* participate: pre-ratchet
    history (single-run numbers) stays in the file as provenance but a
    single noisy run is not a defensible floor for a median-of-5 harness.
    """
    best: dict[str, float] = {}
    for entry in history:
        if entry.get("commit") == current_commit:
            continue
        if entry.get("units") != units:
            continue
        for name, value in entry.get("throughput", {}).items():
            if value > best.get(name, 0.0):
                best[name] = value
    return best


def check(summary: dict) -> list[str]:
    """Return human-readable regression lines (empty = ratchet holds)."""
    current = summary.get("throughput", {})
    best = best_historical(
        summary.get("history", []), summary.get("commit"), summary.get("units")
    )
    failures = []
    for name, value in sorted(current.items()):
        reference = best.get(name)
        if reference is None:
            continue  # first measurement of a new primitive
        floor = reference * RATCHET_FRACTION
        if value < floor:
            failures.append(
                f"  {name}: {value:.1f} MB/s < {floor:.1f} "
                f"(best historical {reference:.1f}, slack {RATCHET_FRACTION:.0%})"
            )
    return failures


def main() -> int:
    if not SUMMARY.is_file():
        raise SystemExit(
            f"bench-ratchet: {SUMMARY} missing -- run `make bench-json` first"
        )
    summary = json.loads(SUMMARY.read_text())
    failures = check(summary)
    compared = len(
        set(summary.get("throughput", {}))
        & set(
            best_historical(
                summary.get("history", []), summary.get("commit"), summary.get("units")
            )
        )
    )
    if failures:
        print("bench-ratchet: throughput regression(s) vs best historical entry:")
        print("\n".join(failures))
        return 1
    print(
        f"bench-ratchet: OK ({compared} primitives within "
        f"{1 - RATCHET_FRACTION:.0%} of their best historical throughput)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
