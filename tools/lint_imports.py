"""Dead-import gate: fail if a module imports a name it never uses.

Stdlib-only (ast + pathlib): walks every ``*.py`` under the checked roots,
collects the names each ``import``/``from ... import`` statement binds, then
scans the rest of the tree for any load of that name (attribute chains count
via their root: ``np.take`` uses ``np``).  Unused imports rot into silent
dependencies and mask real ones -- this is the cheap mechanical check that
keeps ``import struct``-style leftovers out of the tree.

Deliberate re-export patterns are exempt:

- ``from __future__ import ...`` (compiler directive, never "used"),
- names listed in the module's ``__all__``,
- ``import x as x`` / ``from m import x as x`` (PEP 484 re-export idiom),
- any import line carrying ``# noqa: unused-import-ok``,
- ``__init__.py`` files (package namespace assembly is all re-exports).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOTS = ("src", "benchmarks", "tests", "examples", "tools")


def _declared_all(tree: ast.Module) -> set[str]:
    """Names a module re-exports via a literal ``__all__`` assignment."""
    names: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for element in ast.walk(node.value):
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
    return names


def _used_names(tree: ast.Module) -> set[str]:
    """Every identifier loaded anywhere in the module."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def _imported_bindings(tree: ast.Module):
    """Yield (lineno, bound_name, display) for each imported name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.asname == alias.name:
                    continue  # `import x as x` re-export idiom
                yield node.lineno, bound, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue
                bound = alias.asname or alias.name
                yield node.lineno, bound, f"{node.module or '.'}.{alias.name}"


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    exempt = _declared_all(tree)
    used = _used_names(tree)
    # A string annotation or docstring-level reference ("np.ndarray" under
    # `from __future__ import annotations`) still counts as use: names in
    # string annotations appear as plain ast.Constant strings; check them.
    string_refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in node.value.replace(".", " ").split():
                if token.isidentifier():
                    string_refs.add(token)
    problems = []
    for lineno, bound, display in _imported_bindings(tree):
        line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if "noqa: unused-import-ok" in line:
            continue
        if bound in exempt or bound in used or bound in string_refs:
            continue
        problems.append(f"{path}:{lineno}: '{display}' imported but unused")
    return problems


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    problems: list[str] = []
    for root in ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if path.name == "__init__.py":
                continue
            problems.extend(check_file(path))
    if problems:
        print("lint-imports: dead imports found:")
        print("\n".join(problems))
        return 1
    print("lint-imports: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
