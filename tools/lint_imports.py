"""Back-compat shim: the dead-import gate moved into archlint (ARCH002).

Kept so ``python tools/lint_imports.py`` (scripts, muscle memory, older
docs) still works; the checking logic now lives in
``tools/archlint/rules/imports.py`` with identical semantics, plus per-line
``# noqa: ARCH002`` suppression (the legacy ``# noqa: unused-import-ok``
tag is still honored).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from archlint.cli import main  # noqa: E402 - path bootstrap must precede import

_REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":
    sys.exit(main(["--select", "ARCH002", "--project-root", str(_REPO_ROOT)]))
