#!/usr/bin/env python3
"""Deterministic lockset stress harness for the multi-threaded hot path.

archlint's ARCH012 proves lock discipline *statically*; this harness attacks
the same shared state *dynamically*: barrier-synchronized threads hammer the
GF(256) kernel, the plan and key-schedule caches, and the metrics registry
under seeded schedules while chaos threads clear caches mid-flight, and every
phase asserts the outputs a sequential run would have produced -- byte-
identical matmuls and ciphertexts at workers in {1, 2, 8}, exact metric
counts, deterministic snapshots.

The two views are chained together so they cannot drift: the harness declares
which shared-state entries each phase exercises (``EXERCISED``/``READONLY``),
then cross-checks that declaration against the inventory ARCH012 computes
from the AST.  A new module-level cache that becomes worker-reachable fails
the harness until a stress phase covers it; a stale harness entry naming
state that no longer exists fails the other direction.

Run it::

    python tools/racecheck.py            # full run (make racecheck)
    python tools/racecheck.py --quick    # reduced iterations (CI smoke)
    python tools/racecheck.py --seed 7   # different seeded schedule

Exit status 0 means every phase held; any assertion failure is a real
ordering bug (no phase depends on sleeps or timing luck).
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "tools"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

import numpy as np  # noqa: E402

from repro import config as rconfig  # noqa: E402
from repro.crypto import aes  # noqa: E402
from repro.gmath import kernel  # noqa: E402
from repro.obs import metrics  # noqa: E402

#: Worker counts the byte-identity contract is pinned at (mirrors the
#: acceptance criteria: single-thread, minimal sharding, oversubscribed).
WORKER_SWEEP = (1, 2, 8)

#: Client threads per stress phase (enough to contend, small enough that a
#: laptop CI run stays fast).
THREADS = 4

#: Thread-shared state each phase hammers, keyed by the static inventory's
#: qualified name.  The cross-check phase fails if one of these names
#: vanishes from the static view (stale harness) or if the static view
#: grows a worker-reachable name in a stressed module that is listed in
#: neither table (uncovered shared state).
EXERCISED = {
    "repro.gmath.kernel._vandermonde_cached": "kernel phase: concurrent plan builds + clears",
    "repro.gmath.kernel._vandermonde_inverse_cached": "kernel phase: concurrent plan builds + clears",
    "repro.gmath.kernel._lagrange_matrix_cached": "kernel phase: concurrent plan builds + clears",
    "repro.gmath.kernel._lagrange_zero_cached": "kernel phase: concurrent plan builds + clears",
    "repro.gmath.kernel._rs_decode_cached": "kernel phase: concurrent plan builds + clears",
    "repro.gmath.kernel._packed_tables": "kernel phase: packed matmuls race cache clears",
    "repro.gmath.kernel._POOL": "kernel phase: worker-count sweep rebuilds the pool",
    "repro.gmath.kernel._POOL_SIZE": "kernel phase: worker-count sweep rebuilds the pool",
    "repro.gmath.kernel._PLAN_FUNCTIONS": "kernel phase: clear_plan_caches/plan_cache_info chaos",
    "repro.config._kernel_workers": "kernel phase: set_kernel_workers sweep",
    "repro.crypto.aes._expand_key": "aes phase: concurrent CTR transforms race clear_key_caches",
    "repro.crypto.aes._round_key_words": "aes phase: concurrent CTR transforms race clear_key_caches",
    "repro.obs.metrics._REGISTRY": "metrics phase: concurrent inc/observe/set + snapshots",
}

#: Inventory entries that are written at import time only and read-only
#: forever after; no stress phase mutates them, and ARCH012 would flag any
#: code that started to.
READONLY = {
    "repro.gmath.kernel._PAD_DTYPE": "dtype lookup table, import-time constant",
    "repro.crypto.aes._XT": "xtime lookup table, import-time constant",
}

#: Modules whose worker-reachable state must be fully covered by the two
#: tables above.  (Other modules' singletons -- storage catalogs, policy
#: tables -- are exercised by their own suites.)
STRESSED_MODULES = (
    "repro.gmath.kernel",
    "repro.crypto.aes",
    "repro.obs.metrics",
    "repro.config",
)


class Phase:
    """Tiny pass/fail ledger so one run reports every phase."""

    def __init__(self) -> None:
        self.failures: list[str] = []

    def check(self, ok: bool, label: str) -> None:
        marker = "ok" if ok else "FAIL"
        print(f"  [{marker}] {label}")
        if not ok:
            self.failures.append(label)


def _run_threads(worker_fns) -> list[Exception]:
    """Start one thread per callable behind a common barrier, join them all,
    and surface any exception (a worker that died silently would otherwise
    turn a crash into a hang-free false pass)."""
    barrier = threading.Barrier(len(worker_fns))
    errors: list[Exception] = []
    errors_lock = threading.Lock()

    def runner(fn):
        try:
            barrier.wait()
            fn()
        except Exception as exc:  # noqa: ARCH001 -- harness records any worker death
            with errors_lock:
                errors.append(exc)

    threads = [threading.Thread(target=runner, args=(fn,)) for fn in worker_fns]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


# -- phase 1: static/dynamic cross-check ---------------------------------------


def check_inventory(phase: Phase) -> None:
    """Pin the harness's coverage tables to ARCH012's static inventory."""
    from archlint.concurrency import analyze
    from archlint.core import FileContext

    contexts = {}
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        contexts[rel] = FileContext(path, rel, path.read_text())
    analysis = analyze(contexts, "src")
    inventory = {state.qualname for state in analysis.inventory()}

    stale = sorted((set(EXERCISED) | set(READONLY)) - inventory)
    phase.check(
        not stale,
        "every harness coverage entry exists in the static inventory"
        + (f" (stale: {', '.join(stale)})" if stale else ""),
    )

    must_cover = {
        name
        for name in analysis.thread_shared
        if any(name.startswith(mod + ".") for mod in STRESSED_MODULES)
    }
    uncovered = sorted(must_cover - set(EXERCISED) - set(READONLY))
    phase.check(
        not uncovered,
        "every worker-reachable state in stressed modules has a stress phase"
        + (f" (uncovered: {', '.join(uncovered)})" if uncovered else ""),
    )

    entry_count = len(analysis.entry_points)
    phase.check(
        entry_count >= 2,
        f"static analysis still finds thread entry points ({entry_count} found)",
    )


# -- phase 2: kernel byte-identity under cache chaos ---------------------------


def check_kernel(phase: Phase, seed: int, iterations: int) -> None:
    """Sharded matmuls + plan builds race maintenance sweeps; outputs must
    be byte-identical to the sequential single-worker run at every worker
    count."""
    rng = np.random.default_rng(seed)
    # Wide enough for the packed + sharded paths (see PACKED_MIN_WIDTH /
    # SHARD_MIN_BLOCK), small enough to keep the phase under a second per
    # worker setting.
    shapes = [(4, 6, 1 << 17), (8, 10, 1 << 16), (3, 5, 4096)]
    cases = [
        (
            rng.integers(0, 256, size=(m, k), dtype=np.uint8),
            rng.integers(0, 256, size=(k, width), dtype=np.uint8),
        )
        for m, k, width in shapes
    ]
    plan_keys = [tuple(range(1, 1 + n)) for n in (3, 5, 8)]

    rconfig.set_kernel_workers(1)
    kernel.clear_plan_caches()
    references = [kernel.gf256_matmul(a, b).tobytes() for a, b in cases]

    for workers in WORKER_SWEEP:
        rconfig.set_kernel_workers(workers)
        kernel.clear_plan_caches()
        stop = threading.Event()
        mismatches: list[str] = []
        result_lock = threading.Lock()

        def hammer() -> None:
            for i in range(iterations):
                for case_index, (a, b) in enumerate(cases):
                    out = kernel.gf256_matmul(a, b).tobytes()
                    if out != references[case_index]:
                        with result_lock:
                            mismatches.append(f"case {case_index} iter {i}")
                for xs in plan_keys:
                    plan = kernel.vandermonde_plan(xs, len(xs))
                    if plan.flags.writeable:
                        with result_lock:
                            mismatches.append(f"writable plan {xs}")

        def chaos() -> None:
            while not stop.is_set():
                kernel.clear_plan_caches()
                kernel.plan_cache_info()

        chaos_thread = threading.Thread(target=chaos)
        chaos_thread.start()
        try:
            errors = _run_threads([hammer] * THREADS)
        finally:
            stop.set()
            chaos_thread.join()

        phase.check(
            not errors and not mismatches,
            f"gf256_matmul byte-identical under cache chaos at workers={workers}"
            + (f" ({(errors + mismatches)[0]})" if errors or mismatches else ""),
        )

    rconfig.set_kernel_workers(None)
    info = kernel.plan_cache_info()
    phase.check(
        set(info) == set(kernel._PLAN_FUNCTIONS),
        "plan_cache_info reports one consistent cut of every cache",
    )


# -- phase 3: AES key-schedule chaos -------------------------------------------


def check_aes(phase: Phase, seed: int, iterations: int) -> None:
    """Concurrent CTR transforms race ``clear_key_caches``; every ciphertext
    must equal the sequential reference (schedules are pure functions of the
    key, so a mid-flight clear may only cost a rebuild, never a byte)."""
    rng = np.random.default_rng(seed + 1)
    key = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
    nonce = bytes(rng.integers(0, 256, size=12, dtype=np.uint8))
    data = bytes(rng.integers(0, 256, size=65536, dtype=np.uint8))

    aes.clear_key_caches()
    reference = aes.aes_ctr_transform(key, nonce, data).tobytes()

    stop = threading.Event()
    mismatches: list[str] = []
    result_lock = threading.Lock()

    def hammer() -> None:
        for i in range(iterations):
            out = aes.aes_ctr_transform(key, nonce, data).tobytes()
            if out != reference:
                with result_lock:
                    mismatches.append(f"iter {i}")

    def chaos() -> None:
        while not stop.is_set():
            aes.clear_key_caches()

    chaos_thread = threading.Thread(target=chaos)
    chaos_thread.start()
    try:
        errors = _run_threads([hammer] * THREADS)
    finally:
        stop.set()
        chaos_thread.join()

    phase.check(
        not errors and not mismatches,
        "AES-CTR ciphertext byte-identical under clear_key_caches chaos"
        + (f" ({(errors + mismatches)[0]})" if errors or mismatches else ""),
    )

    schedule = aes._expand_key(key)
    phase.check(
        not schedule.flags.writeable,
        "cached key schedule is frozen (writeable=False)",
    )


# -- phase 4: metrics exactness + snapshot determinism -------------------------


def check_metrics(phase: Phase, seed: int, iterations: int) -> None:
    """Concurrent inc/observe/set lose no updates, and two identically
    seeded runs produce byte-identical snapshots regardless of schedule."""

    def stress_run() -> dict:
        rng = np.random.default_rng(seed + 2)
        # Integer-valued observations keep float addition exact, so the
        # histogram sum is schedule-independent (no fp reassociation drift).
        values = rng.integers(1, 1024, size=iterations).astype(float)

        with metrics.use_registry() as registry:
            snapshot_errors: list[Exception] = []

            def hammer() -> None:
                for value in values:
                    registry.counter("racecheck_events_total").inc()
                    registry.counter("racecheck_bytes_total", kind="payload").inc(7)
                    registry.gauge("racecheck_inflight").inc()
                    registry.histogram("racecheck_latency_seconds").observe(value)
                    registry.gauge("racecheck_inflight").dec()
                    registry.gauge("racecheck_last_value").set(float(value))

            def prober() -> None:
                # Snapshots taken mid-flight must never tear or raise; their
                # *content* is only pinned after the barrier'd workers join.
                try:
                    for _ in range(50):
                        snap = registry.snapshot()
                        hist = snap["histograms"].get("racecheck_latency_seconds")
                        if hist and sum(c for _, c in hist["buckets"]) != hist["count"]:
                            raise AssertionError("torn histogram snapshot")
                except Exception as exc:  # noqa: ARCH001 -- harness records probe death
                    snapshot_errors.append(exc)

            probe_thread = threading.Thread(target=prober)
            probe_thread.start()
            errors = _run_threads([hammer] * THREADS)
            probe_thread.join()
            if errors or snapshot_errors:
                raise (errors + snapshot_errors)[0]
            return registry.snapshot()

    snap_a = stress_run()
    snap_b = stress_run()

    counters = snap_a["counters"]
    expected = THREADS * iterations
    phase.check(
        counters.get("racecheck_events_total") == expected,
        f"no lost counter increments ({counters.get('racecheck_events_total')} == {expected})",
    )
    phase.check(
        counters.get("racecheck_bytes_total{kind=payload}") == 7 * expected,
        "labeled counter exact under contention",
    )
    phase.check(
        snap_a["gauges"].get("racecheck_inflight") == 0.0,
        "gauge inc/dec pairs cancel exactly",
    )
    hist = snap_a["histograms"]["racecheck_latency_seconds"]
    phase.check(hist["count"] == expected, "histogram count exact under contention")
    phase.check(
        sum(count for _, count in hist["buckets"]) == hist["count"],
        "histogram buckets sum to count",
    )
    phase.check(
        snap_a == snap_b,
        "two identically seeded stress runs produce identical snapshots",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=40, help="hammer iterations per thread")
    parser.add_argument("--seed", type=int, default=1234, help="schedule seed")
    parser.add_argument("--quick", action="store_true", help="reduced iterations (CI smoke)")
    args = parser.parse_args(argv)
    iterations = 8 if args.quick else args.iterations

    phase = Phase()
    print("racecheck: static/dynamic inventory cross-check")
    check_inventory(phase)
    print(f"racecheck: kernel byte-identity (workers {WORKER_SWEEP}, {iterations} iters)")
    check_kernel(phase, args.seed, iterations)
    print("racecheck: AES key-schedule chaos")
    check_aes(phase, args.seed, iterations)
    print("racecheck: metrics exactness + snapshot determinism")
    check_metrics(phase, args.seed, max(iterations * 5, 40))

    if phase.failures:
        print(f"racecheck: FAILED ({len(phase.failures)} failing check(s))")
        return 1
    print("racecheck: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
