"""Machine-readable benchmark summary: BENCH_throughput.json at repo root.

Parses ``benchmarks/results/throughput.txt`` (the cold/warm median-of-5
artifact the throughput benchmark regenerates) into ``{operation: MB/s}``
maps, stamps the commit and date, and maintains an **append-only history**
of per-commit warm throughput so ``tools/bench_ratchet.py`` can gate
regressions against the best entry ever recorded.

Run ``make bench-json`` (which regenerates the artifact first) or invoke
directly to summarize an existing results file.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results" / "throughput.txt"
OUTPUT = REPO / "BENCH_throughput.json"
SERVICE_OUTPUT = REPO / "BENCH_service.json"

UNITS = "MB/s (1 MiB object, median of 5, warm plan caches)"
UNITS_COLD = "MB/s (1 MiB object, median of 5, cold plan caches)"


def parse_throughput(text: str) -> tuple[dict[str, float], dict[str, float]]:
    """Extract ``(cold, warm)`` ``{operation: MB/s}`` maps from the table.

    Rows look like ``aes-256-ctr  7.9  31.4`` (operation, cold median, warm
    median); a trailing single-number form (the pre-ratchet artifact) is
    accepted as warm-only so the tool can summarize old results files.
    """
    cold: dict[str, float] = {}
    warm: dict[str, float] = {}
    for line in text.splitlines():
        parts = line.rstrip().rsplit(None, 2)
        if len(parts) == 3:
            name, first, second = parts
            try:
                cold_value, warm_value = float(first), float(second)
            except ValueError:
                continue  # header / rule lines
            cold[name.strip()] = cold_value
            warm[name.strip()] = warm_value
        elif len(parts) == 2:
            name, value = parts
            try:
                warm[name.strip()] = float(value)
            except ValueError:
                continue
    if not warm:
        raise SystemExit(f"bench-summary: no throughput rows parsed from {RESULTS}")
    return cold, warm


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def updated_history(previous: dict, entry: dict) -> list[dict]:
    """Append-only history maintenance.

    Entries from the prior summary are preserved verbatim; the prior
    top-level measurement is folded in as a history entry if it predates
    the history mechanism; re-running on the same commit replaces that
    commit's entry instead of duplicating it.
    """
    history = [dict(item) for item in previous.get("history", [])]
    known = {item.get("commit") for item in history}
    if previous.get("throughput") and previous.get("commit") not in known:
        history.append(
            {
                "commit": previous.get("commit", "unknown"),
                "date": previous.get("date", ""),
                "units": previous.get("units", ""),
                "throughput": previous["throughput"],
            }
        )
    history = [item for item in history if item.get("commit") != entry["commit"]]
    history.append(entry)
    return history


def main() -> int:
    if not RESULTS.is_file():
        raise SystemExit(
            f"bench-summary: {RESULTS} missing -- run "
            "`pytest benchmarks/bench_throughput.py --benchmark-only` first"
        )
    cold, warm = parse_throughput(RESULTS.read_text())
    previous = {}
    if OUTPUT.is_file():
        try:
            previous = json.loads(OUTPUT.read_text())
        except ValueError:
            previous = {}
    commit = git_commit()
    date = datetime.date.today().isoformat()
    entry = {"commit": commit, "date": date, "units": UNITS, "throughput": warm}
    summary = {
        "commit": commit,
        "date": date,
        "units": UNITS,
        "units_cold": UNITS_COLD,
        "throughput": warm,
        "throughput_cold": cold,
        "history": updated_history(previous, entry),
    }
    OUTPUT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"bench-summary: wrote {OUTPUT} ({len(summary['history'])} history entries)")
    print(json.dumps(summary["throughput"], indent=2, sort_keys=True))
    if SERVICE_OUTPUT.is_file():
        # The service benchmark (make bench-service) writes its own file;
        # surface its headline numbers next to the throughput table.
        service = json.loads(SERVICE_OUTPUT.read_text())
        print(f"bench-summary: {SERVICE_OUTPUT.name} present")
        for op, q in sorted(service.get("latency", {}).items()):
            print(
                f"  service {op}: p50={q['p50_s'] * 1000:.3f} ms  "
                f"p99={q['p99_s'] * 1000:.3f} ms"
            )
        print(
            "  service saturation: "
            f"{service.get('saturation_throughput_rps', 0.0):.1f} rps"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
