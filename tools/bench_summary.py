"""Machine-readable benchmark summary: BENCH_throughput.json at repo root.

Parses ``benchmarks/results/throughput.txt`` (the artifact the throughput
benchmark regenerates) into ``{operation: MB/s}`` and stamps the commit and
date, so CI can diff throughput across revisions without scraping tables.

Run ``make bench-json`` (which regenerates the artifact first) or invoke
directly to summarize an existing results file.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results" / "throughput.txt"
OUTPUT = REPO / "BENCH_throughput.json"
SERVICE_OUTPUT = REPO / "BENCH_service.json"


def parse_throughput(text: str) -> dict[str, float]:
    """Extract ``{operation: MB/s}`` from the rendered throughput table."""
    rows: dict[str, float] = {}
    for line in text.splitlines():
        parts = line.rstrip().rsplit(None, 1)
        if len(parts) != 2:
            continue
        name, value = parts
        try:
            rows[name.strip()] = float(value)
        except ValueError:
            continue  # header / rule lines
    if not rows:
        raise SystemExit(f"bench-summary: no throughput rows parsed from {RESULTS}")
    return rows


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main() -> int:
    if not RESULTS.is_file():
        raise SystemExit(
            f"bench-summary: {RESULTS} missing -- run "
            "`pytest benchmarks/bench_throughput.py --benchmark-only` first"
        )
    summary = {
        "commit": git_commit(),
        "date": datetime.date.today().isoformat(),
        "units": "MB/s (1 MiB object, single run)",
        "throughput": parse_throughput(RESULTS.read_text()),
    }
    OUTPUT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"bench-summary: wrote {OUTPUT}")
    print(json.dumps(summary["throughput"], indent=2, sort_keys=True))
    if SERVICE_OUTPUT.is_file():
        # The service benchmark (make bench-service) writes its own file;
        # surface its headline numbers next to the throughput table.
        service = json.loads(SERVICE_OUTPUT.read_text())
        print(f"bench-summary: {SERVICE_OUTPUT.name} present")
        for op, q in sorted(service.get("latency", {}).items()):
            print(
                f"  service {op}: p50={q['p50_s'] * 1000:.3f} ms  "
                f"p99={q['p99_s'] * 1000:.3f} ms"
            )
        print(
            "  service saturation: "
            f"{service.get('saturation_throughput_rps', 0.0):.1f} rps"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
