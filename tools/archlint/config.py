"""``[tool.archlint]`` loader.

Configuration lives in pyproject.toml so rule policy is versioned with the
code it governs::

    [tool.archlint]
    roots = ["src", "benchmarks", "tests", "examples", "tools"]
    exclude = []
    disable = []

    [tool.archlint.rules.ARCH003]
    scope = ["src/repro/*"]
    allow = ["src/repro/crypto/drbg.py", "src/repro/obs/*"]

Unknown per-rule keys land in ``RuleConfig.options`` so rules can grow
knobs (ARCH006's ``assert_scope``) without loader changes.
"""

from __future__ import annotations

import tomllib
from pathlib import Path

from archlint.core import Config, LayerConfig, RuleConfig


def find_project_root(start: Path | None = None) -> Path:
    """Nearest ancestor of *start* (default: cwd) holding pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def _str_tuple(raw: object, what: str) -> tuple[str, ...]:
    if not isinstance(raw, list) or not all(isinstance(item, str) for item in raw):
        raise ValueError(f"[tool.archlint] {what} must be a list of strings")
    return tuple(raw)


def _rule_config(raw: object, code: str) -> RuleConfig:
    if not isinstance(raw, dict):
        raise ValueError(f"[tool.archlint.rules.{code}] must be a table")
    cfg = RuleConfig()
    options = {}
    for option, value in raw.items():
        if option == "enabled":
            cfg.enabled = bool(value)
        elif option == "scope":
            cfg.scope = _str_tuple(value, f"rules.{code}.scope")
        elif option == "allow":
            cfg.allow = _str_tuple(value, f"rules.{code}.allow")
        else:
            options[option] = value
    cfg.options = options
    return cfg


def _layer_config(raw: object) -> LayerConfig:
    if not isinstance(raw, dict):
        raise ValueError("[tool.archlint.layers] must be a table")
    layers = LayerConfig()
    if "foundation" in raw:
        layers.foundation = _str_tuple(raw["foundation"], "layers.foundation")
    if "facade" in raw:
        layers.facade = _str_tuple(raw["facade"], "layers.facade")
    if "src_root" in raw:
        if not isinstance(raw["src_root"], str):
            raise ValueError("[tool.archlint.layers] src_root must be a string")
        layers.src_root = raw["src_root"]
    dag_raw = raw.get("dag", {})
    if not isinstance(dag_raw, dict):
        raise ValueError("[tool.archlint.layers.dag] must be a table")
    layers.dag = {
        layer: _str_tuple(deps, f"layers.dag.{layer}")
        for layer, deps in dag_raw.items()
    }
    # Reject a cyclic declaration at load time (exit 2 in the CLI), before
    # ARCH009 would silently misjudge every edge against a broken closure.
    from archlint.graph import transitive_closure

    transitive_closure(layers.dag)
    return layers


def _concurrency_config(raw: object) -> dict:
    """Validate ``[tool.archlint.concurrency]``.

    Every ``atomic`` entry must carry a justification (``"qualified.name --
    reason"``): an allowlist without reasons rots into a mute list.  Rejecting
    malformed entries at load time (CLI exit 2) keeps ARCH012 from silently
    ignoring a typo'd exemption and flagging code someone believed excused.
    """
    if not isinstance(raw, dict):
        raise ValueError("[tool.archlint.concurrency] must be a table")
    table: dict = {}
    if "atomic" in raw:
        entries = _str_tuple(raw["atomic"], "concurrency.atomic")
        for entry in entries:
            name, sep, reason = entry.partition(" -- ")
            if not sep or not name.strip() or not reason.strip():
                raise ValueError(
                    "[tool.archlint.concurrency] atomic entries must be "
                    f"'qualified.name -- reason' (got {entry!r})"
                )
        table["atomic"] = list(entries)
    if "lock_names" in raw:
        table["lock_names"] = list(_str_tuple(raw["lock_names"], "concurrency.lock_names"))
    for key in raw:
        if key not in ("atomic", "lock_names"):
            raise ValueError(f"[tool.archlint.concurrency] unknown key {key!r}")
    return table


def load_config(project_root: Path) -> Config:
    """Parse ``[tool.archlint]`` out of *project_root*/pyproject.toml.

    A missing file or missing table yields the defaults, so archlint keeps
    working on a bare checkout or a test tmpdir.
    """
    config = Config()
    pyproject = project_root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("archlint")
    if section is None:
        return config
    if "roots" in section:
        config.roots = _str_tuple(section["roots"], "roots")
    if "exclude" in section:
        config.exclude = _str_tuple(section["exclude"], "exclude")
    if "disable" in section:
        config.disable = tuple(
            code.upper() for code in _str_tuple(section["disable"], "disable")
        )
    if "baseline" in section:
        baseline = section["baseline"]
        if not isinstance(baseline, str):
            raise ValueError("[tool.archlint] baseline must be a string path")
        config.baseline = baseline
    if "cache" in section:
        cache = section["cache"]
        if not isinstance(cache, str):
            raise ValueError("[tool.archlint] cache must be a string path")
        config.cache = cache
    if "layers" in section:
        config.layers = _layer_config(section["layers"])
    if "concurrency" in section:
        config.concurrency = _concurrency_config(section["concurrency"])
    for code, raw in section.get("rules", {}).items():
        config.rules[code.upper()] = _rule_config(raw, code)
    return config
