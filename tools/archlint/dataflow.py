"""ARCH010: secret-taint dataflow -- key material must not reach observable
channels.

The paper prices "mass leakage" as the dominant archival failure mode, and
PROPYLA's structural argument is the same: long-term confidentiality needs
secret-carrying data paths that are provably separated from observable ones.
This rule implements that separation as an intra-procedural taint analysis
with one level of cross-function call summaries:

**Sources** -- a value is tainted when

- its identifier matches the secret vocabulary (``key``, ``share``,
  ``plaintext``, ``seed``, ``round_keys``...; configured via
  ``[tool.archlint.rules.ARCH010] vocabulary``) and carries no metadata
  qualifier (``key_size``, ``share_index`` are structural, not material);
- it is an attribute projection onto a secret field (``self.key``,
  ``share.payload`` -- but ``share.index`` is public metadata);
- it is the return value of a designated source function
  (``source_functions`` config, e.g. keystream generators), or of any
  project function whose own body returns tainted data (the one-level
  summary: summaries are computed intra-procedurally for every function in
  the program, then consulted at call sites -- no fixpoint).

**Sinks** -- taint reaching one of these is a finding:

- logging calls (``logger.warning(...)`` and friends);
- exception constructors inside ``raise`` (f-strings, ``str()``/``repr()``
  or any tainted expression in the message);
- metric label values (keyword arguments of ``inc``/``observe``/
  ``set_gauge`` -- a secret in a label is both a leak and a cardinality
  bomb);
- file writes (``.write()``/``.write_text()``/``.write_bytes()``) outside
  the storage-node boundary (``write_allow`` config patterns).

**Sanitizers** -- these break taint: ``len()``, ``sha256``/``sha256_hex``/
``hmac_sha256`` digests, ``constant_time_eq``, ``type()``, comparisons, and
explicit ``# noqa: ARCH010`` with a justification.

The rule also closes the *repr channel*: a ``@dataclass`` whose field is
secret-named and bytes-typed gets the generated ``__repr__`` for free, and
that repr -- share payloads and all -- reaches logs and exception messages
the moment anyone formats the object.  Such classes must define a redacted
``__repr__``/``__str__`` (length + digest prefix, never material) or mark
the field ``repr=False``.

Propagation is deliberately conservative and name-driven: a vocabulary-named
identifier is always treated as tainted (re-binding ``key = len(key)`` does
not launder it -- bind sanitized values to differently-named variables,
which is also the readable thing to do).
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import (
    DEFAULT_SECRET_VOCABULARY,
    FileContext,
    Finding,
    ProgramChecker,
    ProgramContext,
    RuleConfig,
    matches_secret_vocabulary,
    path_matches,
)

#: Attribute names of logging-call receivers we treat as loggers.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_LOGGER_NAMES = frozenset({"logger", "log", "logging"})

#: Metrics-registry methods whose keyword arguments are label values.
_METRIC_METHODS = frozenset({"inc", "observe", "set_gauge"})

#: File-write methods (the storage-node boundary is carved out via config).
_WRITE_METHODS = frozenset({"write", "write_text", "write_bytes"})

_DEFAULT_SANITIZERS = (
    "len",
    "sha256",
    "sha256_hex",
    "hmac_sha256",
    "constant_time_eq",
    "type",
    "isinstance",
    "id",
    "bool",
)


class _TaintQuery:
    """Expression-level taint decisions for one function body."""

    def __init__(
        self,
        vocabulary: tuple[str, ...],
        sanitizers: frozenset[str],
        sources: frozenset[str],
        summaries: dict[str, bool],
    ) -> None:
        self.vocabulary = vocabulary
        self.sanitizers = sanitizers
        self.sources = sources
        self.summaries = summaries
        self.bound: set[str] = set()

    def matches(self, identifier: str) -> bool:
        return matches_secret_vocabulary(identifier, self.vocabulary)

    def expr(self, node: ast.expr | None) -> bool:
        """Is *node* secret-tainted?"""
        if node is None or isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Name):
            return node.id in self.bound or self.matches(node.id)
        if isinstance(node, ast.Attribute):
            # Projection decides on the field name: share.payload is material,
            # share.index is public metadata even though `share` is tainted.
            return self.matches(node.attr)
        if isinstance(node, ast.Subscript):
            return self.expr(node.value)
        if isinstance(node, ast.Compare):
            return False  # booleans carry one bit, not material
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, ast.JoinedStr):
            return any(
                self.expr(part.value)
                for part in node.values
                if isinstance(part, ast.FormattedValue)
            )
        if isinstance(node, ast.Lambda):
            return False
        return any(
            self.expr(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def call(self, node: ast.Call) -> bool:
        callee = _callee_name(node.func)
        if callee is not None:
            if callee in self.sanitizers:
                return False
            if callee in self.sources or self.summaries.get(callee, False):
                return True
        tainted_args = any(self.expr(arg) for arg in node.args) or any(
            self.expr(kw.value) for kw in node.keywords
        )
        if tainted_args:
            return True
        # A method on a tainted receiver returns tainted data (key.hex(),
        # payload.decode()); a plain call on clean args is clean.
        if isinstance(node.func, ast.Attribute):
            return self.expr(node.func.value)
        return False


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _bind_targets(query: _TaintQuery, target: ast.expr, tainted: bool) -> None:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            if tainted:
                query.bound.add(node.id)
            else:
                query.bound.discard(node.id)


def _bind_loop_target(query: _TaintQuery, node: ast.For | ast.AsyncFor) -> None:
    """Bind loop targets, keeping mapping keys and enumerate counters clean.

    ``for index, payload in payload_by_share.items()`` taints only the value:
    keys of a secret-keyed mapping are structural (share indices, node ids).
    Same for the counter of ``enumerate(shares)``.  ``.keys()`` taints
    nothing.
    """
    tainted = query.expr(node.iter)
    target = node.target
    paired = (
        isinstance(target, ast.Tuple)
        and len(target.elts) == 2
        and isinstance(node.iter, ast.Call)
    )
    if paired:
        callee = _callee_name(node.iter.func)
        if callee in ("items", "enumerate"):
            _bind_targets(query, target.elts[0], False)
            _bind_targets(query, target.elts[1], tainted)
            return
    if (
        isinstance(node.iter, ast.Call)
        and _callee_name(node.iter.func) == "keys"
    ):
        tainted = False
    _bind_targets(query, target, tainted)


def _function_returns_taint(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    vocabulary: tuple[str, ...],
    sanitizers: frozenset[str],
    sources: frozenset[str],
) -> bool:
    """Intra-procedural summary: does *fn* return secret material?"""
    query = _TaintQuery(vocabulary, sanitizers, sources, summaries={})
    _seed_parameters(query, fn)
    for _ in range(2):  # second pass stabilizes loop-carried assignments
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                _propagate_assignment(query, node)
    return any(
        query.expr(node.value)
        for node in ast.walk(fn)
        if isinstance(node, ast.Return)
    )


def _seed_parameters(
    query: _TaintQuery, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> None:
    args = fn.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ):
        if query.matches(arg.arg):
            query.bound.add(arg.arg)


def _propagate_assignment(
    query: _TaintQuery, node: ast.Assign | ast.AnnAssign | ast.AugAssign
) -> None:
    value = node.value
    if value is None:
        return
    tainted = query.expr(value)
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        _bind_targets(query, target, tainted)


class SecretTaintRule(ProgramChecker):
    code = "ARCH010"
    name = "secret-taint"
    description = (
        "secret material (key/share/plaintext/seed vocabulary) must not flow "
        "into logs, exception messages, metric labels, file writes, or "
        "generated dataclass reprs; sanitize via digest/len or noqa with "
        "justification"
    )

    def _settings(self, cfg: RuleConfig):
        vocabulary = tuple(cfg.options.get("vocabulary", DEFAULT_SECRET_VOCABULARY))
        sanitizers = frozenset(_DEFAULT_SANITIZERS) | frozenset(
            cfg.options.get("sanitizers", ())
        )
        sources = frozenset(cfg.options.get("source_functions", ()))
        write_allow = tuple(cfg.options.get("write_allow", ()))
        return vocabulary, sanitizers, sources, write_allow

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        vocabulary, sanitizers, sources, write_allow = self._settings(cfg)
        contexts = program.in_scope(self, cfg)

        # One-level call summaries over the whole program: any function whose
        # body returns tainted data taints its call sites, cross-module, by
        # (bare) name.  Collisions union conservatively.
        summaries: dict[str, bool] = {}
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _function_returns_taint(node, vocabulary, sanitizers, sources):
                        summaries[node.name] = True

        for ctx in contexts:
            yield from self._check_file(
                ctx, vocabulary, sanitizers, sources, summaries, write_allow
            )

    # -- per-file pass ---------------------------------------------------------

    def _check_file(
        self,
        ctx: FileContext,
        vocabulary: tuple[str, ...],
        sanitizers: frozenset[str],
        sources: frozenset[str],
        summaries: dict[str, bool],
        write_allow: tuple[str, ...],
    ) -> Iterator[Finding]:
        yield from self._check_dataclass_reprs(ctx, vocabulary)
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in functions:
            query = _TaintQuery(vocabulary, sanitizers, sources, summaries)
            _seed_parameters(query, fn)
            for _ in range(2):
                for node in ast.walk(fn):
                    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        _propagate_assignment(query, node)
                    elif isinstance(node, (ast.For, ast.AsyncFor)):
                        _bind_loop_target(query, node)
                    elif isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if item.optional_vars is not None:
                                _bind_targets(
                                    query,
                                    item.optional_vars,
                                    query.expr(item.context_expr),
                                )
            yield from self._check_sinks(ctx, fn, query, write_allow)

    def _check_sinks(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        query: _TaintQuery,
        write_allow: tuple[str, ...],
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node, query)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, query, write_allow)

    def _check_raise(
        self, ctx: FileContext, node: ast.Raise, query: _TaintQuery
    ) -> Iterator[Finding]:
        exc = node.exc
        if not isinstance(exc, ast.Call):
            return
        for arg in (*exc.args, *(kw.value for kw in exc.keywords)):
            if query.expr(arg):
                name = _callee_name(exc.func) or "exception"
                yield self.finding(
                    ctx,
                    node,
                    f"secret-tainted value reaches {name}() message; exception "
                    "strings are an observable channel -- report a length or "
                    "digest instead",
                )
                return

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        query: _TaintQuery,
        write_allow: tuple[str, ...],
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        receiver = node.func.value
        if method in _LOG_METHODS and self._is_logger(receiver):
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                if query.expr(arg):
                    yield self.finding(
                        ctx,
                        node,
                        "secret-tainted value reaches a logging call; logs are "
                        "an observable channel -- log a length or digest instead",
                    )
                    return
        elif method in _METRIC_METHODS:
            for kw in node.keywords:
                if kw.arg is not None and query.expr(kw.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"secret-tainted value used as metric label "
                        f"{kw.arg!r}; labels are exported observables",
                    )
                    return
        elif method in _WRITE_METHODS and not path_matches(ctx.relpath, write_allow):
            for arg in node.args:
                if query.expr(arg):
                    yield self.finding(
                        ctx,
                        node,
                        "secret-tainted value written to a file outside the "
                        "storage-node boundary",
                    )
                    return

    @staticmethod
    def _is_logger(receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            lowered = receiver.id.lower()
            return lowered in _LOGGER_NAMES or lowered.endswith(("logger", "_log"))
        if isinstance(receiver, ast.Attribute):
            lowered = receiver.attr.lower()
            return lowered in _LOGGER_NAMES or lowered.endswith(("logger", "_log"))
        return False

    # -- repr channel ----------------------------------------------------------

    def _check_dataclass_reprs(
        self, ctx: FileContext, vocabulary: tuple[str, ...]
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            if any(
                isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                and member.name in ("__repr__", "__str__")
                for member in node.body
            ):
                continue
            for member in node.body:
                if not isinstance(member, ast.AnnAssign) or not isinstance(
                    member.target, ast.Name
                ):
                    continue
                field_name = member.target.id
                if not matches_secret_vocabulary(field_name, vocabulary):
                    continue
                if "bytes" not in ast.dump(member.annotation):
                    continue
                if _field_repr_disabled(member.value):
                    continue
                yield self.finding(
                    ctx,
                    member,
                    f"dataclass field {field_name!r} holds secret bytes and the "
                    "generated __repr__ prints them; define a redacted "
                    "__repr__ (length + digest prefix) or mark the field "
                    "repr=False",
                )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _callee_name(target)
        if name == "dataclass":
            return True
    return False


def _field_repr_disabled(value: ast.expr | None) -> bool:
    """True for ``field(..., repr=False)`` defaults."""
    if not isinstance(value, ast.Call) or _callee_name(value.func) != "field":
        return False
    for kw in value.keywords:
        if kw.arg == "repr" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False
