"""ARCH008: bytes() round-trips inside the zero-copy pipeline.

The cipher -> AONT -> RS hot path moves one contiguous buffer through views
(`np.frombuffer`, slicing, `.view`): each byte is touched O(1) times per
store.  A ``.tobytes()``, ``bytes(...)`` or ``b"".join(...)`` inside those
modules silently reintroduces a full-buffer copy -- the exact regression
the pipeline refactor removed -- and it survives review easily because the
result is byte-identical, just slower.

Flagged inside the scoped hot-path modules (``[tool.archlint.rules.ARCH008]``
in pyproject): ``.tobytes()`` method calls, ``bytes(...)`` constructor
calls, and ``.join(...)`` on a bytes literal.  Legitimate materializations
-- the public bytes API boundary, cache keys, per-shard payloads -- carry a
``# noqa: ARCH008`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig


def _copy_reason(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "tobytes":
            return ".tobytes() materializes the whole buffer"
        if func.attr == "join" and isinstance(func.value, ast.Constant) and isinstance(
            func.value.value, bytes
        ):
            return "bytes-literal .join() concatenates a fresh buffer"
        return None
    if isinstance(func, ast.Name) and func.id == "bytes":
        return "bytes(...) copies its argument"
    return None


class ZeroCopyRule(Checker):
    code = "ARCH008"
    name = "zero-copy-roundtrip"
    description = (
        "bytes()/.tobytes()/b''.join() round-trips inside the zero-copy "
        "cipher->AONT->RS hot path reintroduce full-buffer copies; hand "
        "ndarray/memoryview views along instead (noqa with justification "
        "at true API boundaries)"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = _copy_reason(node)
            if reason is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"{reason} inside a zero-copy pipeline module; pass the "
                "array/view along, or noqa with the boundary justification",
            )
