"""ARCH004: secret-looking values compared with ``==`` / ``!=``.

Early-exit byte comparison leaks how many leading bytes matched -- the
classic HMAC timing break.  The library already routes tag verification
through ``crypto.hmac_.verify_hmac_sha256`` and exposes
``crypto.hmac_.constant_time_eq`` for everything else; this rule keeps the
next PR from quietly comparing a MAC with ``==``.

Heuristics (tuned against this codebase, adjust via noqa when they misfire):

- a comparison is flagged when either side's terminal identifier contains a
  secret-ish word segment: tag, mac, hmac, digest, key, secret, token,
  checksum, signature, sig, root;
- names that also carry a structural segment (``key_size``, ``key_length``,
  ``tag_index``...) are exempt -- those compare metadata, not material;
- comparisons against numeric/bool/None literals are exempt for the same
  reason;
- comparisons inside ``assert`` statements are exempt: asserts are the
  test/example oracle idiom, and ARCH006 independently bans asserts from
  ``src/repro`` so production code cannot shelter behind this carve-out.

Genuinely public values (a Merkle root, an audit-chain digest) may keep
``==`` under ``# noqa: ARCH004`` with a comment stating *why* the value is
public.
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig

_SECRET_SEGMENTS = frozenset(
    {
        "tag",
        "mac",
        "hmac",
        "digest",
        "key",
        "secret",
        "token",
        "checksum",
        "signature",
        "sig",
        "root",
    }
)

#: Segments marking a name as structural metadata about a secret, not the
#: secret material itself (`key_size`, `tag_count`, `digest_len`...).
_METADATA_SEGMENTS = frozenset(
    {
        "size",
        "len",
        "length",
        "count",
        "num",
        "bits",
        "index",
        "idx",
        "offset",
        "name",
        "id",
        "kind",
        "type",
        "version",
        "width",
    }
)


def _terminal_identifier(expr: ast.expr) -> str | None:
    """The name a reader would call this expression: ``x`` for ``x``,
    ``prev_digest`` for ``link.prev_digest``, ``tag`` for ``tag[:16]``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _terminal_identifier(expr.value)
    if isinstance(expr, ast.Call):
        return _terminal_identifier(expr.func)
    return None


def _secretish(expr: ast.expr) -> str | None:
    """The identifier that makes *expr* secret-looking, if any."""
    identifier = _terminal_identifier(expr)
    if identifier is None:
        return None
    segments = {segment for segment in identifier.lower().split("_") if segment}
    if segments & _METADATA_SEGMENTS:
        return None
    return identifier if segments & _SECRET_SEGMENTS else None


def _trivial_literal(expr: ast.expr) -> bool:
    """Numeric/bool/None literals -- comparing a secret name against these is
    a length/flag check, not a material comparison."""
    return isinstance(expr, ast.Constant) and (
        expr.value is None or isinstance(expr.value, (int, float, bool))
    )


def _is_len_call(expr: ast.expr) -> bool:
    """``len(key) != self.key_bytes`` compares a length, not material."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
    )


class SecretComparisonRule(Checker):
    code = "ARCH004"
    name = "secret-comparison"
    description = (
        "==/!= on tag/mac/digest/key-like values leaks timing; route through "
        "crypto.hmac_.verify_hmac_sha256 / constant_time_eq, or noqa with a "
        "comment explaining why the value is public"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        in_assert: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                in_assert.update(id(sub) for sub in ast.walk(node))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or id(node) in in_assert:
                continue
            operands = [node.left, *node.comparators]
            for position, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[position], operands[position + 1]
                if _trivial_literal(left) or _trivial_literal(right):
                    continue
                if _is_len_call(left) or _is_len_call(right):
                    continue
                identifier = _secretish(left) or _secretish(right)
                if identifier is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx,
                    node,
                    f"'{symbol}' on secret-looking value '{identifier}' is not "
                    "constant-time; use crypto.hmac_.constant_time_eq (or "
                    "noqa with a public-value justification)",
                )
