"""ARCH007: tier/media references outside the tier registry.

The tier vocabulary (``hot``/``warm``/``cold``) and the media catalog are
a *closed* namespace owned by ``repro.storage.tiering``: every tier is a
``TierSpec`` binding a name to a ``MediaSpec`` and an I/O pricing profile,
and everything else walks the :class:`TierRegistry` (``registry.names``,
``rank``, ``colder``/``warmer``) or imports the ``TIER_*`` constants.  A
hard-coded ``"hot"`` in a tier position, or a ``MEDIA_CATALOG["tape"]``
subscript behind the registry's back, silently forks that vocabulary: a
renamed tier, a re-bound medium, or a fourth tier then breaks placement
and migration in whichever modules kept private copies.

Flagged:

- subscripts into ``MEDIA_CATALOG`` (go through a registry's TierSpec
  media binding instead);
- tier-name string literals in tier *positions*: a ``tier=`` keyword
  argument, a comparison against an expression whose dotted name mentions
  ``tier``, a subscript index into such an expression, and literal keys of
  a dict passed to ``make_tiered_fleet``.

The defining modules (``media.py``, ``tiering.py``) and the media
benchmark/tests that sweep the raw catalog are allowlisted in pyproject.
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig

#: The closed tier vocabulary ARCH007 polices (mirrors tiering.TIER_NAMES).
_TIER_VOCAB = frozenset({"hot", "warm", "cold"})

_CATALOG_NAME = "MEDIA_CATALOG"


def _dotted_name(node: ast.expr) -> str:
    """Best-effort dotted source name of an expression ('' if exotic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _mentions_tier(node: ast.expr) -> bool:
    return "tier" in _dotted_name(node).lower()


def _is_tier_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _TIER_VOCAB
    )


class TierRegistryRule(Checker):
    code = "ARCH007"
    name = "tier-registry-bypass"
    description = (
        "tier names and media bindings are a closed vocabulary owned by the "
        "tier registry; import TIER_* constants / walk the registry instead "
        "of hard-coding strings or subscripting MEDIA_CATALOG"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                yield from self._check_subscript(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)

    def _check_subscript(
        self, ctx: FileContext, node: ast.Subscript
    ) -> Iterator[Finding]:
        target = _dotted_name(node.value)
        if target.split(".")[-1] == _CATALOG_NAME:
            yield self.finding(
                ctx,
                node,
                "MEDIA_CATALOG subscript bypasses the tier registry; bind "
                "media through a TierSpec (registry.get(tier).media)",
            )
        elif _mentions_tier(node.value) and _is_tier_literal(node.slice):
            yield self.finding(
                ctx,
                node.slice,
                f"hard-coded tier name {node.slice.value!r} as a tier key; "
                "use the TIER_* constants from repro.storage.tiering",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            name = keyword.arg.lower()
            if (name == "tier" or name.endswith("_tier")) and _is_tier_literal(
                keyword.value
            ):
                yield self.finding(
                    ctx,
                    keyword.value,
                    f"hard-coded tier name {keyword.value.value!r} passed as "
                    f"'{keyword.arg}'; use the TIER_* constants from "
                    "repro.storage.tiering",
                )
        func = _dotted_name(node.func)
        if func.split(".")[-1] == "make_tiered_fleet" and node.args:
            counts = node.args[0]
            if isinstance(counts, ast.Dict):
                for key in counts.keys:
                    if key is not None and _is_tier_literal(key):
                        yield self.finding(
                            ctx,
                            key,
                            f"hard-coded tier name {key.value!r} in a fleet "
                            "spec; use the TIER_* constants from "
                            "repro.storage.tiering",
                        )

    def _check_compare(
        self, ctx: FileContext, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        if not any(_mentions_tier(op) for op in operands):
            return
        for operand in operands:
            if _is_tier_literal(operand):
                yield self.finding(
                    ctx,
                    operand,
                    f"hard-coded tier name {operand.value!r} compared "
                    "against a tier; use the TIER_* constants from "
                    "repro.storage.tiering",
                )
