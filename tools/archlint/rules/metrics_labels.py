"""ARCH005: dynamic metrics-label values.

The metrics registry creates one time series per (name, label-set); labels
are meant to be a small closed vocabulary (``reason=offline``,
``op=store``).  An f-string or call result as a label value mints an
unbounded family -- per-object, per-node, per-error-text series -- which
explodes snapshot size and breaks the snapshot-determinism contract the
chaos and batch tests pin (two identically-seeded runs must produce
byte-identical snapshots; interpolated labels drag object ids and repr
noise into the key space).

Flagged: f-strings (``JoinedStr``), calls, and string-building ``BinOp``s
as keyword values at metric call sites (``inc``/``observe``/``set_gauge``
shorthands and ``counter``/``gauge``/``histogram`` registry accessors;
``histogram``'s ``bounds=`` kwarg is not a label).  Plain variables pass --
a variable can hold a bounded vocabulary; construction syntax cannot.

The registry plumbing itself (``src/repro/obs/*``) forwards ``**labels``
and is allowlisted in pyproject.
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig

_METRIC_CALLABLES = frozenset(
    {"inc", "observe", "set_gauge", "counter", "gauge", "histogram"}
)

#: Keyword args at metric call sites that are parameters, not labels.
_NON_LABEL_KWARGS = frozenset({"bounds", "amount", "value", "name"})


def _callable_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dynamic_reason(value: ast.expr) -> str | None:
    if isinstance(value, ast.JoinedStr):
        return "f-string"
    if isinstance(value, ast.Call):
        return "call result"
    if isinstance(value, ast.BinOp):
        return "string expression"
    return None


class DynamicMetricLabelRule(Checker):
    code = "ARCH005"
    name = "dynamic-metric-label"
    description = (
        "f-strings/calls as metrics label values mint unbounded time series "
        "and break snapshot determinism; use a small closed label vocabulary"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callable_name(node.func)
            if name not in _METRIC_CALLABLES:
                continue
            for keyword in node.keywords:
                if keyword.arg is None or keyword.arg in _NON_LABEL_KWARGS:
                    continue
                reason = _dynamic_reason(keyword.value)
                if reason is None:
                    continue
                yield self.finding(
                    ctx,
                    keyword.value,
                    f"label '{keyword.arg}' built from a {reason} creates "
                    "unbounded metric cardinality; use a fixed label "
                    "vocabulary (see DESIGN.md naming convention)",
                )
