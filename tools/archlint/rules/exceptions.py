"""ARCH001: broad exception handlers.

The paper's first failure mode is the silent one: a catch-all ``except``
that turns a failing integrity check or a lost share into "no result" and
keeps going.  PR 1 purged those; this rule (the AST successor of the old
Makefile grep gate) keeps them out.  Unlike the grep it also catches the
tuple form ``except (ValueError, Exception):`` and ``BaseException``.

Suppress with ``# noqa: ARCH001`` (legacy ``# noqa: broad-except-ok`` still
honored) on handlers that re-raise or deliberately firewall a boundary --
the comment is the justification the next reader needs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(handler_type: ast.expr | None) -> list[str]:
    """Names in this handler's clause that are too broad to catch."""
    if handler_type is None:
        return ["<bare>"]
    exprs = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    return [expr.id for expr in exprs if isinstance(expr, ast.Name) and expr.id in _BROAD]


class BroadExceptRule(Checker):
    code = "ARCH001"
    name = "broad-except"
    description = (
        "bare except / except Exception|BaseException (incl. tuple forms) "
        "swallow failures silently; catch specific errors or justify with noqa"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _broad_names(node.type):
                if name == "<bare>":
                    message = "bare 'except:' swallows every failure silently"
                else:
                    message = (
                        f"'except {name}' is too broad -- catch the specific "
                        "errors this block can actually handle"
                    )
                yield self.finding(ctx, node, message)
