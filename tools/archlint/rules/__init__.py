"""Rule registry: importing this module assembles the plugin catalogue.

Adding a rule = write a ``Checker`` subclass in a sibling module and list it
here; the engine, CLI, reporters, and ``--list-rules`` pick it up from
``ALL_RULES`` with no further wiring.  ``ProgramChecker`` subclasses
(ARCH009-ARCH011) are registered the same way -- the engine routes them to
the whole-program phase automatically.
"""

from archlint.rules.exceptions import BroadExceptRule
from archlint.rules.imports import DeadImportRule
from archlint.rules.determinism import NondeterminismRule
from archlint.rules.crypto_hygiene import SecretComparisonRule
from archlint.rules.metrics_labels import DynamicMetricLabelRule
from archlint.rules.defaults import MutableDefaultAndAssertRule
from archlint.rules.tier_registry import TierRegistryRule
from archlint.rules.zerocopy import ZeroCopyRule
from archlint.graph import ImportLayeringRule
from archlint.dataflow import SecretTaintRule
from archlint.rules.raises import ErrorTaxonomyRule
from archlint.concurrency import FrozenPlanRule, LockDisciplineRule

ALL_RULES = [
    BroadExceptRule(),
    DeadImportRule(),
    NondeterminismRule(),
    SecretComparisonRule(),
    DynamicMetricLabelRule(),
    MutableDefaultAndAssertRule(),
    TierRegistryRule(),
    ZeroCopyRule(),
    ImportLayeringRule(),
    SecretTaintRule(),
    ErrorTaxonomyRule(),
    LockDisciplineRule(),
    FrozenPlanRule(),
]

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "BroadExceptRule",
    "DeadImportRule",
    "NondeterminismRule",
    "SecretComparisonRule",
    "DynamicMetricLabelRule",
    "MutableDefaultAndAssertRule",
    "TierRegistryRule",
    "ZeroCopyRule",
    "ImportLayeringRule",
    "SecretTaintRule",
    "ErrorTaxonomyRule",
    "LockDisciplineRule",
    "FrozenPlanRule",
]
