"""ARCH006: mutable default arguments, and ``assert`` as runtime validation.

Two classic Python footguns with archival-specific teeth:

- A mutable default (``shares=[]``) is evaluated once and shared across
  calls; in a library whose core objects (fault plans, placement maps,
  share lists) live for the whole process, cross-call leakage of one
  caller's shares into another's is a correctness *and* confidentiality
  bug.  Flagged everywhere.

- ``assert`` compiles away under ``python -O``.  Inside ``src/repro`` every
  runtime check must survive optimization -- a stripped tag check or
  threshold check is precisely the silent failure the paper warns about --
  so validation belongs to the typed error hierarchy (``ParameterError``,
  ``IntegrityError``...).  Tests and examples keep ``assert`` (it is their
  oracle idiom); the check applies only inside the ``assert_scope``
  patterns from ``[tool.archlint.rules.ARCH006]`` (default ``src/*``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig, path_matches

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

_DEFAULT_ASSERT_SCOPE = ("src/*",)


def _is_mutable_literal(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _MUTABLE_CONSTRUCTORS
    )


class MutableDefaultAndAssertRule(Checker):
    code = "ARCH006"
    name = "mutable-default-and-assert"
    description = (
        "mutable default arguments share state across calls (flagged "
        "everywhere); assert is stripped under -O so src/ validation must "
        "raise typed errors instead"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        assert_scope = tuple(cfg.options.get("assert_scope", _DEFAULT_ASSERT_SCOPE))
        check_asserts = path_matches(ctx.relpath, assert_scope)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = [
                    *node.args.defaults,
                    *(d for d in node.args.kw_defaults if d is not None),
                ]
                for default in defaults:
                    if _is_mutable_literal(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in '{node.name}()' is "
                            "shared across calls; default to None and build "
                            "inside the function",
                        )
            elif check_asserts and isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "'assert' is stripped under python -O; raise a typed "
                    "error (ParameterError/IntegrityError/...) for runtime "
                    "validation",
                )
