"""ARCH003: ambient nondeterminism inside the deterministic core.

The 200-seed chaos suite, the batch-determinism tests, and the
snapshot-deterministic metrics contract all rest on one invariant: given a
seed, the library computes the same bytes every time.  One stray
``time.time()`` in a fault plan or ``os.urandom()`` in a share split breaks
replay for every scenario downstream of it.  Entropy is allowed to enter
only through the allowlisted boundary modules (``crypto/drbg.py``,
``crypto/entropic.py``, and ``obs/`` -- wall-clock timing is an
observability concern, not a data-path input), configured via
``[tool.archlint.rules.ARCH003]`` ``scope``/``allow`` in pyproject.toml.

Detection resolves imported names, so ``from time import time`` and
``import numpy as np; np.random.rand()`` are both caught.  Seedable RNG
constructors (``random.Random``, ``numpy.random.default_rng``,
``numpy.random.PCG64``, ...) pass when given an explicit seed argument and
are flagged when called bare (bare = seeded from the OS).
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig

#: Calls that read ambient time/entropy, by fully-resolved dotted name.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "os.getrandom": "OS entropy read",
    "uuid.uuid1": "time/MAC-derived id",
    "uuid.uuid4": "OS entropy read",
    "secrets.token_bytes": "OS entropy read",
    "secrets.token_hex": "OS entropy read",
    "secrets.token_urlsafe": "OS entropy read",
    "secrets.randbits": "OS entropy read",
    "secrets.randbelow": "OS entropy read",
    "secrets.choice": "OS entropy read",
}

#: RNG constructors that are fine when explicitly seeded, OS-entropy when bare.
_SEEDABLE_FACTORIES = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
        "numpy.random.SeedSequence",
    }
)

#: Module prefixes whose remaining functions drive a hidden global RNG.
_GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Bound name -> dotted module/object it refers to.

    Only import-derived names are resolved; a local variable that happens to
    be called ``random`` resolves to nothing and is never flagged.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None or node.module == "__future__":
                continue  # relative imports stay inside this package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                mapping[bound] = f"{node.module}.{alias.name}"
    return mapping


def _dotted(func: ast.expr, imap: dict[str, str]) -> str | None:
    """Resolve a call target to its dotted import-qualified name, or None."""
    attrs: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    resolved_root = imap.get(node.id)
    if resolved_root is None:
        return None
    return ".".join([resolved_root, *reversed(attrs)])


class NondeterminismRule(Checker):
    code = "ARCH003"
    name = "nondeterminism"
    description = (
        "time/entropy reads (time.time, datetime.now, os.urandom, global or "
        "unseeded random.*) outside the allowlisted entropy boundary break "
        "seeded replay; take an explicit seed/rng instead"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        imap = _import_map(ctx.tree)
        if not imap:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imap)
            if dotted is None:
                continue
            if dotted in _BANNED_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"'{dotted}()' is a {_BANNED_CALLS[dotted]}; deterministic "
                    "code must take time/entropy as an explicit input "
                    "(seed, rng, or the drbg/entropic boundary)",
                )
            elif dotted in _SEEDABLE_FACTORIES:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{dotted}()' without a seed falls back to OS "
                        "entropy; pass an explicit seed",
                    )
            elif dotted.startswith(_GLOBAL_RNG_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"'{dotted}()' drives the hidden module-global RNG; "
                    "construct a seeded Random/Generator and pass it down",
                )
