"""ARCH011: every ``raise`` in src/repro must use the repro.errors taxonomy.

PRs 1-5 introduced typed errors (``ReproError`` and friends) precisely so
callers can catch by failure class across decades of maintenance; the drift
this rule closes is new code raising stray ``ValueError``/``RuntimeError``
that no retry policy or chaos test recognizes.

A raise is compliant when the exception class is defined in the taxonomy
module (``taxonomy_module`` option, default ``repro.errors`` -- discovered
from the parsed program, never imported), is on the builtin allowlist
(``allow_builtins`` option, default ``NotImplementedError`` for abstract
protocol methods), or is a re-raise (bare ``raise``, ``raise err`` of a
caught/lowercase-named variable, ``raise exc from ...``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Finding, ProgramChecker, ProgramContext, RuleConfig

_DEFAULT_ALLOW_BUILTINS = ("NotImplementedError", "StopIteration", "KeyboardInterrupt")


def taxonomy_classes(program: ProgramContext, module: str) -> frozenset[str]:
    """Exception class names defined in the taxonomy *module*'s file."""
    suffix = module.replace(".", "/")
    names: set[str] = set()
    for relpath, ctx in program.contexts.items():
        stem = relpath[:-3] if relpath.endswith(".py") else relpath
        if not (stem.endswith(suffix) or stem.endswith(suffix + "/__init__")):
            continue
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                names.add(node.name)
    return frozenset(names)


class ErrorTaxonomyRule(ProgramChecker):
    code = "ARCH011"
    name = "error-taxonomy"
    description = (
        "raise statements must use the repro.errors taxonomy (or allowlisted "
        "builtins) so failure classes stay catchable by retry/chaos policy"
    )

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        module = cfg.options.get("taxonomy_module", "repro.errors")
        allowed = frozenset(
            cfg.options.get("allow_builtins", _DEFAULT_ALLOW_BUILTINS)
        )
        taxonomy = taxonomy_classes(program, module)
        for ctx in program.in_scope(self, cfg):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_class(node)
                if name is None or name in taxonomy or name in allowed:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"raise of {name!r} bypasses the {module} taxonomy; use a "
                    "typed ReproError subclass (or allowlist the builtin)",
                )


def _raised_class(node: ast.Raise) -> str | None:
    """Class name being raised, or None for re-raises we never flag."""
    exc = node.exc
    if exc is None:  # bare `raise` inside an except block
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        # `raise err` re-raises a caught exception object; class references
        # are CamelCase by convention, variables lowercase.
        if exc.id[:1].islower():
            return None
        return exc.id
    return None
