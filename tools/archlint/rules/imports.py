"""ARCH002: dead imports (the fold-in of the old ``tools/lint_imports.py``).

Unused imports rot into silent dependencies and mask real ones; in a tree
that must stay buildable for decades-long archival claims, every import is
a liability to audit.  Semantics are identical to the retired standalone
gate:

- attribute chains count as use of their root (``np.take`` uses ``np``),
- names inside string constants count (annotations under
  ``from __future__ import annotations``, doctest-ish references),
- ``from __future__`` imports, names in a literal ``__all__``, and the
  ``import x as x`` re-export idiom are exempt,
- ``__init__.py`` files are skipped wholesale (package namespace assembly
  is all re-exports).

Suppress with ``# noqa: ARCH002`` (legacy ``# noqa: unused-import-ok``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from archlint.core import Checker, FileContext, Finding, RuleConfig


def _declared_all(tree: ast.Module) -> set[str]:
    """Names a module re-exports via a literal ``__all__`` assignment."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for element in ast.walk(node.value):
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
    return names


def _used_names(tree: ast.Module) -> set[str]:
    """Every identifier loaded anywhere in the module (attribute roots too)."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root: ast.expr = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def _string_refs(tree: ast.Module) -> set[str]:
    """Identifier-shaped tokens inside string constants ("np.ndarray" in a
    stringified annotation still counts as using ``np``)."""
    refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in node.value.replace(".", " ").split():
                if token.isidentifier():
                    refs.add(token)
    return refs


def _imported_bindings(tree: ast.Module):
    """Yield (lineno, bound_name, display) for each imported name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname == alias.name:
                    continue  # `import x as x` re-export idiom
                bound = alias.asname or alias.name.split(".")[0]
                yield node.lineno, bound, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue
                bound = alias.asname or alias.name
                yield node.lineno, bound, f"{node.module or '.'}.{alias.name}"


class DeadImportRule(Checker):
    code = "ARCH002"
    name = "dead-import"
    description = (
        "imported names must be used somewhere in the module "
        "(__all__ and `import x as x` re-exports exempt; __init__.py skipped)"
    )

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        if ctx.path.name == "__init__.py":
            return
        exempt = _declared_all(ctx.tree)
        used = _used_names(ctx.tree)
        string_refs = _string_refs(ctx.tree)
        for lineno, bound, display in _imported_bindings(ctx.tree):
            if bound in exempt or bound in used or bound in string_refs:
                continue
            yield self.finding(ctx, lineno, f"'{display}' imported but unused")
