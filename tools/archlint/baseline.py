"""Baseline ("ratchet") support: adopt a new rule without a flag day.

A baseline file is a JSON document of known-finding keys (path:code:message,
deliberately line-number-free).  Findings present in the baseline are
reported as ``baselined`` and don't fail the run; new ones do.  The intended
workflow when introducing a rule over a dirty tree::

    python -m archlint --write-baseline       # freeze today's debt
    ...fix findings over subsequent PRs...
    # baseline shrinks to [] and the file is deleted

This repo's tree is clean -- ``make lint`` runs with no baseline -- but the
mechanism keeps future rule additions from blocking on a mega-fix PR.
"""

from __future__ import annotations

import json
from pathlib import Path

from archlint.core import Finding

BASELINE_VERSION = 1


def load_baseline(project_root: Path, baseline: str | None) -> frozenset[str]:
    """The set of suppression keys in *baseline*, or empty when unset/absent."""
    if not baseline:
        return frozenset()
    path = project_root / baseline
    if not path.is_file():
        return frozenset()
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unrecognized baseline format")
    keys = data.get("findings", [])
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise ValueError(f"{path}: baseline findings must be a list of strings")
    return frozenset(keys)


def write_baseline(project_root: Path, baseline: str, findings: list[Finding]) -> Path:
    """Freeze *findings* into the baseline file; returns the written path."""
    path = project_root / baseline
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(finding.key for finding in findings),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
