"""Discovery + rule driving: the part of archlint that touches the tree.

One parse per file, shared across every applicable rule; suppression
(``# noqa``) and baseline filtering happen here, uniformly, so individual
rules stay pure AST logic.  Per-file rules run first; rules subclassing
:class:`ProgramChecker` run in a second whole-program phase once every file
is parsed.  With ``use_cache=True`` both phases are memoized by content hash
(see :mod:`archlint.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from archlint.baseline import load_baseline
from archlint.cache import LintCache, config_fingerprint, content_hash
from archlint.core import (
    Checker,
    Config,
    FileContext,
    Finding,
    ProgramChecker,
    ProgramContext,
    is_suppressed,
    path_matches,
)


@dataclass
class Report:
    """Outcome of one lint run, consumed by the reporters and the CLI."""

    project_root: str
    rules_run: list[str]
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    #: Files that failed to parse (path, message) -- always fatal: a file
    #: the linter cannot read is a file no invariant is guarding.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def discover_files(project_root: Path, config: Config, paths: list[str] | None) -> list[Path]:
    """Every ``*.py`` under the requested paths (default: config roots).

    Explicit *paths* are resolved against the project root so ``make lint``
    and a hand-run ``python -m archlint src`` agree on what they checked.
    """
    targets = paths if paths else list(config.roots)
    files: list[Path] = []
    seen: set[Path] = set()
    for target in targets:
        base = (project_root / target).resolve()
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            if path.suffix != ".py" or path in seen:
                continue
            relpath = _relpath(path, project_root)
            if config.exclude and path_matches(relpath, config.exclude):
                continue
            seen.add(path)
            files.append(path)
    return files


def _relpath(path: Path, project_root: Path) -> str:
    try:
        return path.resolve().relative_to(project_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _noqa_hit(finding: Finding, ctx: FileContext) -> bool:
    """``# noqa`` is honored on the construct's first *or* last physical line
    so multi-line calls/defs can carry the suppression where the code ends."""
    if is_suppressed(finding, ctx.line_text(finding.line)):
        return True
    return finding.end_line > finding.line and is_suppressed(
        finding, ctx.line_text(finding.end_line)
    )


def run_lint(
    project_root: Path,
    config: Config,
    rules: list[Checker],
    paths: list[str] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    use_cache: bool = False,
) -> Report:
    """Drive *rules* over the configured tree and return a filtered report.

    Per-file rules run as each file parses; :class:`ProgramChecker` rules run
    afterwards over the full parsed set.  Cached and cold runs produce the
    same report: the cache stores post-suppression findings *and* the
    suppressed counts, so warm replays are byte-identical.
    """
    active = []
    for rule in rules:
        if select is not None and rule.code not in select:
            continue
        if ignore is not None and rule.code in ignore:
            continue
        if rule.code in config.disable:
            continue
        if not config.rule(rule.code).enabled:
            continue
        active.append(rule)
    file_rules = [r for r in active if not isinstance(r, ProgramChecker)]
    program_rules = [r for r in active if isinstance(r, ProgramChecker)]

    report = Report(
        project_root=str(project_root), rules_run=[rule.code for rule in active]
    )
    baseline_keys = load_baseline(project_root, config.baseline)

    cache: LintCache | None = None
    if use_cache:
        from archlint import __version__

        fingerprint = config_fingerprint(
            __version__, [rule.code for rule in active], repr(config)
        )
        cache = LintCache(project_root / config.cache, fingerprint)

    contexts: dict[str, FileContext] = {}
    digests: dict[str, str] = {}
    pre_baseline: list[Finding] = []

    for path in discover_files(project_root, config, paths):
        relpath = _relpath(path, project_root)
        try:
            source = path.read_text()
        except (UnicodeDecodeError, OSError) as exc:
            report.errors.append((relpath, f"unparseable: {exc}"))
            continue
        digest = content_hash(source)
        digests[relpath] = digest
        report.files_checked += 1

        cached = cache.get_file(relpath, digest) if cache else None
        ctx: FileContext | None = None
        if cached is None or program_rules:
            try:
                ctx = FileContext(path, relpath, source)
            except SyntaxError as exc:
                report.files_checked -= 1
                report.errors.append((relpath, f"unparseable: {exc}"))
                del digests[relpath]
                continue
            contexts[relpath] = ctx

        if cached is not None:
            cached_findings, cached_suppressed = cached
            pre_baseline.extend(cached_findings)
            report.suppressed += cached_suppressed
            continue
        assert ctx is not None
        file_findings: list[Finding] = []
        file_suppressed = 0
        for rule in file_rules:
            cfg = config.rule(rule.code)
            if not rule.applies_to(relpath, cfg):
                continue
            for finding in rule.check(ctx, cfg):
                if _noqa_hit(finding, ctx):
                    file_suppressed += 1
                else:
                    file_findings.append(finding)
        pre_baseline.extend(file_findings)
        report.suppressed += file_suppressed
        if cache:
            cache.put_file(relpath, digest, file_findings, file_suppressed)

    # -- whole-program phase ---------------------------------------------------
    if program_rules and not report.errors:
        program_key = LintCache.program_key(digests)
        cached_program = cache.get_program(program_key) if cache else None
        if cached_program is not None:
            program_findings, program_suppressed = cached_program
            pre_baseline.extend(program_findings)
            report.suppressed += program_suppressed
        else:
            program = ProgramContext(project_root, config, contexts)
            program_findings = []
            program_suppressed = 0
            for rule in program_rules:
                cfg = config.rule(rule.code)
                for finding in rule.check_program(program, cfg):
                    ctx = contexts.get(finding.relpath)
                    if ctx is not None and _noqa_hit(finding, ctx):
                        program_suppressed += 1
                    else:
                        program_findings.append(finding)
            pre_baseline.extend(program_findings)
            report.suppressed += program_suppressed
            if cache:
                cache.put_program(program_key, program_findings, program_suppressed)

    for finding in pre_baseline:
        if finding.key in baseline_keys:
            report.baselined += 1
        else:
            report.findings.append(finding)

    if cache:
        cache.save(set(digests), prune=paths is None)

    report.findings.sort()
    return report
