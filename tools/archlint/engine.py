"""Discovery + rule driving: the part of archlint that touches the tree.

One parse per file, shared across every applicable rule; suppression
(``# noqa``) and baseline filtering happen here, uniformly, so individual
rules stay pure AST logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from archlint.baseline import load_baseline
from archlint.core import Checker, Config, FileContext, Finding, is_suppressed, path_matches


@dataclass
class Report:
    """Outcome of one lint run, consumed by the reporters and the CLI."""

    project_root: str
    rules_run: list[str]
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    #: Files that failed to parse (path, message) -- always fatal: a file
    #: the linter cannot read is a file no invariant is guarding.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def discover_files(project_root: Path, config: Config, paths: list[str] | None) -> list[Path]:
    """Every ``*.py`` under the requested paths (default: config roots).

    Explicit *paths* are resolved against the project root so ``make lint``
    and a hand-run ``python -m archlint src`` agree on what they checked.
    """
    targets = paths if paths else list(config.roots)
    files: list[Path] = []
    seen: set[Path] = set()
    for target in targets:
        base = (project_root / target).resolve()
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            if path.suffix != ".py" or path in seen:
                continue
            relpath = _relpath(path, project_root)
            if config.exclude and path_matches(relpath, config.exclude):
                continue
            seen.add(path)
            files.append(path)
    return files


def _relpath(path: Path, project_root: Path) -> str:
    try:
        return path.resolve().relative_to(project_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    project_root: Path,
    config: Config,
    rules: list[Checker],
    paths: list[str] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> Report:
    """Drive *rules* over the configured tree and return a filtered report."""
    active = []
    for rule in rules:
        if select is not None and rule.code not in select:
            continue
        if ignore is not None and rule.code in ignore:
            continue
        if rule.code in config.disable:
            continue
        if not config.rule(rule.code).enabled:
            continue
        active.append(rule)

    report = Report(
        project_root=str(project_root), rules_run=[rule.code for rule in active]
    )
    baseline_keys = load_baseline(project_root, config.baseline)

    for path in discover_files(project_root, config, paths):
        relpath = _relpath(path, project_root)
        try:
            ctx = FileContext(path, relpath, path.read_text())
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.errors.append((relpath, f"unparseable: {exc}"))
            continue
        report.files_checked += 1
        for rule in active:
            cfg = config.rule(rule.code)
            if not rule.applies_to(relpath, cfg):
                continue
            for finding in rule.check(ctx, cfg):
                if is_suppressed(finding, ctx.line_text(finding.line)):
                    report.suppressed += 1
                elif finding.key in baseline_keys:
                    report.baselined += 1
                else:
                    report.findings.append(finding)

    report.findings.sort()
    return report
