"""archlint: the repo's unified AST static-analysis framework.

The reproduction's thesis (after the paper it follows) is that secure
archival fails through *operational* mistakes -- silent failures, key
handling slips, unauditable nondeterminism -- not broken primitives.  The
codebase therefore carries invariants that ordinary linters don't know
about: the 200-seed chaos suite only replays if nothing reads ambient
entropy or wall-clock time; metric snapshots only diff cleanly if label
sets stay bounded; tag verification only resists timing probes if nobody
"optimizes" it back to ``==``.  archlint turns those house rules into
machine-checked ones.

v2 adds a whole-program phase after the per-file rules: the import graph is
checked against the layering DAG declared in pyproject (ARCH009), secret
material is taint-tracked into observable sinks (ARCH010), and every raise
is held to the ``repro.errors`` taxonomy (ARCH011).

v2.1 adds concurrency safety: thread-reachability + lock discipline over
shared mutable state (ARCH012) and the frozen-plan invariant for cached
tables (ARCH013), sharing one analysis with the ``tools/racecheck.py``
dynamic stress harness so the static and runtime views cannot drift.

Layout:

- :mod:`archlint.core`        -- Finding/Checker/Config dataclasses, noqa logic
- :mod:`archlint.config`      -- ``[tool.archlint]`` pyproject loader
- :mod:`archlint.engine`      -- discovery + per-file and whole-program phases
- :mod:`archlint.graph`       -- import graph + layering (ARCH009)
- :mod:`archlint.dataflow`    -- secret-taint analysis (ARCH010)
- :mod:`archlint.concurrency` -- lock discipline + frozen plans (ARCH012/013)
- :mod:`archlint.cache`       -- content-hash incremental lint cache
- :mod:`archlint.baseline`    -- optional ratchet file for adopting rules
- :mod:`archlint.reporters`   -- human and ``--format json`` renderers
- :mod:`archlint.rules`       -- the rule plugins (ARCH001..ARCH013)
- :mod:`archlint.cli`         -- argument parsing / ``python -m archlint``

Run ``python -m archlint --list-rules`` for the rule catalogue, or see the
"Static analysis" sections of README.md and DESIGN.md for the rationale
behind each code.
"""

from archlint.core import Checker, Config, FileContext, Finding, RuleConfig
from archlint.engine import Report, run_lint
from archlint.rules import ALL_RULES, RULES_BY_CODE

__version__ = "2.1.0"

__all__ = [
    "ALL_RULES",
    "Checker",
    "Config",
    "FileContext",
    "Finding",
    "Report",
    "RuleConfig",
    "RULES_BY_CODE",
    "run_lint",
    "__version__",
]
