"""``python -m archlint`` entry point."""

import sys

from archlint.cli import main

sys.exit(main())
