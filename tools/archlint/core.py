"""Core datatypes for archlint: findings, per-file context, rule base class,
configuration, and ``# noqa`` suppression semantics.

Everything here is stdlib-only and free of I/O so the test suite can drive
rules against inline source snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    relpath: str
    line: int
    col: int
    code: str
    message: str

    @property
    def key(self) -> str:
        """Line-number-free identity used by the baseline file (line numbers
        drift under unrelated edits; path+code+message is stable enough)."""
        return f"{self.relpath}:{self.code}:{self.message}"

    def render(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.relpath,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class RuleConfig:
    """Per-rule knobs, usually sourced from ``[tool.archlint.rules.ARCHxxx]``.

    ``scope`` limits where the rule applies (empty tuple = everywhere);
    ``allow`` carves exemptions out of that scope.  Both are fnmatch
    patterns over posix-style paths relative to the project root, so
    ``src/repro/obs/*`` covers the whole observability package.
    ``options`` carries rule-specific extras (e.g. ARCH006's
    ``assert_scope``).
    """

    enabled: bool = True
    scope: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()
    options: dict = field(default_factory=dict)


@dataclass
class Config:
    """Whole-run configuration (see :mod:`archlint.config` for the loader)."""

    roots: tuple[str, ...] = ("src", "benchmarks", "tests", "examples")
    exclude: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    baseline: str | None = None
    rules: dict[str, RuleConfig] = field(default_factory=dict)

    def rule(self, code: str) -> RuleConfig:
        return self.rules.setdefault(code, RuleConfig())


def path_matches(relpath: str, patterns: Iterable[str]) -> bool:
    """fnmatch *relpath* against any pattern (``*`` crosses ``/``, so
    ``src/repro/*`` matches arbitrarily deep files)."""
    return any(fnmatch.fnmatch(relpath, pattern) for pattern in patterns)


class FileContext:
    """Parsed view of one file, shared by every rule that inspects it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=relpath)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Checker:
    """Base class for rule plugins.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding findings for one parsed file.  Rules never see
    files their scope/allow config excludes, and never apply their own
    ``noqa`` filtering -- the engine owns suppression so behavior is uniform
    across rules.
    """

    code: str = "ARCH000"
    name: str = "abstract"
    description: str = ""

    def applies_to(self, relpath: str, cfg: RuleConfig) -> bool:
        if not cfg.enabled:
            return False
        if cfg.scope and not path_matches(relpath, cfg.scope):
            return False
        if cfg.allow and path_matches(relpath, cfg.allow):
            return False
        return True

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST | int, message: str
    ) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            relpath=ctx.relpath, line=line, col=col, code=self.code, message=message
        )


# -- suppression ---------------------------------------------------------------

#: ``# noqa`` / ``# noqa: ARCH001, ARCH004`` / legacy tag forms.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Za-z0-9_,\- ]+))?", re.I)

#: Pre-archlint suppression tags kept working so the fold-in of the old
#: Makefile grep gate and tools/lint_imports.py breaks no existing comment.
LEGACY_SUPPRESSIONS = {
    "ARCH001": frozenset({"broad-except-ok"}),
    "ARCH002": frozenset({"unused-import-ok"}),
}


def is_suppressed(finding: Finding, line_text: str) -> bool:
    """True when the finding's source line carries a matching ``# noqa``.

    A bare ``# noqa`` suppresses every code on that line; a code list
    suppresses only the listed codes (plus each code's legacy aliases).
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    tokens = {token.strip().upper() for token in re.split(r"[,\s]+", codes) if token.strip()}
    if finding.code.upper() in tokens:
        return True
    legacy = LEGACY_SUPPRESSIONS.get(finding.code, frozenset())
    return any(token.lower() in legacy for token in tokens)
