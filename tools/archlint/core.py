"""Core datatypes for archlint: findings, per-file context, rule base class,
configuration, and ``# noqa`` suppression semantics.

Everything here is stdlib-only and free of I/O so the test suite can drive
rules against inline source snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``end_line`` is the last physical line of the offending construct; the
    engine honors a ``# noqa`` on either the first or the last line so
    multi-line expressions can carry their suppression where the code ends.
    It is excluded from ordering/equality so the baseline and report sort
    stay exactly as they were before it existed.
    """

    relpath: str
    line: int
    col: int
    code: str
    message: str
    end_line: int = field(default=0, compare=False)

    @property
    def key(self) -> str:
        """Line-number-free identity used by the baseline file (line numbers
        drift under unrelated edits; path+code+message is stable enough)."""
        return f"{self.relpath}:{self.code}:{self.message}"

    def render(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.relpath,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class RuleConfig:
    """Per-rule knobs, usually sourced from ``[tool.archlint.rules.ARCHxxx]``.

    ``scope`` limits where the rule applies (empty tuple = everywhere);
    ``allow`` carves exemptions out of that scope.  Both are fnmatch
    patterns over posix-style paths relative to the project root, so
    ``src/repro/obs/*`` covers the whole observability package.
    ``options`` carries rule-specific extras (e.g. ARCH006's
    ``assert_scope``).
    """

    enabled: bool = True
    scope: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()
    options: dict = field(default_factory=dict)


@dataclass
class LayerConfig:
    """The declared architecture layering (``[tool.archlint.layers]``).

    ``dag`` maps a layer package to the layer packages it may import
    *directly*; the transitive closure is computed by the analyzer, so the
    declaration stays minimal (``repro.core -> repro.systems`` implies
    everything systems may reach).  ``foundation`` packages are importable
    from every layer but may only import other foundation packages.
    ``facade`` modules (the top-level package ``__init__``) re-export the
    public API and may import anything.
    """

    dag: dict[str, tuple[str, ...]] = field(default_factory=dict)
    foundation: tuple[str, ...] = ()
    facade: tuple[str, ...] = ()
    #: Filesystem prefix stripped when mapping file paths to module names.
    src_root: str = "src"


@dataclass
class Config:
    """Whole-run configuration (see :mod:`archlint.config` for the loader)."""

    roots: tuple[str, ...] = ("src", "benchmarks", "tests", "examples")
    exclude: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    baseline: str | None = None
    #: Findings/parse cache path (relative to the project root); the engine
    #: only touches it when run_lint is invoked with use_cache=True.
    cache: str = ".archlint_cache.json"
    layers: LayerConfig | None = None
    rules: dict[str, RuleConfig] = field(default_factory=dict)
    #: ``[tool.archlint.concurrency]``: the GIL-atomic allowlist consumed by
    #: ARCH012 (``atomic`` entries are ``"qualified.name -- reason"`` strings;
    #: ``lock_names`` extends what counts as a lock in ``with`` blocks).
    #: Lives on Config (not RuleConfig.options) because the racecheck harness
    #: reads the same table -- it is a program-wide concurrency contract, not
    #: a rule knob.  As a dataclass field it also feeds ``repr(config)`` and
    #: therefore the lint-cache fingerprint: editing the allowlist invalidates
    #: cached verdicts.
    concurrency: dict = field(default_factory=dict)

    def rule(self, code: str) -> RuleConfig:
        return self.rules.setdefault(code, RuleConfig())


def path_matches(relpath: str, patterns: Iterable[str]) -> bool:
    """fnmatch *relpath* against any pattern (``*`` crosses ``/``, so
    ``src/repro/*`` matches arbitrarily deep files)."""
    return any(fnmatch.fnmatch(relpath, pattern) for pattern in patterns)


class FileContext:
    """Parsed view of one file, shared by every rule that inspects it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=relpath)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Checker:
    """Base class for rule plugins.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding findings for one parsed file.  Rules never see
    files their scope/allow config excludes, and never apply their own
    ``noqa`` filtering -- the engine owns suppression so behavior is uniform
    across rules.
    """

    code: str = "ARCH000"
    name: str = "abstract"
    description: str = ""

    def applies_to(self, relpath: str, cfg: RuleConfig) -> bool:
        if not cfg.enabled:
            return False
        if cfg.scope and not path_matches(relpath, cfg.scope):
            return False
        if cfg.allow and path_matches(relpath, cfg.allow):
            return False
        return True

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST | int, message: str
    ) -> Finding:
        if isinstance(node, int):
            line, col, end = node, 0, node
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            end = getattr(node, "end_lineno", None) or line
        return Finding(
            relpath=ctx.relpath,
            line=line,
            col=col,
            code=self.code,
            message=message,
            end_line=end,
        )


class ProgramContext:
    """Whole-program view handed to :class:`ProgramChecker` rules.

    ``contexts`` maps relpath -> parsed :class:`FileContext` for every file
    the engine discovered and parsed this run.  Program rules see the whole
    set and apply their own per-file scope via :meth:`Checker.applies_to`.
    """

    def __init__(
        self, project_root: Path, config: Config, contexts: dict[str, FileContext]
    ) -> None:
        self.project_root = project_root
        self.config = config
        self.contexts = contexts

    def in_scope(self, rule: "Checker", cfg: RuleConfig) -> list[FileContext]:
        """Contexts the rule's scope/allow config admits, in sorted order."""
        return [
            self.contexts[relpath]
            for relpath in sorted(self.contexts)
            if rule.applies_to(relpath, cfg)
        ]


class ProgramChecker(Checker):
    """Base class for whole-program rules (import graph, dataflow...).

    These run in a second phase after every per-file rule, once all files
    are parsed, because their verdict on one file depends on the others
    (an import edge is only upward relative to the whole layering DAG; a
    call summary only exists once the callee's module is parsed).
    """

    def check(self, ctx: FileContext, cfg: RuleConfig) -> Iterator[Finding]:
        return iter(())

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


# -- secret vocabulary ---------------------------------------------------------

#: Default identifier segments that mark a value as secret material.  The
#: pyproject ``[tool.archlint.rules.ARCH010] vocabulary`` list replaces this.
DEFAULT_SECRET_VOCABULARY = (
    "key",
    "keys",
    "secret",
    "secrets",
    "share",
    "shares",
    "plaintext",
    "seed",
    "seeds",
    "material",
    "payload",
    "payloads",
    "keystream",
    "ikm",
    "okm",
    "drbg",
)

#: Segments marking a name as structural *metadata about* a secret rather
#: than the material itself (``key_size``, ``share_index``, ``seed_path``).
METADATA_SEGMENTS = frozenset(
    {
        "size",
        "bytes",
        "len",
        "length",
        "count",
        "num",
        "bits",
        "index",
        "idx",
        "indices",
        "indexes",
        "offset",
        "max",
        "min",
        "total",
        "n",
        "id",
        "name",
        "kind",
        "type",
        "epoch",
        "path",
        "version",
        "fraction",
        "spread",
    }
)


def matches_secret_vocabulary(identifier: str, vocabulary: Iterable[str]) -> bool:
    """True when *identifier* names secret material under *vocabulary*.

    The identifier is split on underscores; it matches when any segment is a
    vocabulary word and no segment is a metadata qualifier (so ``round_keys``
    matches while ``key_size`` and ``share_index`` do not).
    """
    segments = {segment for segment in identifier.lower().split("_") if segment}
    if segments & METADATA_SEGMENTS:
        return False
    return bool(segments & set(vocabulary))


# -- suppression ---------------------------------------------------------------

#: ``# noqa`` / ``# noqa: ARCH001, ARCH004`` / legacy tag forms.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Za-z0-9_,\- ]+))?", re.I)

#: Pre-archlint suppression tags kept working so the fold-in of the old
#: Makefile grep gate and tools/lint_imports.py breaks no existing comment.
LEGACY_SUPPRESSIONS = {
    "ARCH001": frozenset({"broad-except-ok"}),
    "ARCH002": frozenset({"unused-import-ok"}),
}


def is_suppressed(finding: Finding, line_text: str) -> bool:
    """True when the finding's source line carries a matching ``# noqa``.

    A bare ``# noqa`` suppresses every code on that line; a code list
    suppresses only the listed codes (plus each code's legacy aliases).
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    tokens = {token.strip().upper() for token in re.split(r"[,\s]+", codes) if token.strip()}
    if finding.code.upper() in tokens:
        return True
    legacy = LEGACY_SUPPRESSIONS.get(finding.code, frozenset())
    return any(token.lower() in legacy for token in tokens)
