"""ARCH012/ARCH013: concurrency safety for the multi-threaded hot path.

Since the kernel went multi-core (payload-axis sharding under
``REPRO_KERNEL_WORKERS``) and batch ingest fans encodes out on a thread
pool, a silent data race in a shared plan cache or metrics singleton can
corrupt shares or snapshots in exactly the decades-long, rarely-audited
setting the paper warns about.  These two whole-program rules make the
concurrency contract machine-checked:

**ARCH012 (lock discipline).**  Builds a *thread-reachability* set: every
callable handed to a worker pool (``pool.submit(fn, ...)``,
``pool.map(lambda: ...)``, ``threading.Thread(target=...)``) is an entry
point, resolved through local aliases (``block_fn = _packed_block if packed
else _gather_block``) and one level of parameter funneling (``_run_sharded``
receives the callable and submits it).  From the entries a conservative
bare-name call graph closes over everything worker threads may execute.
Separately, an inventory of *shared mutable state* is built: module-level
containers and singletons, names rebound via ``global``, ``lru_cache``
internals, and the instance state of classes whose instances hang off those
singletons (``MetricsRegistry`` owns every ``Counter``).  State touched
from worker context is **thread-shared**; from then on, *every* unguarded
write to it -- from worker or maintenance code alike -- is a finding unless
it sits under a ``with <lock>:`` block or its enclosing function is
declared GIL-atomic (with a justification) in ``[tool.archlint.concurrency]
atomic``.  The rule also flags the non-atomic check-then-act shape: an
unlocked ``.get``/``in`` probe followed by a locked plain subscript store
(re-check inside the lock, or use ``setdefault``).

**ARCH013 (frozen-plan escape).**  The documented plan-cache invariant is
that every cached plan/table is returned read-only (DESIGN.md
"Performance"): a cache hit shared across worker threads must be immutable
or a hit can corrupt an output.  The rule statically verifies it: every
``lru_cache``-decorated function must return arrays frozen via
``setflags(write=False)`` / ``.flags.writeable = False`` -- directly, via a
freezer helper (``_freeze``), via another frozen cached function, or as a
read-only derived view (``.view``/``.reshape``/slices of frozen arrays stay
read-only) -- or provably return no array at all (tuples of ``int(...)``).
On the caller side, any code that binds a cached plan and then mutates it
(subscript store, in-place ``+=``, ``setflags``) is a finding: copy before
mutating.

Shared machinery: :func:`analyze` exposes the inventory, the entry points,
the reachable set, and the thread-shared verdicts so ``tools/racecheck.py``
can cross-check its *dynamic* stress coverage against the *static* view --
new shared state fails the harness until it is exercised, so the two views
cannot drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from archlint.core import (
    FileContext,
    Finding,
    ProgramChecker,
    ProgramContext,
    RuleConfig,
)
from archlint.graph import module_name_for

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "sort",
        "reverse",
        "cache_clear",
    }
)

#: Synchronization primitives are coordination, not data: they never appear
#: in the shared-state inventory.
_SYNC_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier", "local"}
)

#: Mutable-container constructors for the module-state inventory.
_CONTAINER_CONSTRUCTORS = frozenset({"dict", "list", "set", "defaultdict", "OrderedDict", "deque"})

#: Constructors/builtins whose results carry no ndarray (ARCH013's
#: provably-no-array escape hatch).
_NONARRAY_CALLS = frozenset(
    {"int", "float", "str", "bool", "bytes", "len", "frozenset", "range", "sorted", "min", "max", "sum"}
)

#: Derived views of a read-only ndarray are themselves read-only.
_VIEW_METHODS = frozenset({"view", "reshape", "transpose", "ravel", "squeeze"})

#: Methods that mutate an ndarray in place (caller-side ARCH013 check).
_ARRAY_MUTATORS = frozenset({"setflags", "fill", "sort", "put", "itemset", "resize", "partition"})

#: Methods never treated as thread entry submission even though they are
#: named like one (str.split et al. are resolved by bare name elsewhere).
_SUBMIT_METHODS = frozenset({"submit"})
_MAP_METHODS = frozenset({"map"})

_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__init_subclass__"})


def _terminal_name(expr: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute/Call chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


def _is_lockish(expr: ast.expr, extra: tuple[str, ...]) -> bool:
    """Does a ``with`` context expression look like a lock acquisition?"""
    name = _terminal_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or lowered in {e.lower() for e in extra}


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _terminal_name(target)
        if name:
            names.add(name)
    return names


@dataclass(frozen=True)
class SharedState:
    """One inventory entry: a nameable piece of cross-thread mutable state."""

    qualname: str  # e.g. repro.obs.metrics._REGISTRY
    module: str
    name: str  # bare name within the module
    kind: str  # container | singleton | global | lru-cache
    relpath: str
    lineno: int


@dataclass
class FuncInfo:
    """One function/method (or worker lambda) in the analyzed program."""

    module: str
    qual: str  # "fn", "Class.method", or "<lambda:LINE>"
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    class_name: str | None
    ctx: FileContext

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.qual}"


@dataclass
class ConcurrencyAnalysis:
    """The whole-program concurrency view shared by ARCH012 and racecheck."""

    modules: dict[str, FileContext] = field(default_factory=dict)
    #: module -> {bare name -> SharedState}
    module_state: dict[str, dict[str, SharedState]] = field(default_factory=dict)
    functions: list[FuncInfo] = field(default_factory=list)
    #: bare name -> FuncInfos (functions and methods alike, conservative)
    by_bare_name: dict[str, list[FuncInfo]] = field(default_factory=dict)
    #: classes whose instances are module-level singletons (transitively)
    shared_classes: set[str] = field(default_factory=set)
    entry_points: list[FuncInfo] = field(default_factory=list)
    reachable: set[int] = field(default_factory=set)  # id(FuncInfo)
    reachable_funcs: list[FuncInfo] = field(default_factory=list)
    #: qualnames of state touched from worker context
    thread_shared: set[str] = field(default_factory=set)
    #: class names (bare) whose instance state is worker-shared
    thread_shared_classes: set[str] = field(default_factory=set)
    #: module -> import alias -> target module name
    import_aliases: dict[str, dict[str, str]] = field(default_factory=dict)
    #: FuncInfo id -> SharedState for lru_cache-decorated functions
    lru_state: dict[int, SharedState] = field(default_factory=dict)

    def inventory(self) -> list[SharedState]:
        return sorted(
            (state for states in self.module_state.values() for state in states.values()),
            key=lambda s: s.qualname,
        )

    def thread_shared_in(self, module: str) -> list[SharedState]:
        return [
            state
            for state in self.inventory()
            if state.module == module and state.qualname in self.thread_shared
        ]


def analyze(
    contexts: dict[str, FileContext] | list[FileContext],
    src_root: str = "src",
) -> ConcurrencyAnalysis:
    """Build the concurrency view of *contexts* (relpath -> FileContext)."""
    if isinstance(contexts, list):
        contexts = {ctx.relpath: ctx for ctx in contexts}
    a = ConcurrencyAnalysis()
    for relpath in sorted(contexts):
        name = module_name_for(relpath, src_root)
        if name is not None:
            a.modules[name] = contexts[relpath]

    class_index: dict[str, list[tuple[str, ast.ClassDef]]] = {}
    for module, ctx in a.modules.items():
        a.import_aliases[module] = _collect_import_aliases(ctx.tree)
        a.module_state[module] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                class_index.setdefault(node.name, []).append((module, node))
        _collect_functions(a, module, ctx)

    for module, ctx in a.modules.items():
        _collect_module_state(a, module, ctx, class_index)

    _compute_shared_classes(a, class_index)
    _collect_entry_points(a)
    _compute_reachability(a)
    _compute_thread_shared(a)
    return a


# -- construction --------------------------------------------------------------


def _collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _collect_functions(a: ConcurrencyAnalysis, module: str, ctx: FileContext) -> None:
    def visit(node: ast.AST, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{class_name}.{child.name}" if class_name else child.name
                info = FuncInfo(module, qual, child, class_name, ctx)
                a.functions.append(info)
                a.by_bare_name.setdefault(child.name, []).append(info)
                if "lru_cache" in _decorator_names(child) or "cache" in _decorator_names(child):
                    a.lru_state[id(info)] = SharedState(
                        qualname=f"{module}.{child.name}",
                        module=module,
                        name=child.name,
                        kind="lru-cache",
                        relpath=ctx.relpath,
                        lineno=child.lineno,
                    )
                visit(child, class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)
            else:
                visit(child, class_name)

    visit(ctx.tree, None)
    for info in a.functions:
        if info.module == module and id(info) in a.lru_state:
            a.module_state[module][info.node.name] = a.lru_state[id(info)]


def _collect_module_state(
    a: ConcurrencyAnalysis,
    module: str,
    ctx: FileContext,
    class_index: dict[str, list[tuple[str, ast.ClassDef]]],
) -> None:
    states = a.module_state[module]

    def add(name: str, kind: str, lineno: int) -> None:
        if name == "__all__" or name in states:
            return
        states[name] = SharedState(
            qualname=f"{module}.{name}",
            module=module,
            name=name,
            kind=kind,
            relpath=ctx.relpath,
            lineno=lineno,
        )

    for node in ctx.tree.body:
        targets: list[str] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        if not targets or value is None:
            continue
        kind: str | None = None
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.SetComp)):
            kind = "container"
        elif isinstance(value, ast.Call):
            callee = _terminal_name(value.func)
            if callee in _SYNC_CONSTRUCTORS:
                kind = None
            elif callee in _CONTAINER_CONSTRUCTORS:
                kind = "container"
            elif callee in class_index:
                kind = "singleton"
        if kind:
            for name in targets:
                add(name, kind, node.lineno)

    # Names rebound through `global` anywhere in the module are shared
    # module state even when their initializer is an immutable scalar.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                add(name, "global", node.lineno)


def _compute_shared_classes(
    a: ConcurrencyAnalysis, class_index: dict[str, list[tuple[str, ast.ClassDef]]]
) -> None:
    """Classes instantiated at module level, closed over instantiations made
    inside shared-class methods (the registry builds every Counter)."""
    shared: set[str] = set()
    for module, ctx in a.modules.items():
        for node in ctx.tree.body:
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                value = node.value
            if isinstance(value, ast.Call):
                callee = _terminal_name(value.func)
                if callee in class_index and callee not in _SYNC_CONSTRUCTORS:
                    shared.add(callee)
    changed = True
    while changed:
        changed = False
        for info in a.functions:
            if info.class_name not in shared:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = _terminal_name(node.func)
                    if callee in class_index and callee not in shared:
                        shared.add(callee)
                        changed = True
    a.shared_classes = shared


# -- thread entry points -------------------------------------------------------


def _local_callable_map(fn: ast.AST) -> dict[str, set[str]]:
    """Local name -> candidate function bare names, via simple assignments
    (including conditional ``x = f if cond else g`` forms)."""

    def candidates(expr: ast.expr) -> set[str]:
        if isinstance(expr, ast.Name):
            return {expr.id}
        if isinstance(expr, ast.Attribute):
            return {expr.attr}
        if isinstance(expr, ast.IfExp):
            return candidates(expr.body) | candidates(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List)):
            out: set[str] = set()
            for elt in expr.elts:
                out |= candidates(elt)
            return out
        return set()

    mapping: dict[str, set[str]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            found = candidates(node.value)
            if not found:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mapping.setdefault(target.id, set()).update(found)
    return mapping


def _param_names(fn: ast.AST) -> list[str]:
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = fn.args
        return [arg.arg for arg in (*args.posonlyargs, *args.args)]
    return []


def _collect_entry_points(a: ConcurrencyAnalysis) -> None:
    """Callables handed to worker pools, resolved through local aliases and
    one level of parameter funneling."""
    entries: list[FuncInfo] = []
    seen: set[int] = set()
    #: (funnel function bare name, parameter name, call-site positional index)
    funnels: list[tuple[str, str, int]] = []

    def add_funcs(names: set[str]) -> None:
        for name in names:
            for info in a.by_bare_name.get(name, []):
                if id(info) not in seen:
                    seen.add(id(info))
                    entries.append(info)

    def resolve(expr: ast.expr, owner: FuncInfo) -> None:
        if isinstance(expr, ast.Lambda):
            info = FuncInfo(
                owner.module, f"<lambda:{expr.lineno}>", expr, owner.class_name, owner.ctx
            )
            if id(info) not in seen:
                seen.add(id(info))
                entries.append(info)
            return
        local_map = _local_callable_map(owner.node)
        params = _param_names(owner.node)
        # Methods receive `self` first; call sites (`obj.fn(...)`) don't
        # pass it positionally, so the recorded index is shifted by one.
        shift = 1 if owner.class_name is not None else 0

        def funnel(name: str) -> None:
            funnels.append((_bare(owner), name, params.index(name) - shift))

        if isinstance(expr, ast.Name):
            if expr.id in params:
                funnel(expr.id)
                return
            resolved: set[str] = set()
            for name in local_map.get(expr.id, {expr.id}):
                if name in params:
                    funnel(name)
                else:
                    resolved.add(name)
            add_funcs(resolved)
        elif isinstance(expr, ast.Attribute):
            add_funcs({expr.attr})

    def _bare(info: FuncInfo) -> str:
        node = info.node
        return node.name if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else info.qual

    for info in a.functions:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target: ast.expr | None = None
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SUBMIT_METHODS and node.args:
                    target = node.args[0]
                elif node.func.attr in _MAP_METHODS and node.args:
                    receiver = _terminal_name(node.func.value) or ""
                    if any(tag in receiver.lower() for tag in ("pool", "executor")):
                        target = node.args[0]
            callee = _terminal_name(node.func)
            if callee == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = kw.value
            if target is not None:
                resolve(target, info)

    # One level of funneling: call sites of a funnel function contribute the
    # argument they pass in the callable position.
    for fname, param, index in funnels:
        for info in a.functions:
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if _terminal_name(node.func) != fname:
                    continue
                arg: ast.expr | None = None
                if 0 <= index < len(node.args):
                    arg = node.args[index]
                for kw in node.keywords:
                    if kw.arg == param:
                        arg = kw.value
                if arg is not None:
                    resolve(arg, info)

    a.entry_points = entries


# -- reachability --------------------------------------------------------------


def _compute_reachability(a: ConcurrencyAnalysis) -> None:
    module_funcs: dict[str, set[str]] = {}
    for info in a.functions:
        if info.class_name is None and isinstance(
            info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            module_funcs.setdefault(info.module, set()).add(info.node.name)

    worklist = list(a.entry_points)
    reachable: set[int] = {id(info) for info in worklist}
    reachable_funcs: list[FuncInfo] = list(worklist)

    def push(name: str) -> None:
        for info in a.by_bare_name.get(name, []):
            if id(info) not in reachable:
                reachable.add(id(info))
                reachable_funcs.append(info)
                worklist.append(info)

    while worklist:
        info = worklist.pop()
        own_funcs = module_funcs.get(info.module, set())
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                callee = _terminal_name(node.func)
                if callee:
                    push(callee)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                # A bare reference to a sibling module function is a callable
                # escaping into worker context (strategy tables, callbacks).
                if node.id in own_funcs:
                    push(node.id)

    a.reachable = reachable
    a.reachable_funcs = reachable_funcs


def _state_for(
    a: ConcurrencyAnalysis, info: FuncInfo, expr: ast.expr
) -> SharedState | None:
    """Resolve *expr* (a receiver or assignment base) to module state."""
    if isinstance(expr, ast.Name):
        return a.module_state.get(info.module, {}).get(expr.id)
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        alias = a.import_aliases.get(info.module, {}).get(expr.value.id)
        if alias is not None and alias in a.module_state:
            return a.module_state[alias].get(expr.attr)
    return None


def _compute_thread_shared(a: ConcurrencyAnalysis) -> None:
    shared: set[str] = set()
    shared_classes: set[str] = set()
    for info in a.reachable_funcs:
        if info.class_name and info.class_name in a.shared_classes:
            shared_classes.add(info.class_name)
        if id(info) in a.lru_state:
            shared.add(a.lru_state[id(info)].qualname)
        for node in ast.walk(info.node):
            state = None
            if isinstance(node, (ast.Name, ast.Attribute)):
                state = _state_for(a, info, node)
            elif isinstance(node, ast.Call):
                state = _state_for(a, info, node.func)
                if state is None and isinstance(node.func, ast.Attribute):
                    state = _state_for(a, info, node.func.value)
            if state is not None:
                shared.add(state.qualname)
    # Once one method of a shared class runs on workers, every instance
    # reachable from the singleton graph is cross-thread state.
    a.thread_shared = shared
    a.thread_shared_classes = shared_classes


# -- ARCH012 -------------------------------------------------------------------


@dataclass
class _Write:
    node: ast.AST
    desc: str
    locked: bool
    plain_store: bool  # a bare `x[k] = v` (for check-then-act)
    state: SharedState | None


def _parse_atomic(entries: object) -> dict[str, str]:
    """``"qualified.name -- reason"`` entries -> {qualified.name: reason}."""
    table: dict[str, str] = {}
    if not isinstance(entries, (list, tuple)):
        return table
    for entry in entries:
        if not isinstance(entry, str) or " -- " not in entry:
            continue
        name, reason = entry.split(" -- ", 1)
        if name.strip() and reason.strip():
            table[name.strip()] = reason.strip()
    return table


class LockDisciplineRule(ProgramChecker):
    code = "ARCH012"
    name = "lock-discipline"
    description = (
        "state shared with kernel/batch worker threads (module containers, "
        "singletons, globals, lru_cache internals) may only be written under "
        "a lock or by functions allowlisted as GIL-atomic in "
        "[tool.archlint.concurrency]; unlocked check-then-act is flagged too"
    )

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        contexts = {ctx.relpath: ctx for ctx in program.in_scope(self, cfg)}
        if not contexts:
            return
        src_root = (
            program.config.layers.src_root if program.config.layers else "src"
        )
        concurrency = getattr(program.config, "concurrency", {}) or {}
        atomic = _parse_atomic(concurrency.get("atomic", ()))
        lock_names = tuple(concurrency.get("lock_names", ()))
        analysis = analyze(contexts, src_root)

        for info in sorted(
            analysis.functions, key=lambda i: (i.ctx.relpath, i.node.lineno)
        ):
            if info.ctx.relpath not in contexts:
                continue
            yield from self._check_function(analysis, info, atomic, lock_names)

    def _check_function(
        self,
        a: ConcurrencyAnalysis,
        info: FuncInfo,
        atomic: dict[str, str],
        lock_names: tuple[str, ...],
    ) -> Iterator[Finding]:
        if info.qualname in atomic:
            return
        writes: list[_Write] = []
        unlocked_probes: set[str] = set()  # state qualnames read-probed sans lock
        globals_declared: set[str] = set()
        in_shared_class_method = (
            info.class_name in a.thread_shared_classes
            and isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and info.node.name not in _INIT_METHODS
        )
        self_name = _self_param(info)

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                now_locked = locked or any(
                    _is_lockish(item.context_expr, lock_names) for item in node.items
                )
                for child in node.body:
                    visit(child, now_locked)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) and node is not info.node:
                return  # nested defs analyzed as their own FuncInfo
            self._scan_node(
                a, info, node, locked, writes, unlocked_probes,
                globals_declared, in_shared_class_method, self_name,
            )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        body = (
            info.node.body
            if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else [info.node.body]
        )
        for stmt in body:
            if isinstance(stmt, ast.stmt):
                visit(stmt, False)
            else:  # lambda body expression
                self._scan_node(
                    a, info, stmt, False, writes, unlocked_probes,
                    globals_declared, in_shared_class_method, self_name,
                )

        for write in writes:
            if write.locked:
                if (
                    write.plain_store
                    and write.state is not None
                    and write.state.qualname in unlocked_probes
                ):
                    yield self.finding(
                        info.ctx,
                        write.node,
                        f"non-atomic check-then-act on thread-shared "
                        f"'{write.desc}': the unlocked read probe and this "
                        "locked store are two critical sections -- re-check "
                        "inside the lock or use setdefault",
                    )
                continue
            yield self.finding(
                info.ctx,
                write.node,
                f"unsynchronized write to thread-shared '{write.desc}' "
                f"(reachable from worker threads); guard it with a lock "
                "or allowlist the enclosing function as GIL-atomic in "
                "[tool.archlint.concurrency] with a justification",
            )

    def _scan_node(
        self,
        a: ConcurrencyAnalysis,
        info: FuncInfo,
        node: ast.AST,
        locked: bool,
        writes: list[_Write],
        unlocked_probes: set[str],
        globals_declared: set[str],
        in_shared_class_method: bool,
        self_name: str | None,
    ) -> None:
        def shared(state: SharedState | None) -> SharedState | None:
            if state is not None and state.qualname in a.thread_shared:
                return state
            return None

        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
            return

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in globals_declared:
                    state = shared(a.module_state.get(info.module, {}).get(target.id))
                    if state is not None:
                        writes.append(_Write(node, state.qualname, locked, False, state))
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    state = shared(_state_for(a, info, target.value))
                    if state is not None:
                        plain = isinstance(target, ast.Subscript) and isinstance(
                            node, ast.Assign
                        )
                        writes.append(_Write(node, state.qualname, locked, plain, state))
                    elif (
                        in_shared_class_method
                        and self_name is not None
                        and _is_self_attr(target, self_name)
                    ):
                        attr = target.attr if isinstance(target, ast.Attribute) else (
                            target.value.attr if isinstance(target.value, ast.Attribute) else "?"
                        )
                        writes.append(
                            _Write(
                                node,
                                f"{info.module}.{info.class_name}.{attr}",
                                locked,
                                False,
                                None,
                            )
                        )
            return

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            if method in MUTATOR_METHODS:
                state = shared(_state_for(a, info, receiver))
                if state is not None:
                    writes.append(_Write(node, state.qualname, locked, False, state))
                elif method == "cache_clear":
                    # `for fn in CACHES.values(): fn.cache_clear()` -- the
                    # receiver is a loop variable; attribute any unresolved
                    # cache_clear to the module's thread-shared lru caches.
                    lru = [
                        s
                        for s in a.module_state.get(info.module, {}).values()
                        if s.kind == "lru-cache" and s.qualname in a.thread_shared
                    ]
                    if lru:
                        names = ", ".join(sorted(s.name for s in lru))
                        writes.append(_Write(node, f"{info.module} lru caches ({names})", locked, False, None))
                elif (
                    in_shared_class_method
                    and self_name is not None
                    and isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == self_name
                    and method != "cache_clear"
                ):
                    writes.append(
                        _Write(
                            node,
                            f"{info.module}.{info.class_name}.{receiver.attr}",
                            locked,
                            False,
                            None,
                        )
                    )
            elif method == "get" and not locked:
                state = shared(_state_for(a, info, receiver))
                if state is not None:
                    unlocked_probes.add(state.qualname)
            return

        if isinstance(node, ast.Compare) and not locked:
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    state = shared(_state_for(a, info, comparator))
                    if state is not None:
                        unlocked_probes.add(state.qualname)


def _self_param(info: FuncInfo) -> str | None:
    if info.class_name is None:
        return None
    if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if "staticmethod" in _decorator_names(info.node):
        return None
    params = _param_names(info.node)
    return params[0] if params else None


def _is_self_attr(target: ast.expr, self_name: str) -> bool:
    """``self.x`` or ``self.x[k]`` targets."""
    if isinstance(target, ast.Attribute):
        return isinstance(target.value, ast.Name) and target.value.id == self_name
    if isinstance(target, ast.Subscript):
        return _is_self_attr(target.value, self_name)
    return False


# -- ARCH013 -------------------------------------------------------------------


class FrozenPlanRule(ProgramChecker):
    code = "ARCH013"
    name = "frozen-plan"
    description = (
        "lru_cache'd plan/table builders must return read-only arrays "
        "(setflags(write=False), a freezer helper, or a derived view of a "
        "frozen array), and no caller may mutate a cached plan in place"
    )

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        contexts = program.in_scope(self, cfg)
        if not contexts:
            return

        cached: list[tuple[FileContext, ast.FunctionDef | ast.AsyncFunctionDef]] = []
        freezers: set[str] = set()
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                decorators = _decorator_names(node)
                if "lru_cache" in decorators or "cache" in decorators:
                    cached.append((ctx, node))
                if _is_freezer(node):
                    freezers.add(node.name)

        frozen_cached: set[str] = set()
        # Fixpoint: cached builders may compose other cached builders.
        for _ in range(len(cached) + 1):
            changed = False
            for _, fn in cached:
                if fn.name in frozen_cached:
                    continue
                if self._returns_frozen(fn, freezers, frozen_cached):
                    frozen_cached.add(fn.name)
                    changed = True
            if not changed:
                break

        for ctx, fn in cached:
            if fn.name in frozen_cached:
                continue
            offending = self._offending_return(fn, freezers, frozen_cached)
            yield self.finding(
                ctx,
                offending if offending is not None else fn,
                f"lru_cache'd '{fn.name}' may return a writable array: freeze "
                "it with setflags(write=False) (or a freezer helper / frozen "
                "view) before returning -- cached plans are shared across "
                "threads",
            )

        providers = self._plan_providers(contexts, frozen_cached)
        for ctx in contexts:
            yield from self._check_callers(ctx, providers)

    # -- frozen-return judgment ------------------------------------------------

    def _returns_frozen(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        freezers: set[str],
        frozen_cached: set[str],
    ) -> bool:
        return self._offending_return(fn, freezers, frozen_cached) is None

    def _offending_return(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        freezers: set[str],
        frozen_cached: set[str],
    ) -> ast.Return | None:
        frozen_names = _frozen_locals(fn)
        frozen_lists = _frozen_collections(fn, freezers, frozen_cached, frozen_names)

        def frozen(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in frozen_names
            if isinstance(expr, (ast.Tuple, ast.List)):
                return all(frozen(elt) for elt in expr.elts)
            if isinstance(expr, ast.Subscript):
                return frozen(expr.value)
            if isinstance(expr, ast.Call):
                callee = _terminal_name(expr.func)
                if callee in freezers or callee in frozen_cached:
                    return True
                if callee in ("tuple", "list") and len(expr.args) == 1:
                    arg = expr.args[0]
                    if isinstance(arg, ast.Name) and arg.id in frozen_lists:
                        return True
                    return frozen(arg)
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _VIEW_METHODS
                ):
                    return frozen(expr.func.value)
            return False

        def nonarray(expr: ast.expr) -> bool:
            if expr is None or isinstance(expr, ast.Constant):
                return True
            if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
                return all(nonarray(elt) for elt in expr.elts)
            if isinstance(expr, (ast.Compare, ast.BoolOp, ast.JoinedStr)):
                return True
            if isinstance(expr, ast.Call):
                callee = _terminal_name(expr.func)
                if callee in _NONARRAY_CALLS:
                    return True
                if callee in ("tuple", "list", "set", "dict") and len(expr.args) == 1:
                    arg = expr.args[0]
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                        return nonarray(arg.elt)
                    return nonarray(arg)
            if isinstance(expr, (ast.GeneratorExp, ast.ListComp)):
                return nonarray(expr.elt)
            return False

        # Propagate: locals assigned from frozen expressions are frozen.
        for _ in range(2):
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and frozen(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            frozen_names.add(target.id)

        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if not frozen(node.value) and not nonarray(node.value):
                    return node
        return None

    # -- caller-side mutation check --------------------------------------------

    def _plan_providers(
        self, contexts: list[FileContext], frozen_cached: set[str]
    ) -> set[str]:
        """Frozen cached builders plus their thin public wrappers."""
        providers = set(frozen_cached)
        changed = True
        while changed:
            changed = False
            for ctx in contexts:
                for node in ast.walk(ctx.tree):
                    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    if node.name in providers:
                        continue
                    for ret in ast.walk(node):
                        if (
                            isinstance(ret, ast.Return)
                            and isinstance(ret.value, ast.Call)
                            and _terminal_name(ret.value.func) in providers
                        ):
                            providers.add(node.name)
                            changed = True
                            break
        return providers

    def _check_callers(
        self, ctx: FileContext, providers: set[str]
    ) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in providers:
                continue
            plans: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    value = node.value
                    is_plan = (
                        isinstance(value, ast.Call)
                        and _terminal_name(value.func) in providers
                    ) or (
                        # views/slices of a plan stay tracked
                        isinstance(value, ast.Subscript)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in plans
                    ) or (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr in _VIEW_METHODS
                        and isinstance(value.func.value, ast.Name)
                        and value.func.value.id in plans
                    )
                    if is_plan:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                plans.add(target.id)
            if not plans:
                continue
            for node in ast.walk(fn):
                bad: str | None = None
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in plans
                        ):
                            bad = target.value.id
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Name) and node.target.id in plans:
                        bad = node.target.id
                    elif (
                        isinstance(node.target, ast.Subscript)
                        and isinstance(node.target.value, ast.Name)
                        and node.target.value.id in plans
                    ):
                        bad = node.target.value.id
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if (
                        node.func.attr in _ARRAY_MUTATORS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in plans
                    ):
                        bad = node.func.value.id
                if bad is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{bad}' holds a cached plan array (frozen, shared "
                        "across threads); mutating it in place would corrupt "
                        "every concurrent user -- np.copy() it first",
                    )


def _frozen_collections(
    fn: ast.AST,
    freezers: set[str],
    frozen_cached: set[str],
    frozen_names: set[str],
) -> set[str]:
    """Locals built as ``xs = []`` where every ``xs.append(...)`` argument is
    itself frozen (``tables.append(_freeze(t))`` -> ``tuple(tables)`` is a
    tuple of read-only arrays)."""

    def frozen(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in frozen_names
        if isinstance(expr, ast.Subscript):
            return frozen(expr.value)
        if isinstance(expr, ast.Call):
            callee = _terminal_name(expr.func)
            if callee in freezers or callee in frozen_cached:
                return True
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in _VIEW_METHODS:
                return frozen(expr.func.value)
        return False

    candidates: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, (ast.List, ast.Tuple)):
            if not node.value.elts:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        candidates.add(target.id)
    out: set[str] = set()
    for name in candidates:
        appends = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ]
        if appends and all(len(call.args) == 1 and frozen(call.args[0]) for call in appends):
            out.add(name)
    return out


def _is_freezer(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does *fn* freeze a local array and return it?"""
    frozen = _frozen_locals(fn)
    if not frozen:
        return False
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            if node.value.id in frozen:
                return True
    return False


def _frozen_locals(fn: ast.AST) -> set[str]:
    """Local names frozen via ``x.setflags(write=False)`` or
    ``x.flags.writeable = False``."""
    frozen: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
            and isinstance(node.func.value, ast.Name)
        ):
            for kw in node.keywords:
                if (
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    frozen.add(node.func.value.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "writeable"
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "flags"
                    and isinstance(target.value.value, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is False
                ):
                    frozen.add(target.value.value.id)
    return frozen


__all__ = [
    "ConcurrencyAnalysis",
    "FrozenPlanRule",
    "FuncInfo",
    "LockDisciplineRule",
    "MUTATOR_METHODS",
    "SharedState",
    "analyze",
]
