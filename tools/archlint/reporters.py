"""Report renderers: one for humans, one (``--format json``) for machines.

The JSON shape is the contract for ``archlint_report.json`` (emitted by
``make lint``); keep it additive so downstream tooling survives new fields.
"""

from __future__ import annotations

import json

from archlint.engine import Report


def render_human(report: Report, rules_catalog: dict[str, str]) -> str:
    """Compiler-style ``path:line:col: CODE message`` lines plus a summary."""
    lines = [finding.render() for finding in report.findings]
    lines.extend(f"{relpath}: error: {message}" for relpath, message in report.errors)
    status = "OK" if report.ok else f"{len(report.findings)} finding(s)"
    if report.errors:
        status += f", {len(report.errors)} error(s)"
    lines.append(
        f"archlint: {status} -- {report.files_checked} files, "
        f"{len(report.rules_run)} rules ({', '.join(report.rules_run)}), "
        f"{report.suppressed} noqa-suppressed, {report.baselined} baselined"
    )
    return "\n".join(lines)


def render_json(report: Report, rules_catalog: dict[str, str]) -> str:
    payload = {
        "tool": "archlint",
        "version": 1,
        "project_root": report.project_root,
        "rules": [
            {"code": code, "description": rules_catalog.get(code, "")}
            for code in report.rules_run
        ],
        "files_checked": report.files_checked,
        "findings": [finding.as_dict() for finding in report.findings],
        "errors": [
            {"path": relpath, "message": message}
            for relpath, message in report.errors
        ],
        "counts": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "errors": len(report.errors),
        },
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
