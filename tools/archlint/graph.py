"""Whole-program import graph + ARCH009 layering enforcement.

The paper's seam argument, applied to this repo's own structure: two decades
of maintenance will quietly couple the crypto core to the operational layers
unless the allowed dependencies are machine-checked.  This module builds the
full ``src/repro`` import graph -- every ``import``/``from`` statement at any
nesting depth, with symbol-level resolution through package ``__init__``
re-exports -- and checks each edge against the layering DAG declared in
``[tool.archlint.layers]`` in pyproject.toml:

- an edge from layer A to layer B is legal iff B is reachable from A in the
  *declared* DAG (transitive closure, so declarations stay minimal);
- ``foundation`` packages (errors, config, security, obs) are importable
  from everywhere but may only import other foundation packages;
- ``facade`` modules (the top-level ``repro/__init__.py``) may import
  anything -- they are the public re-export surface;
- every module must belong to a declared layer: a new package that nobody
  added to the DAG is itself a finding, so the layering can never silently
  rot by omission;
- import cycles among modules are always violations, even when every edge
  in the cycle is layer-legal (cycles only survive inside one layer).

Symbol-level resolution means ``from repro.gmath import GF256`` produces an
edge to ``repro.gmath.gf256`` (where ``GF256`` is defined), not merely to
the ``repro.gmath`` package -- so hiding an upward import behind a package
re-export does not launder it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from archlint.core import (
    FileContext,
    Finding,
    LayerConfig,
    ProgramChecker,
    ProgramContext,
    RuleConfig,
)


def module_name_for(relpath: str, src_root: str) -> str | None:
    """Dotted module name for *relpath*, or None when outside *src_root*.

    ``src/repro/gmath/kernel.py`` -> ``repro.gmath.kernel``;
    ``src/repro/__init__.py`` -> ``repro``.
    """
    prefix = src_root.rstrip("/") + "/"
    if not relpath.startswith(prefix) or not relpath.endswith(".py"):
        return None
    parts = relpath[len(prefix) : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


@dataclass(frozen=True)
class ImportEdge:
    """One resolved import: *src* imports *dst* at *lineno* in src's file."""

    src: str
    dst: str
    lineno: int
    col: int


class ModuleGraph:
    """Symbol-resolved import graph over the project's own modules."""

    def __init__(self, src_root: str) -> None:
        self.src_root = src_root
        #: module name -> FileContext
        self.modules: dict[str, FileContext] = {}
        #: package name -> {exported name -> defining module} (one re-export
        #: hop, parsed from the package's ``__init__.py``).
        self._reexports: dict[str, dict[str, str]] = {}
        #: module name -> sorted edges out of it.
        self.edges: dict[str, list[ImportEdge]] = {}

    @classmethod
    def build(cls, contexts: dict[str, FileContext], src_root: str) -> "ModuleGraph":
        graph = cls(src_root)
        for relpath in sorted(contexts):
            name = module_name_for(relpath, src_root)
            if name is not None:
                graph.modules[name] = contexts[relpath]
        for name, ctx in graph.modules.items():
            if ctx.path.name == "__init__.py":
                graph._reexports[name] = graph._package_reexports(name, ctx)
        for name in sorted(graph.modules):
            graph.edges[name] = graph._edges_from(name, graph.modules[name])
        return graph

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _package_reexports(package: str, ctx: FileContext) -> dict[str, str]:
        exports: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.module == "__future__":
                continue
            source = ModuleGraph._absolute(package + ".__init__", node)
            if source is None:
                continue
            for alias in node.names:
                if alias.name != "*":
                    exports[alias.asname or alias.name] = source
        return exports

    @staticmethod
    def _absolute(module: str, node: ast.ImportFrom) -> str | None:
        """Absolute target module of a (possibly relative) ``from`` import."""
        if node.level == 0:
            return node.module
        # Relative: drop the module's own leaf, then one package per extra dot.
        parts = module.split(".")[: -node.level]
        if node.module:
            parts += node.module.split(".")
        return ".".join(parts) if parts else None

    def _resolve_from(self, target: str, name: str) -> str:
        """Resolve ``from target import name`` to the defining module."""
        submodule = f"{target}.{name}"
        if submodule in self.modules:
            return submodule
        defined_in = self._reexports.get(target, {}).get(name)
        if defined_in is not None and defined_in in self.modules:
            return defined_in
        return target

    def _edges_from(self, name: str, ctx: FileContext) -> list[ImportEdge]:
        own_package = name if ctx.path.name == "__init__.py" else None
        edges: list[ImportEdge] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    dst = self._closest_known(alias.name)
                    if dst is not None:
                        edges.append(ImportEdge(name, dst, node.lineno, node.col_offset))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                target = self._absolute(name + (".__init__" if own_package else ""), node)
                if target is None:
                    continue
                known = self._closest_known(target)
                if known is None:
                    continue
                for alias in node.names:
                    dst = self._resolve_from(known, alias.name) if known == target else known
                    edges.append(ImportEdge(name, dst, node.lineno, node.col_offset))
        unique = {(edge.dst, edge.lineno, edge.col): edge for edge in edges if edge.dst != name}
        return [unique[key] for key in sorted(unique)]

    def _closest_known(self, dotted: str) -> str | None:
        """*dotted* or its longest known ancestor package, if in the graph."""
        parts = dotted.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
            parts.pop()
        return None

    # -- cycles ----------------------------------------------------------------

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with >1 module, sorted and rotated
        so each cycle starts at its lexicographically smallest member."""
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(edge.dst for edge in self.edges.get(root, []))))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in self.modules:
                        continue
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(e.dst for e in self.edges.get(succ, []))))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        smallest = min(component)
                        pivot = component.index(smallest)
                        sccs.append(component[pivot:] + component[:pivot])

        for name in sorted(self.modules):
            if name not in index_of:
                strongconnect(name)
        return sorted(sccs)


# -- layering ------------------------------------------------------------------


def transitive_closure(dag: dict[str, tuple[str, ...]]) -> dict[str, frozenset[str]]:
    """Layers reachable from each layer; raises ValueError on a declared cycle."""
    closure: dict[str, frozenset[str]] = {}
    visiting: set[str] = set()

    def reach(layer: str) -> frozenset[str]:
        if layer in closure:
            return closure[layer]
        if layer in visiting:
            raise ValueError(f"[tool.archlint.layers] declared DAG has a cycle at {layer!r}")
        visiting.add(layer)
        reachable: set[str] = set()
        for dep in dag.get(layer, ()):
            reachable.add(dep)
            reachable |= reach(dep)
        visiting.discard(layer)
        closure[layer] = frozenset(reachable)
        return closure[layer]

    for layer in dag:
        reach(layer)
    return closure


class LayerMap:
    """Maps module names onto the declared layers."""

    FOUNDATION = "foundation"
    FACADE = "facade"

    def __init__(self, layers: LayerConfig) -> None:
        self.layers = layers
        self.closure = transitive_closure(layers.dag)

    def _prefixed(self, module: str, entries: tuple[str, ...] | dict) -> str | None:
        best: str | None = None
        for entry in entries:
            if module == entry or module.startswith(entry + "."):
                if best is None or len(entry) > len(best):
                    best = entry
        return best

    def layer_of(self, module: str) -> tuple[str, str] | None:
        """(kind, label) for *module*: kind is 'facade'/'foundation'/'layer'.

        Facade entries match exactly (the facade is the package ``__init__``
        itself, not everything under it -- a prefix match would swallow the
        whole library)."""
        if module in self.layers.facade:
            return (self.FACADE, module)
        foundation = self._prefixed(module, self.layers.foundation)
        if foundation is not None:
            return (self.FOUNDATION, foundation)
        layer = self._prefixed(module, self.layers.dag)
        if layer is not None:
            return ("layer", layer)
        return None

    def allows(self, src: tuple[str, str], dst: tuple[str, str]) -> bool:
        src_kind, src_label = src
        dst_kind, dst_label = dst
        if src_kind == self.FACADE:
            return True
        if dst_kind == self.FACADE:
            return False  # nothing inside the library imports the facade back
        if dst_kind == self.FOUNDATION:
            return True
        if src_kind == self.FOUNDATION:
            return False  # foundation may only import foundation
        return src_label == dst_label or dst_label in self.closure.get(src_label, frozenset())


class ImportLayeringRule(ProgramChecker):
    code = "ARCH009"
    name = "import-layering"
    description = (
        "the src/repro import graph must respect the layering DAG declared "
        "in [tool.archlint.layers] (no upward imports, no cycles, every "
        "module assigned to a layer)"
    )

    def check_program(
        self, program: ProgramContext, cfg: RuleConfig
    ) -> Iterator[Finding]:
        layers = program.config.layers
        if layers is None:
            return
        contexts = {
            ctx.relpath: ctx for ctx in program.in_scope(self, cfg)
        }
        graph = ModuleGraph.build(contexts, layers.src_root)
        if not graph.modules:
            return
        layer_map = LayerMap(layers)

        for module in sorted(graph.modules):
            ctx = graph.modules[module]
            src_layer = layer_map.layer_of(module)
            if src_layer is None:
                yield self.finding(
                    ctx,
                    1,
                    f"module '{module}' is not covered by the layering DAG in "
                    "[tool.archlint.layers]; assign it to a layer",
                )
                continue
            for edge in graph.edges[module]:
                dst_layer = layer_map.layer_of(edge.dst)
                if dst_layer is None:
                    continue  # the unassigned module gets its own finding
                if layer_map.allows(src_layer, dst_layer):
                    continue
                yield Finding(
                    relpath=ctx.relpath,
                    line=edge.lineno,
                    col=edge.col,
                    code=self.code,
                    message=(
                        f"layer '{self._label(src_layer)}' may not import layer "
                        f"'{self._label(dst_layer)}' "
                        f"({module} -> {edge.dst} violates the declared DAG)"
                    ),
                    end_line=edge.lineno,
                )

        for cycle in graph.cycles():
            head_ctx = graph.modules[cycle[0]]
            lineno = next(
                (e.lineno for e in graph.edges[cycle[0]] if e.dst in cycle), 1
            )
            path = " -> ".join([*cycle, cycle[0]])
            yield Finding(
                relpath=head_ctx.relpath,
                line=lineno,
                col=0,
                code=self.code,
                message=f"import cycle: {path}",
                end_line=lineno,
            )

    @staticmethod
    def _label(layer: tuple[str, str]) -> str:
        kind, label = layer
        return label if kind == "layer" else f"{label} ({kind})"


# Re-exported for tests that exercise the graph machinery directly.
__all__ = [
    "ImportEdge",
    "ImportLayeringRule",
    "LayerMap",
    "ModuleGraph",
    "module_name_for",
    "transitive_closure",
]
