"""Incremental lint cache keyed by file content hash.

``make lint`` on an unchanged tree should not re-parse 200 files.  The cache
(``.archlint_cache.json``, gitignored) stores, per file, the sha256 of its
source plus the per-file findings (post-noqa, pre-baseline) and the
noqa-suppressed count, produced under a given *fingerprint* -- archlint
version + active rule codes + canonicalized config -- so any change to rule
policy invalidates everything at once and warm runs report exactly what a
cold run would.  The whole-program phase is cached under a single key covering the
hash of every participating file: one edited module re-runs graph + dataflow
over the full set (they are whole-program properties), but an untouched tree
skips both phases entirely.

Corrupt or version-skewed cache files are discarded silently; the cache is
an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from archlint.core import Finding

CACHE_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def config_fingerprint(version: str, rule_codes: list[str], config_repr: str) -> str:
    blob = json.dumps(
        {"cache": CACHE_VERSION, "version": version, "rules": rule_codes, "config": config_repr},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _finding_to_list(finding: Finding) -> list:
    return [
        finding.relpath,
        finding.line,
        finding.col,
        finding.code,
        finding.message,
        finding.end_line,
    ]


def _finding_from_list(raw: list) -> Finding:
    relpath, line, col, code, message, end_line = raw
    return Finding(
        relpath=relpath,
        line=line,
        col=col,
        code=code,
        message=message,
        end_line=end_line,
    )


#: Distinct fingerprints kept side by side, so ``make lint`` (all rules) and
#: ``make lint-graph`` (--select) don't evict each other's entries.
_MAX_BUCKETS = 8


class LintCache:
    """Load-mutate-save wrapper around the JSON cache file.

    The file holds one bucket per config fingerprint; each bucket carries
    per-file findings plus the whole-program-phase entry.
    """

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.files: dict[str, dict] = {}
        self.program: dict | None = None
        self._other_buckets: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return  # stale format: start fresh
        buckets = data.get("buckets")
        if not isinstance(buckets, dict):
            return
        for fingerprint, bucket in buckets.items():
            if not isinstance(bucket, dict):
                continue
            if fingerprint == self.fingerprint:
                files = bucket.get("files")
                if isinstance(files, dict):
                    self.files = files
                program = bucket.get("program")
                if isinstance(program, dict):
                    self.program = program
            else:
                self._other_buckets[fingerprint] = bucket

    # -- per-file phase --------------------------------------------------------

    def get_file(self, relpath: str, digest: str) -> tuple[list[Finding], int] | None:
        """Surviving findings plus the noqa-suppressed count for *relpath*,
        or None on a miss.  The count rides along so cached runs report the
        same suppression totals as cold ones."""
        entry = self.files.get(relpath)
        if not isinstance(entry, dict) or entry.get("hash") != digest:  # noqa: ARCH004 -- public content hash, not a secret
            return None
        try:
            findings = [_finding_from_list(raw) for raw in entry["findings"]]
            return findings, int(entry.get("suppressed", 0))
        except (KeyError, TypeError, ValueError):
            return None

    def put_file(
        self, relpath: str, digest: str, findings: list[Finding], suppressed: int
    ) -> None:
        self.files[relpath] = {
            "hash": digest,
            "findings": [_finding_to_list(finding) for finding in findings],
            "suppressed": suppressed,
        }

    # -- whole-program phase ---------------------------------------------------

    @staticmethod
    def program_key(digests: dict[str, str]) -> str:
        blob = json.dumps(sorted(digests.items()))
        return hashlib.sha256(blob.encode()).hexdigest()

    def get_program(self, key: str) -> tuple[list[Finding], int] | None:
        entry = self.program
        if not isinstance(entry, dict) or entry.get("key") != key:  # noqa: ARCH004 -- public cache key, not key material
            return None
        try:
            findings = [_finding_from_list(raw) for raw in entry["findings"]]
            return findings, int(entry.get("suppressed", 0))
        except (KeyError, TypeError, ValueError):
            return None

    def put_program(self, key: str, findings: list[Finding], suppressed: int) -> None:
        self.program = {
            "key": key,
            "findings": [_finding_to_list(finding) for finding in findings],
            "suppressed": suppressed,
        }

    def save(self, known: set[str], prune: bool = True) -> None:
        """Persist; with *prune* (full-tree runs) drop entries for files no
        longer in the tree.  Subset runs pass prune=False so linting one file
        doesn't evict the rest of the tree's entries."""
        buckets = dict(list(self._other_buckets.items())[-(_MAX_BUCKETS - 1) :])
        buckets[self.fingerprint] = {
            "files": {
                relpath: entry
                for relpath, entry in sorted(self.files.items())
                if not prune or relpath in known
            },
            "program": self.program,
        }
        payload = {"version": CACHE_VERSION, "buckets": buckets}
        try:
            self.path.write_text(json.dumps(payload) + "\n")
        except OSError:
            pass  # read-only checkout: cache stays an accelerator only
