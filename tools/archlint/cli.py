"""Command line for archlint: ``python -m archlint [paths...]``.

Exit codes: 0 clean, 1 findings or unparseable files, 2 usage/config error.

``--output FILE`` always writes the JSON report (``make lint`` uses it for
``archlint_report.json``) regardless of the stdout ``--format``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from archlint.baseline import write_baseline
from archlint.config import find_project_root, load_config
from archlint.engine import run_lint
from archlint.reporters import render_human, render_json
from archlint.rules import ALL_RULES


def _parse_codes(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="archlint",
        description="AST static analysis for the secure-archival reproduction "
        "(determinism, crypto hygiene, observability, silent-failure rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories relative to the project root "
        "(default: [tool.archlint] roots from pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="stdout report format (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (e.g. archlint_report.json)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. ARCH001,ARCH004)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of known findings (overrides pyproject)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--project-root",
        metavar="DIR",
        help="explicit project root (default: nearest pyproject.toml from cwd)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash incremental cache (.archlint_cache.json)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    root = (
        Path(args.project_root).resolve()
        if args.project_root
        else find_project_root()
    )
    try:
        config = load_config(root)
    except (ValueError, OSError) as exc:
        print(f"archlint: config error: {exc}", file=sys.stderr)
        return 2
    if args.baseline:
        config.baseline = args.baseline

    report = run_lint(
        root,
        config,
        ALL_RULES,
        paths=args.paths or None,
        select=_parse_codes(args.select),
        ignore=_parse_codes(args.ignore),
        use_cache=not args.no_cache,
    )

    if args.write_baseline:
        baseline = config.baseline or "archlint_baseline.json"
        path = write_baseline(root, baseline, report.findings)
        print(f"archlint: wrote {len(report.findings)} finding(s) to {path}")
        return 0

    catalog = {rule.code: rule.description for rule in ALL_RULES}
    if args.output:
        Path(root / args.output).write_text(render_json(report, catalog) + "\n")
    if args.format == "json":
        print(render_json(report, catalog))
    else:
        print(render_human(report, catalog))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
