"""Deterministic service benchmark: BENCH_service.json at repo root.

Replays a >= 100k-request zipfian store/retrieve mix from concurrent
closed-loop clients through the archive service (``make bench-service``)
and writes the measured latency percentiles (p50/p99/p999 per op) and
saturation throughput, sized against the Section 3.2 archive models
(:data:`repro.storage.archive_model.PAPER_ARCHIVES`).

Unlike BENCH_throughput.json, this file carries **no wall-clock fields**
(no date, no commit): every number is a pure function of the seed and the
load spec on simulated time, so two same-seed runs produce byte-identical
output -- rerun it to check the determinism contract, diff it across
revisions to catch behavior changes.

    python tools/bench_service.py                 # the full 100k run
    python tools/bench_service.py --requests 2000 # quick iteration
    python tools/bench_service.py --seed 7
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.archive import SecureArchive  # noqa: E402
from repro.core.policy import (  # noqa: E402
    CENTURY_SAFE,
    ArchivePolicy,
    ConfidentialityTarget,
)
from repro.crypto.drbg import DeterministicRandom  # noqa: E402
from repro.obs import use_registry  # noqa: E402
from repro.service import (  # noqa: E402
    ArchiveService,
    Request,
    ServiceConfig,
    TenantQuota,
)
from repro.storage.archive_model import PAPER_ARCHIVES, capacity_rps  # noqa: E402
from repro.storage.node import make_node_fleet  # noqa: E402
from repro.storage.tiering import (  # noqa: E402
    TIER_COLD,
    TIER_HOT,
    TIER_WARM,
    MigrationPolicy,
    TierMigrator,
    make_tiered_fleet,
)
from repro.service.load import ServiceLoadSpec, run_service_load  # noqa: E402
from repro.storage.workload import ZipfianPopularity  # noqa: E402

OUTPUT = REPO / "BENCH_service.json"

DEFAULT_SEED = 2024
DEFAULT_REQUESTS = 100_000

#: The tiered-topology run offers this fraction of the flat run's requests
#: per phase (two phases: load and reheat); migration renewals make each
#: accepted request substantially more expensive than on the flat fleet.
TIERED_REQUEST_DIVISOR = 10

#: Sized for saturation: 64 clients at 5 ms mean think time offer ~12.8k
#: rps against a 4-worker, ~1 ms/op service (~4k rps capacity), so
#: admission control must shed and the measured completion rate IS the
#: saturation throughput.  Quotas are set loose enough (8 tenants x 1k
#: rps sustained) that the queue, not the buckets, is the binding limit.
def _service_config() -> ServiceConfig:
    return ServiceConfig(
        workers=4,
        queue_capacity=256,
        default_quota=TenantQuota(capacity=2048.0, refill_per_s=1000.0),
    )


def _load_spec(requests: int) -> ServiceLoadSpec:
    return ServiceLoadSpec(
        clients=64,
        requests=requests,
        store_fraction=0.03,
        mean_think_s=0.005,
        backoff_s=0.05,
        bootstrap_objects=256,
        tenants=8,
    )


def run_benchmark(seed: int = DEFAULT_SEED, requests: int = DEFAULT_REQUESTS) -> dict:
    """One seeded saturation run; returns the JSON-able summary."""
    spec = _load_spec(requests)
    with use_registry():
        archive = SecureArchive(
            CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(seed)
        )
        service = ArchiveService(
            archive,
            _service_config(),
            rng=DeterministicRandom((seed, "bench-service-jitter").__repr__()),
        )
        load = run_service_load(service, spec, seed=seed)
        report = service.report()

    counts = load["counts"]
    served = counts["ok_store"] + counts["ok_retrieve"]
    store_fraction_served = counts["ok_store"] / served if served else 0.0
    mean_payload = (
        (load["bytes_stored"] + load["bytes_read"]) / served if served else 0.0
    )
    sized_against = {}
    for profile in PAPER_ARCHIVES:
        model_rps = capacity_rps(profile, mean_payload, store_fraction_served)
        sized_against[profile.name] = {
            "medium": profile.medium,
            "model_capacity_rps": model_rps,
            "measured_over_model": report["throughput_rps"] / model_rps,
        }

    return {
        "benchmark": "service-zipfian-replay",
        "seed": seed,
        "determinism": "pure function of seed+spec on simulated time; "
        "no date/commit fields -- same-seed runs are byte-identical",
        "spec": {
            "clients": spec.clients,
            "requests": spec.requests,
            "store_fraction": spec.store_fraction,
            "zipf_s": spec.zipf_s,
            "mean_think_s": spec.mean_think_s,
            "backoff_s": spec.backoff_s,
            "bootstrap_objects": spec.bootstrap_objects,
            "tenants": spec.tenants,
            "median_object_bytes": spec.median_object_bytes,
        },
        "service": report["config"],
        "load": load,
        "latency": report["latency"],
        "saturation_throughput_rps": report["throughput_rps"],
        "worker_utilization": report["worker_utilization"],
        "max_queue_depth": report["max_queue_depth"],
        "completed": report["completed"],
        "rejected": report["rejected"],
        "tenants": report["tenants"],
        "mean_payload_bytes": mean_payload,
        "sized_against": sized_against,
    }


_TIERED_POLICY = ArchivePolicy(
    target=ConfidentialityTarget.LONG_TERM, n=5, t=3, renew_every_epochs=None
)


def _tiered_spec(requests: int) -> ServiceLoadSpec:
    return ServiceLoadSpec(
        clients=32,
        requests=requests,
        store_fraction=0.03,
        mean_think_s=0.005,
        backoff_s=0.05,
        bootstrap_objects=64,
        tenants=4,
    )


def _tier_metric(snapshot: dict, kind: str, name: str) -> dict:
    """Per-tier values of ``name{tier=...}`` from a registry snapshot."""
    out = {}
    for key, value in snapshot[kind].items():
        if key.startswith(f"{name}{{tier="):
            out[key.split("=", 1)[1].rstrip("}")] = value
    return out


def _reheat_phase(
    service, spec: ServiceLoadSpec, requests: int, seed: int, start_s: float
) -> dict:
    """Zipfian retrieves against the *cooled* bootstrap set.

    Open-loop on purpose: the first load already measured closed-loop
    saturation; here the point is demand against objects that migrated
    cold, so every request is a retrieve of a bootstrap object (the ids
    ``run_service_load`` stored before its load began).  Rejected
    retrieves still count as demand via the service's tracker hook.
    """
    rng = DeterministicRandom(f"bench-tiered-reheat:{seed}")
    popularity = ZipfianPopularity(s=spec.zipf_s)
    for k in range(spec.bootstrap_objects):
        popularity.add(f"svc-boot-{k:05d}")
    counts: dict[str, int] = {}
    now_s = start_s
    for i in range(requests):
        now_s += rng.random() * 2 * spec.mean_think_s / spec.clients
        outcome = service.offer(
            Request(
                op="retrieve",
                object_id=popularity.sample(rng),
                tenant=f"tenant-{i % spec.tenants:02d}",
                arrival_s=now_s,
            )
        )
        counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
    return dict(sorted(counts.items()))


def run_tiered_benchmark(
    seed: int = DEFAULT_SEED, requests: int = DEFAULT_REQUESTS
) -> dict:
    """The tiered-topology run: load, cool down, reheat -- seeded.

    A smaller zipfian replay against a hot/warm/cold fleet with migration
    on: phase one loads the service, four idle epochs walk everything down
    the demotion ladder, phase two replays the same-shaped load so the
    reheated working set is first served *from cold media at cold prices*
    (``cold_read_seconds_total`` below is the archive-model price of those
    detours) and then promoted back up.  Pure function of the seed on
    simulated time, like the flat run.
    """
    per_phase = max(1_000, requests // TIERED_REQUEST_DIVISOR)
    spec = _tiered_spec(per_phase)
    with use_registry() as registry:
        archive = SecureArchive(
            _TIERED_POLICY,
            make_tiered_fleet({TIER_HOT: 4, TIER_WARM: 4, TIER_COLD: 6}),
            DeterministicRandom((seed, "bench-tiered").__repr__()),
        )
        migrator = archive.enable_tiering(
            TierMigrator(policy=MigrationPolicy(demote_idle_epochs=2))
        )
        service = ArchiveService(
            archive,
            _service_config(),
            rng=DeterministicRandom((seed, "bench-tiered-jitter").__repr__()),
        )
        load = run_service_load(
            service, spec, seed=f"bench-tiered-load:{seed}".encode()
        )
        maintenance = [archive.advance_epoch() for _ in range(4)]
        reheat = _reheat_phase(
            service, spec, per_phase, seed, start_s=load["offered_window_s"]
        )
        maintenance += [archive.advance_epoch() for _ in range(2)]
        report = service.report()
        snapshot = registry.snapshot()

    cold_reads = _tier_metric(snapshot, "counters", "tier_reads_total")
    read_seconds = _tier_metric(snapshot, "histograms", "tier_read_seconds")
    return {
        "topology": {TIER_HOT: 4, TIER_WARM: 4, TIER_COLD: 6},
        "requests_per_phase": per_phase,
        "load": load["counts"],
        "reheat": reheat,
        "migration": {
            "promoted": sum(m.objects_promoted for m in maintenance),
            "demoted": sum(m.objects_demoted for m in maintenance),
            "bytes_moved": sum(m.migration_bytes for m in maintenance),
        },
        "tier_reads": cold_reads,
        "cold_read_seconds_total": read_seconds.get(TIER_COLD, {}).get("sum", 0.0),
        "occupancy": migrator.occupancy(),
        "latency": report["latency"],
        "completed": report["completed"],
        "rejected": report["rejected"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_REQUESTS,
        help="request count (default %(default)s; use a small value to iterate)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT,
        help="where to write the JSON summary (default %(default)s)",
    )
    args = parser.parse_args()
    summary = run_benchmark(seed=args.seed, requests=args.requests)
    summary["tiered"] = run_tiered_benchmark(
        seed=args.seed, requests=args.requests
    )
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"bench-service: wrote {args.output}")
    for op, q in sorted(summary["latency"].items()):
        print(
            f"  {op:8s} p50={q['p50_s'] * 1000:7.3f} ms  "
            f"p99={q['p99_s'] * 1000:7.3f} ms  p999={q['p999_s'] * 1000:7.3f} ms  "
            f"(n={q['count']})"
        )
    print(
        f"  saturation: {summary['saturation_throughput_rps']:.1f} rps  "
        f"rejected: {summary['rejected']}"
    )
    tiered = summary["tiered"]
    print(
        f"  tiered: {tiered['migration']['promoted']} promoted / "
        f"{tiered['migration']['demoted']} demoted, "
        f"{tiered['tier_reads'].get(TIER_COLD, 0)} cold reads "
        f"({tiered['cold_read_seconds_total']:.2f} s priced)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
