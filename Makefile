# Convenience targets for the repro library.

# Let every target work from a bare checkout (no `make install` needed).
export PYTHONPATH := src

.PHONY: install test test-chaos bench bench-json artifacts examples all clean \
	lint-exceptions lint-imports coverage-storage

install:
	python setup.py develop

test: lint-exceptions lint-imports coverage-storage
	pytest tests/

# Seeded fault-injection property suite (excluded from the default run by
# the `-m 'not chaos'` addopts; the explicit -m here overrides it).
test-chaos:
	pytest -m chaos tests/

# Enforce the >= 90% line-coverage floor over src/repro/storage using the
# stdlib trace module (also runs the storage-facing test files).
coverage-storage:
	python tools/storage_coverage.py

# Guard against silent failures: every broad `except Exception` must carry a
# `# noqa: broad-except-ok` justification or be narrowed to specific classes.
lint-exceptions:
	@bad=$$(grep -rn --include='*.py' -E 'except +(Exception|BaseException)\b|except *:' src benchmarks tests examples | grep -v 'noqa: broad-except-ok' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-exceptions: broad except without '# noqa: broad-except-ok' justification:"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	echo "lint-exceptions: OK"

# Dead-import gate: every imported name must be used (or carry a
# `# noqa: unused-import-ok` justification / appear in `__all__`).
lint-imports:
	python tools/lint_imports.py

bench:
	pytest benchmarks/ --benchmark-only

# Machine-readable throughput summary (BENCH_throughput.json at repo root):
# regenerate the throughput artifact, then summarize op -> MB/s + commit.
bench-json:
	pytest benchmarks/bench_throughput.py --benchmark-only -q
	python tools/bench_summary.py

# Regenerate the paper's three artifacts on stdout.
artifacts:
	python -m repro.analysis

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench bench-json artifacts

clean:
	rm -rf build src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
