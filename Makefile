# Convenience targets for the repro library.

.PHONY: install test bench artifacts examples all clean lint-exceptions

install:
	python setup.py develop

test: lint-exceptions
	pytest tests/

# Guard against silent failures: every broad `except Exception` must carry a
# `# noqa: broad-except-ok` justification or be narrowed to specific classes.
lint-exceptions:
	@bad=$$(grep -rn --include='*.py' -E 'except +(Exception|BaseException)\b|except *:' src benchmarks tests examples | grep -v 'noqa: broad-except-ok' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-exceptions: broad except without '# noqa: broad-except-ok' justification:"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	echo "lint-exceptions: OK"

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate the paper's three artifacts on stdout.
artifacts:
	python -m repro.analysis

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench artifacts

clean:
	rm -rf build src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
