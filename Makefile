# Convenience targets for the repro library.

# Let every target work from a bare checkout (no `make install` needed).
export PYTHONPATH := src

.PHONY: install test test-chaos test-tiering bench bench-json bench-service \
	bench-ratchet artifacts examples all clean lint lint-graph lint-threads \
	lint-exceptions lint-imports coverage-storage racecheck

install:
	python setup.py develop

test: lint coverage-storage
	pytest tests/

# Seeded fault-injection property suite (excluded from the default run by
# the `-m 'not chaos'` addopts; the explicit -m here overrides it).
test-chaos:
	pytest -m chaos tests/

# Tiered-storage migration invariants: the 200-seed property suite plus
# the tier placement/migrator unit tests (also part of the plain `test`
# run; this target reruns them standalone for quick iteration).
test-tiering:
	pytest tests/test_tiering.py

# Enforce the per-package line-coverage floor over src/repro/storage and
# src/repro/service using the stdlib trace module (also runs the
# storage/service-facing test files).
coverage-storage:
	python tools/storage_coverage.py

# Static analysis: the full archlint rule set (ARCH001..ARCH013 -- broad
# excepts, dead imports, nondeterminism, non-constant-time secret compares,
# dynamic metric labels, mutable defaults / asserts, tier-registry bypass,
# zero-copy round-trips, import layering, secret-taint dataflow, error
# taxonomy, lock discipline, frozen plans) over every configured root,
# emitting the machine-readable
# archlint_report.json at the repo root.  Incremental via the content-hash
# cache (.archlint_cache.json, gitignored); pass --no-cache to force a
# cold run.  Policy lives in [tool.archlint] in pyproject.toml.
lint:
	PYTHONPATH=tools:$(PYTHONPATH) python -m archlint --format json --output archlint_report.json > /dev/null \
		|| { PYTHONPATH=tools:$(PYTHONPATH) python -m archlint; exit 1; }
	@echo "lint: OK (report: archlint_report.json)"

# Whole-program phase only: the v2 analyses (ARCH009 layering DAG, ARCH010
# secret-taint dataflow, ARCH011 error taxonomy) over the library, judged
# against the committed archlint_baseline.json ratchet.
lint-graph:
	PYTHONPATH=tools:$(PYTHONPATH) python -m archlint --select ARCH009,ARCH010,ARCH011 src/repro

# Concurrency safety only: ARCH012 (thread-reachability + lock discipline
# over shared mutable state, with the GIL-atomic allowlist from
# [tool.archlint.concurrency]) and ARCH013 (every lru_cache'd plan/table
# returns read-only arrays; no caller mutates one) over the library.
lint-threads:
	PYTHONPATH=tools:$(PYTHONPATH) python -m archlint --select ARCH012,ARCH013 src/repro

# Dynamic counterpart of lint-threads: barrier-synchronized seeded stress
# over the kernel, the plan/key caches, and the metrics registry, asserting
# byte-identical outputs at workers in {1,2,8} and exact metric counts; its
# coverage tables are cross-checked against ARCH012's static inventory so
# the two views cannot drift.
racecheck:
	python tools/racecheck.py

# Back-compat aliases for the two pre-archlint gates (the grep-based broad
# except check and the retired tools/lint_imports.py shim); both run as
# archlint rules now.
lint-exceptions:
	PYTHONPATH=tools:$(PYTHONPATH) python -m archlint --select ARCH001

lint-imports:
	PYTHONPATH=tools:$(PYTHONPATH) python -m archlint --select ARCH002

bench:
	pytest benchmarks/ --benchmark-only

# Machine-readable throughput summary (BENCH_throughput.json at repo root):
# regenerate the throughput artifact, then summarize op -> MB/s + commit.
bench-json: bench-service
	pytest benchmarks/bench_throughput.py --benchmark-only -q
	python tools/bench_summary.py

# Deterministic service benchmark (BENCH_service.json at repo root): a
# seeded 100k-request zipfian replay through the archive service, reporting
# p50/p99/p999 latency and saturation throughput on simulated time.
# Byte-identical across same-seed runs (no date/commit fields).
bench-service:
	python tools/bench_service.py

# Benchmark ratchet: compare the current warm medians in
# BENCH_throughput.json against the best entry in its append-only history;
# fail on a >20% regression for any primitive.
bench-ratchet:
	python tools/bench_ratchet.py

# Regenerate the paper's three artifacts on stdout.
artifacts:
	python -m repro.analysis

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install lint lint-graph lint-threads test test-tiering racecheck bench bench-json bench-ratchet artifacts

clean:
	rm -rf build src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
