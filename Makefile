# Convenience targets for the repro library.

.PHONY: install test bench artifacts examples all clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate the paper's three artifacts on stdout.
artifacts:
	python -m repro.analysis

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench artifacts

clean:
	rm -rf build src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
