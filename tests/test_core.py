"""Core: classifier, trade-off analyzer, key manager, scheduler, planner,
policies, and the SecureArchive facade."""

import pytest

from repro.core import (
    ArchivePolicy,
    ConfidentialityTarget,
    EpochScheduler,
    KeyManager,
    ReencryptionPlanner,
    SecureArchive,
    SecurityClassifier,
    TradeoffAnalyzer,
)
from repro.core.policy import CENTURY_SAFE, CENTURY_SAFE_ECONOMY, PRACTICAL_COMPUTATIONAL
from repro.core.reencryption import ResponseKind
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.errors import DecodingError, KeyManagementError, ParameterError
from repro.security import SecurityLevel, SecurityNotion, StorageCostBand
from repro.storage.archive_model import PAPER_ARCHIVES
from repro.storage.node import make_node_fleet
from repro.systems import CloudProviderArchive, Lincos


class TestClassifier:
    def test_cloud_row(self):
        system = CloudProviderArchive(
            make_node_fleet(2, providers=["aws"]), DeterministicRandom(0)
        )
        system.store("x", b"data" * 100)
        row = SecurityClassifier().classify_system(system)
        assert row.transit is SecurityNotion.COMPUTATIONAL
        assert row.at_rest is SecurityNotion.COMPUTATIONAL
        assert row.storage_band is StorageCostBand.LOW

    def test_lincos_row(self):
        system = Lincos(make_node_fleet(5), DeterministicRandom(1))
        system.store("x", b"data" * 100)
        row = SecurityClassifier().classify_system(system)
        assert row.transit is SecurityNotion.INFORMATION_THEORETIC
        assert row.at_rest is SecurityNotion.INFORMATION_THEORETIC
        assert row.storage_band is StorageCostBand.HIGH

    def test_requires_stored_data(self):
        system = CloudProviderArchive(
            make_node_fleet(2, providers=["aws"]), DeterministicRandom(2)
        )
        with pytest.raises(ParameterError):
            SecurityClassifier().classify_system(system)

    def test_encoding_levels(self):
        classifier = SecurityClassifier()
        assert classifier.classify_encoding_level("shamir") is SecurityLevel.ITS_PERFECT
        assert classifier.classify_encoding_level("aes-256-ctr") is SecurityLevel.COMPUTATIONAL
        assert classifier.classify_encoding_level("md5") is SecurityLevel.BROKEN
        assert classifier.classify_encoding_level("not-registered") is SecurityLevel.NONE

    def test_declared_refinement_within_notion(self):
        classifier = SecurityClassifier()
        level = classifier.classify_encoding_level("lrss", SecurityLevel.ITS_CONDITIONAL)
        assert level is SecurityLevel.ITS_CONDITIONAL

    def test_row_render(self):
        system = CloudProviderArchive(
            make_node_fleet(2, providers=["aws"]), DeterministicRandom(3)
        )
        system.store("x", b"data")
        row = SecurityClassifier().classify_system(system, at_rest_note="note")
        rendered = row.as_row()
        assert rendered[0] == system.name and "note" in rendered[2]


class TestTradeoff:
    @pytest.fixture(scope="class")
    def points(self):
        return TradeoffAnalyzer(n=5, t=3).analyze(object_size=1 << 12, objects=2)

    def test_all_encodings_present(self, points):
        names = {p.name for p in points}
        assert names == {
            "replication", "erasure", "traditional-encryption", "aont-rs",
            "entropic", "packed", "shamir", "lrss",
        }

    def test_its_family_costs_more(self, points):
        by_name = {p.name: p for p in points}
        assert by_name["shamir"].storage_overhead > by_name["erasure"].storage_overhead
        assert by_name["packed"].storage_overhead < by_name["shamir"].storage_overhead

    def test_coordinates(self, points):
        for p in points:
            x, y = p.coordinates
            assert x == p.security_level.rank and y == p.storage_overhead

    def test_render_quadrant_mentions_all(self, points):
        art = TradeoffAnalyzer.render_quadrant(points)
        assert "Replication" in art and "Secret Sharing" in art


class TestKeyManager:
    def test_issue_and_current(self):
        manager = KeyManager(rng=DeterministicRandom(0))
        key = manager.issue("obj")
        assert manager.current("obj") is key
        assert key.cipher_name == "aes-256-ctr"

    def test_unknown_object(self):
        manager = KeyManager(rng=DeterministicRandom(1))
        with pytest.raises(KeyManagementError):
            manager.current("ghost")

    def test_rotation_retires_old(self):
        manager = KeyManager(rng=DeterministicRandom(2))
        old = manager.issue("obj")
        new = manager.rotate("obj")
        assert old.retired_epoch is not None and manager.current("obj") is new
        assert len(manager.history("obj")) == 2

    def test_history_bytes_grow(self):
        manager = KeyManager(rng=DeterministicRandom(3))
        manager.issue("obj")
        before = manager.history_bytes
        manager.rotate("obj")
        assert manager.history_bytes == before * 2

    def test_supersede_cipher_flags_and_rotates(self):
        manager = KeyManager(rng=DeterministicRandom(4))
        manager.issue("a")
        manager.issue("b", cipher_name="chacha20")
        timeline = BreakTimeline()
        timeline.schedule_break("aes-256-ctr", 5)
        manager.advance_epoch(6)
        exposed = manager.supersede_cipher(timeline, "chacha20")
        assert exposed == ["a"]
        assert manager.current("a").cipher_name == "chacha20"
        assert manager.history("a")[0].compromised

    def test_unknown_cipher_rejected(self):
        manager = KeyManager(rng=DeterministicRandom(5))
        with pytest.raises(ParameterError):
            manager.issue("obj", cipher_name="rot13")

    def test_epoch_monotone(self):
        manager = KeyManager(rng=DeterministicRandom(6))
        manager.advance_epoch(5)
        with pytest.raises(ParameterError):
            manager.advance_epoch(3)

    def test_vss_escrow_roundtrip(self):
        manager = KeyManager(rng=DeterministicRandom(7))
        manager.issue("obj")
        groups = manager.escrow_to_vss("obj", n=5, t=3)
        assert len(groups) == 3  # 32 bytes / 15-byte limbs
        for group in groups:
            group.renew(DeterministicRandom(8))
        assert manager.recover_from_vss(groups) == manager.current("obj").material


class TestScheduler:
    def test_recurring_actions_fire(self):
        scheduler = EpochScheduler(timeline=BreakTimeline())
        fired = []
        scheduler.every(3, "renewal", fired.append)
        scheduler.advance(9)
        assert fired == [3, 6, 9]

    def test_break_hooks_fire_once(self):
        timeline = BreakTimeline()
        timeline.schedule_break("aes-256-ctr", 4)
        scheduler = EpochScheduler(timeline=timeline)
        events = []
        scheduler.on_break(lambda e, names: events.append((e, tuple(names))))
        scheduler.advance(8)
        aes_events = [e for e in events if "aes-256-ctr" in e[1]]
        assert len(aes_events) == 1 and aes_events[0][0] == 4

    def test_years_conversion(self):
        scheduler = EpochScheduler(timeline=BreakTimeline(), years_per_epoch=2.5)
        scheduler.advance(4)
        assert scheduler.years == 10.0

    def test_invalid_cadence(self):
        scheduler = EpochScheduler(timeline=BreakTimeline())
        with pytest.raises(ParameterError):
            scheduler.every(0, "bad", lambda e: None)

    def test_log_records(self):
        timeline = BreakTimeline()
        timeline.schedule_break("chacha20", 2)
        scheduler = EpochScheduler(timeline=timeline)
        scheduler.every(1, "tick", lambda e: None)
        scheduler.advance(2)
        assert any("chacha20" in line for line in scheduler.log)
        assert any("tick" in line for line in scheduler.log)


class TestPlanner:
    def test_its_needs_nothing(self):
        planner = ReencryptionPlanner(PAPER_ARCHIVES[0])
        plan = planner.plan(at_rest_information_theoretic=True)
        assert plan.kind is ResponseKind.NONE_NEEDED
        assert plan.campaign_months == 0.0

    def test_cascade_wraps(self):
        planner = ReencryptionPlanner(PAPER_ARCHIVES[0])
        plan = planner.plan(False, cascade_layers_remaining=1)
        assert plan.kind is ResponseKind.WRAP
        assert not plan.harvested_data_recoverable_by_adversary
        assert plan.campaign_months > 20

    def test_plain_encryption_reencrypts_and_hndl_lost(self):
        planner = ReencryptionPlanner(PAPER_ARCHIVES[1])
        plan = planner.plan(False)
        assert plan.kind is ResponseKind.REENCRYPT
        assert plan.harvested_data_recoverable_by_adversary
        assert "RECOVERABLE" in plan.summary()

    def test_negative_layers_rejected(self):
        with pytest.raises(ParameterError):
            ReencryptionPlanner(PAPER_ARCHIVES[0]).plan(False, cascade_layers_remaining=-1)


class TestPolicies:
    def test_named_policies_valid(self):
        for policy in (PRACTICAL_COMPUTATIONAL, CENTURY_SAFE, CENTURY_SAFE_ECONOMY):
            assert policy.n >= policy.t

    def test_packed_needs_room(self):
        with pytest.raises(ParameterError):
            ArchivePolicy(
                target=ConfidentialityTarget.LONG_TERM_ECONOMY, n=4, t=3, pack_width=3
            )

    def test_information_theoretic_flag(self):
        assert CENTURY_SAFE.information_theoretic
        assert not PRACTICAL_COMPUTATIONAL.information_theoretic

    def test_cadence_validated(self):
        with pytest.raises(ParameterError):
            ArchivePolicy(
                target=ConfidentialityTarget.LONG_TERM, n=3, t=2, renew_every_epochs=0
            )


class TestSecureArchiveFacade:
    @pytest.mark.parametrize("target", list(ConfidentialityTarget))
    def test_roundtrip_all_targets(self, target):
        policy = ArchivePolicy(target=target, n=6, t=3, pack_width=2)
        archive = SecureArchive(policy, make_node_fleet(8), DeterministicRandom(0))
        data = DeterministicRandom(b"facade").bytes(1500)
        archive.store("doc", data)
        assert archive.retrieve("doc") == data

    def test_its_targets_classified_its(self):
        archive = SecureArchive(CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(1))
        archive.store("doc", b"x" * 100)
        assert archive.at_rest_security is SecurityNotion.INFORMATION_THEORETIC

    def test_computational_target_classified(self):
        archive = SecureArchive(
            PRACTICAL_COMPUTATIONAL, make_node_fleet(7), DeterministicRandom(2)
        )
        archive.store("doc", b"x" * 100)
        assert archive.at_rest_security is SecurityNotion.COMPUTATIONAL

    def test_maintenance_renews_and_chain_grows(self):
        archive = SecureArchive(CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(3))
        data = DeterministicRandom(b"m").bytes(400)
        archive.store("doc", data)
        chain_before = len(archive.chain)
        report = archive.advance_epoch()
        assert report.objects_renewed == 1 and report.renewal_bytes > 0
        assert report.chain_renewed and len(archive.chain) == chain_before + 1
        assert archive.retrieve("doc") == data

    def test_renewal_changes_node_payloads(self):
        archive = SecureArchive(CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(4))
        archive.store("doc", b"refresh me" * 10)
        before = archive.steal_at_rest("doc", share_indices=[1])
        archive.advance_epoch()
        after = archive.steal_at_rest("doc", share_indices=[1])
        assert before != after

    def test_computational_policy_skips_renewal(self):
        archive = SecureArchive(
            PRACTICAL_COMPUTATIONAL, make_node_fleet(7), DeterministicRandom(5)
        )
        archive.store("doc", b"static")
        report = archive.advance_epoch()
        assert report.objects_renewed == 0

    def test_its_theft_below_threshold_fails_forever(self):
        archive = SecureArchive(CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(6))
        archive.store("doc", b"sealed" * 50)
        stolen = archive.steal_at_rest("doc", share_indices=[1, 2])
        with pytest.raises(DecodingError):
            archive.attempt_recovery("doc", stolen, BreakTimeline(), epoch=10**9)

    def test_computational_hndl(self):
        archive = SecureArchive(
            PRACTICAL_COMPUTATIONAL, make_node_fleet(7), DeterministicRandom(7)
        )
        data = b"harvest target" * 20
        archive.store("doc", data)
        stolen = archive.steal_at_rest("doc", share_indices=[0])
        timeline = BreakTimeline()
        timeline.schedule_break("aes-256-ctr", 5)
        timeline.schedule_break("sha256", 8)
        from repro.errors import StillSecureError

        with pytest.raises(StillSecureError):
            archive.attempt_recovery("doc", stolen, timeline, epoch=6)
        assert archive.attempt_recovery("doc", stolen, timeline, epoch=9) == data

    def test_overheads_ordered_by_policy(self):
        overheads = {}
        for name, policy in (
            ("computational", PRACTICAL_COMPUTATIONAL),
            ("economy", CENTURY_SAFE_ECONOMY),
            ("full", CENTURY_SAFE),
        ):
            archive = SecureArchive(policy, make_node_fleet(9), DeterministicRandom(8))
            archive.store("doc", b"z" * 2000)
            overheads[name] = archive.storage_overhead()
        assert overheads["computational"] < overheads["economy"] < overheads["full"]
