"""Smoke-run every example script: they are part of the public surface."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    """Each example must run to completion (their internal asserts are the
    functional checks) and print something useful."""
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced almost no output"
