"""Proactive share renewal and verifiable secret redistribution."""

import pytest

from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError
from repro.secretsharing.proactive import ProactiveShareGroup
from repro.secretsharing.redistribution import redistribute
from repro.secretsharing.shamir import ShamirSecretSharing


@pytest.fixture
def group():
    rng = DeterministicRandom(b"proactive")
    scheme = ShamirSecretSharing(5, 3)
    secret = DeterministicRandom(b"secret-material").bytes(512)
    split = scheme.split(secret, rng)
    return scheme, secret, ProactiveShareGroup(scheme, split), rng


class TestRenewal:
    def test_secret_survives_many_renewals(self, group):
        scheme, secret, g, rng = group
        for _ in range(5):
            g.renew(rng)
            assert g.reconstruct() == secret

    def test_shares_actually_change(self, group):
        scheme, secret, g, rng = group
        before = g.share_of(1).share.payload
        g.renew(rng)
        assert g.share_of(1).share.payload != before

    def test_epoch_increments(self, group):
        scheme, secret, g, rng = group
        assert g.epoch == 0
        g.renew(rng)
        assert g.epoch == 1 and g.share_of(2).epoch == 1

    def test_message_count_is_n_squared(self, group):
        scheme, secret, g, rng = group
        report = g.renew(rng)
        assert report.messages == g.n * g.n

    def test_bytes_scale_with_share_size(self):
        rng = DeterministicRandom(0)
        scheme = ShamirSecretSharing(4, 2)
        for size in (100, 1000):
            split = scheme.split(bytes(size), rng)
            g = ProactiveShareGroup(scheme, split)
            report = g.renew(rng)
            assert report.bytes_sent == 16 * (size + 32)

    def test_stale_shares_are_useless(self, group):
        """The defense against the mobile adversary: shares from different
        epochs do not combine into the secret."""
        scheme, secret, g, rng = group
        old = [g.share_of(1), g.share_of(2)]
        g.renew(rng)
        new = [g.share_of(3)]
        wrong = g.try_reconstruct_mixed_epochs(old + new)
        assert wrong is not None and wrong != secret

    def test_same_epoch_threshold_still_wins(self, group):
        scheme, secret, g, rng = group
        g.renew(rng)
        haul = [g.share_of(i) for i in (1, 3, 5)]
        assert g.try_reconstruct_mixed_epochs(haul) == secret

    def test_below_threshold_returns_none(self, group):
        scheme, secret, g, rng = group
        assert g.try_reconstruct_mixed_epochs([g.share_of(1)]) is None

    def test_tampered_message_detected_and_secret_survives(self, group):
        scheme, secret, g, rng = group
        report = g.renew(rng, tamper={(2, 4): b"\x00" * 512})
        assert report.corrupted_messages_detected == 1
        assert g.reconstruct() == secret

    def test_multiple_tampered_senders_excluded(self, group):
        scheme, secret, g, rng = group
        report = g.renew(
            rng, tamper={(1, 2): b"\x00" * 512, (3, 4): b"\x01" * 512}
        )
        assert report.corrupted_messages_detected == 2
        assert g.reconstruct() == secret

    def test_scheme_mismatch_rejected(self):
        rng = DeterministicRandom(1)
        scheme_a = ShamirSecretSharing(5, 3)
        split = scheme_a.split(b"x", rng)
        object.__setattr__(split, "scheme", "other")
        with pytest.raises(ParameterError):
            ProactiveShareGroup(scheme_a, split)


class TestRedistribution:
    def test_change_parameters_preserves_secret(self):
        rng = DeterministicRandom(2)
        secret = rng.bytes(256)
        old = ShamirSecretSharing(5, 3)
        split = old.split(secret, rng)
        for new_n, new_t in ((7, 4), (4, 2), (5, 5), (9, 3)):
            new = ShamirSecretSharing(new_n, new_t)
            new_split, report = redistribute(old, list(split.shares), new, len(secret), rng)
            assert new.reconstruct(new_split) == secret
            assert report.messages == old.t * new_n

    def test_subset_of_old_shares_sufficient(self):
        rng = DeterministicRandom(3)
        secret = rng.bytes(64)
        old = ShamirSecretSharing(6, 3)
        split = old.split(secret, rng)
        subset = list(split.shares)[2:5]
        new = ShamirSecretSharing(4, 2)
        new_split, _ = redistribute(old, subset, new, len(secret), rng)
        assert new.reconstruct(new_split) == secret

    def test_too_few_old_shares_rejected(self):
        rng = DeterministicRandom(4)
        old = ShamirSecretSharing(5, 3)
        split = old.split(b"secret", rng)
        new = ShamirSecretSharing(4, 2)
        with pytest.raises(ParameterError):
            redistribute(old, list(split.shares)[:2], new, 6, rng)

    def test_old_and_new_shares_incompatible(self):
        """Shares across a redistribution boundary must not combine -- that
        is what expires a mobile adversary's pre-refresh haul."""
        rng = DeterministicRandom(5)
        secret = rng.bytes(64)
        old = ShamirSecretSharing(5, 3)
        split = old.split(secret, rng)
        new = ShamirSecretSharing(5, 3)
        new_split, _ = redistribute(old, list(split.shares), new, len(secret), rng)
        mixed = [split.shares[0], split.shares[1], new_split.shares[2]]
        assert old.reconstruct(mixed) != secret

    def test_bytes_accounting(self):
        rng = DeterministicRandom(6)
        secret = rng.bytes(100)
        old = ShamirSecretSharing(4, 2)
        split = old.split(secret, rng)
        new = ShamirSecretSharing(6, 3)
        _, report = redistribute(old, list(split.shares), new, len(secret), rng)
        # t old holders each send n' sub-shares of share-size + 32B tag.
        assert report.bytes_sent == 2 * 6 * (100 + 32)

    def test_report_parameters(self):
        rng = DeterministicRandom(7)
        old = ShamirSecretSharing(5, 3)
        split = old.split(b"params", rng)
        new = ShamirSecretSharing(7, 4)
        _, report = redistribute(old, list(split.shares), new, 6, rng)
        assert (report.old_n, report.old_t, report.new_n, report.new_t) == (5, 3, 7, 4)
