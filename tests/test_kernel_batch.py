"""Pin the batched GF(256) kernel, codec plan caches and batch ingest.

The tentpole refactor moved every codec's bulk path onto one kernel
(:func:`repro.gmath.kernel.gf256_matmul`) and cached the small codec
matrices.  Field arithmetic is exact, so these are *byte-identity*
properties: the kernel-based codecs must reproduce the pre-kernel
Horner/loop reference implementations bit for bit, across seeds, and
cache hits must never change an output.
"""

import numpy as np
import pytest

from repro import (
    ArchivePolicy,
    ConfidentialityTarget,
    DeterministicRandom,
    SecureArchive,
    make_node_fleet,
)
from repro.core.policy import CENTURY_SAFE
from repro.crypto.aes import _expand_key, aes_ctr_xor
from repro.errors import ParameterError
from repro.gmath.gf256 import GF256
from repro.gmath.kernel import (
    clear_plan_caches,
    gf256_matmul,
    lagrange_matrix_plan,
    plan_cache_info,
    rows_as_matrix,
    vandermonde_inverse_plan,
    vandermonde_plan,
)
from repro.gmath.poly import lagrange_basis_at
from repro.gmath.reedsolomon import ReedSolomonCode
from repro.secretsharing.packed import PackedSecretSharing
from repro.secretsharing.shamir import ShamirSecretSharing

SEEDS = [b"kernel-0", b"kernel-1", b"kernel-2"]


def _naive_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference product: scalar field ops, no tables, no vectorization."""
    m, k = a.shape
    _, width = b.shape
    out = np.zeros((m, width), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            for col in range(width):
                out[i, col] = GF256.add(
                    int(out[i, col]), GF256.mul(int(a[i, j]), int(b[j, col]))
                )
    return out


def _horner_eval(rows: list[np.ndarray], x: int) -> np.ndarray:
    """Pre-kernel reference: Horner evaluation of byte-row coefficients."""
    acc = np.zeros_like(rows[0])
    for row in reversed(rows):
        acc = GF256.scalar_mul_vec(x, acc) ^ row
    return acc


class TestKernel:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_naive_field_loop(self, seed):
        rng = DeterministicRandom(seed)
        m, k, width = 5, 4, 97
        a = rng.uint8_array(m * k).reshape(m, k)
        b = rng.uint8_array(k * width).reshape(k, width)
        assert np.array_equal(gf256_matmul(a, b), _naive_matmul(a, b))

    def test_zero_and_one_coefficients_short_circuit_exactly(self):
        rng = DeterministicRandom(b"shortcircuit")
        b = rng.uint8_array(3 * 64).reshape(3, 64)
        a = np.array([[0, 1, 2], [1, 1, 0], [0, 0, 0]], dtype=np.uint8)
        assert np.array_equal(gf256_matmul(a, b), _naive_matmul(a, b))

    def test_rejects_bad_shapes_and_dtypes(self):
        good = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(ParameterError):
            gf256_matmul(good, np.zeros((4, 5), dtype=np.uint8))
        with pytest.raises(ParameterError):
            gf256_matmul(good, np.zeros((3, 5), dtype=np.uint16))
        with pytest.raises(ParameterError):
            gf256_matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 5), dtype=np.uint8))

    def test_rows_as_matrix_passthrough_and_stack(self):
        matrix = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert rows_as_matrix(matrix) is matrix
        stacked = rows_as_matrix([matrix[0], matrix[1]])
        assert stacked.shape == (2, 4)
        with pytest.raises(ParameterError):
            rows_as_matrix([])


class TestShamirByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_split_matches_horner_reference(self, seed):
        scheme = ShamirSecretSharing(5, 3)
        data = DeterministicRandom(seed).bytes(601)
        split = scheme.split(data, DeterministicRandom(seed + b"-rng"))

        # Reference: identical rng stream, per-point Horner evaluation.
        rng = DeterministicRandom(seed + b"-rng")
        secret = np.frombuffer(data, dtype=np.uint8)
        randomness = rng.uint8_array((scheme.t - 1) * secret.size).reshape(
            scheme.t - 1, secret.size
        )
        rows = [secret] + [randomness[i] for i in range(scheme.t - 1)]
        for share in split.shares:
            expected = _horner_eval(rows, share.index)
            assert share.payload == expected.tobytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reconstruct_from_every_threshold_subset(self, seed):
        scheme = ShamirSecretSharing(5, 3)
        data = DeterministicRandom(seed).bytes(257)
        split = scheme.split(data, DeterministicRandom(seed + b"-rng"))
        shares = list(split.shares)
        for i in range(len(shares)):
            for j in range(i + 1, len(shares)):
                for k in range(j + 1, len(shares)):
                    subset = [shares[i], shares[j], shares[k]]
                    assert scheme.reconstruct(subset) == data

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shamir_is_nonsystematic_rs(self, seed):
        """McEliece-Sarwate: Shamir == non-systematic [n, t] RS applied to
        (secret, r_1, ..., r_{t-1}), still true on the kernel paths."""
        n, t = 6, 3
        scheme = ShamirSecretSharing(n, t)
        code = ReedSolomonCode(n, t)
        data = DeterministicRandom(seed).bytes(340)
        split = scheme.split(data, DeterministicRandom(seed + b"-rng"))

        rng = DeterministicRandom(seed + b"-rng")
        secret = np.frombuffer(data, dtype=np.uint8)
        randomness = rng.uint8_array((t - 1) * secret.size).reshape(t - 1, secret.size)
        rows = [secret] + [randomness[i] for i in range(t - 1)]
        shards = code.encode_nonsystematic(rows)
        for share, shard in zip(split.shares, shards):
            assert share.payload == shard.data
        recovered = code.decode_nonsystematic(shards[1 : t + 1])
        assert recovered[0].tobytes() == data


class TestReedSolomonByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parity_matches_lagrange_reference(self, seed):
        code = ReedSolomonCode(6, 4)
        data = DeterministicRandom(seed).bytes(4 * 300)
        shards = code.encode(data)
        rows = [np.frombuffer(s.data, dtype=np.uint8) for s in shards[:4]]
        for parity in shards[4:]:
            x = code.points[parity.index]
            expected = np.zeros_like(rows[0])
            for j, row in enumerate(rows):
                coefficient = lagrange_basis_at(GF256, code.points[:4], j, x)
                expected ^= GF256.scalar_mul_vec(coefficient, row)
            assert parity.data == expected.tobytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_decode_every_survivor_subset(self, seed):
        from itertools import combinations

        code = ReedSolomonCode(6, 4)
        data = DeterministicRandom(seed).bytes(1021)  # forces padding
        shards = code.encode(data)
        for subset in combinations(shards, 4):
            assert code.decode(list(subset), len(data)) == data


class TestPackedByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tail_shares_match_lagrange_reference(self, seed):
        scheme = PackedSecretSharing(n=8, t=2, k=4)
        data = DeterministicRandom(seed).bytes(997)
        split = scheme.split(data, DeterministicRandom(seed + b"-rng"))

        rng = DeterministicRandom(seed + b"-rng")
        chunk_rows, _ = scheme._chunk(data)
        random_rows = [rng.uint8_array(chunk_rows[0].size) for _ in range(scheme.t)]
        anchors = chunk_rows + random_rows
        shares = list(split.shares)
        for i in range(scheme.t):
            assert shares[i].payload == random_rows[i].tobytes()
        for share in shares[scheme.t :]:
            expected = np.zeros_like(anchors[0])
            for j, row in enumerate(anchors):
                coefficient = lagrange_basis_at(
                    GF256, scheme.anchor_points, j, share.index
                )
                expected ^= GF256.scalar_mul_vec(coefficient, row)
            assert share.payload == expected.tobytes()
        assert scheme.reconstruct(split) == data


class TestPlanCaches:
    def test_interleaved_codes_survivors_and_keys_stay_correct(self):
        """Cache correctness under an adversarial mix: different (n, k)
        parameters, different survivor sets and different AES keys
        interleaved so every lookup alternates hit/miss patterns."""
        from itertools import combinations

        clear_plan_caches()
        datasets = {
            (6, 4): DeterministicRandom(b"mix-a").bytes(800),
            (5, 3): DeterministicRandom(b"mix-b").bytes(799),
            (7, 2): DeterministicRandom(b"mix-c").bytes(251),
        }
        for _ in range(2):  # second pass is all cache hits
            for (n, k), data in datasets.items():
                code = ReedSolomonCode(n, k)
                shards = code.encode(data)
                for subset in list(combinations(shards, k))[:6]:
                    assert code.decode(list(subset), len(data)) == data
        info = plan_cache_info()
        assert info["lagrange_matrix_plan"]["hits"] > 0
        # The second pass never rebuilds a decode plan: every survivor-set
        # lookup lands in rs_decode_plan's cache (which is why the inverse
        # cache sees only the first-pass misses).
        assert info["rs_decode_plan"]["hits"] > 0
        assert info["vandermonde_inverse_plan"]["misses"] > 0

    def test_cached_plans_are_frozen_and_identical_across_calls(self):
        clear_plan_caches()
        first = vandermonde_plan((1, 2, 3), 3)
        again = vandermonde_plan((1, 2, 3), 3)
        assert first is again  # lru_cache returns the same frozen object
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 99
        inverse = vandermonde_inverse_plan((2, 4, 5), 3)
        assert not inverse.flags.writeable
        identity = gf256_matmul(
            vandermonde_plan((2, 4, 5), 3), rows_as_matrix(inverse)
        )
        assert np.array_equal(identity, np.eye(3, dtype=np.uint8))

    def test_lagrange_plan_is_pure_function_of_key(self):
        clear_plan_caches()
        plan = lagrange_matrix_plan((1, 3, 5), (0,))
        expected = [lagrange_basis_at(GF256, [1, 3, 5], j, 0) for j in range(3)]
        assert plan.tolist() == [expected]

    def test_aes_round_key_cache(self):
        keys = [bytes([i]) * 32 for i in range(4)]
        schedules = [_expand_key(key) for key in keys]
        for key, schedule in zip(keys, schedules):
            assert _expand_key(key) is schedule  # cache hit, same object
            assert not schedule.flags.writeable
        # Interleaved keys still encrypt/decrypt correctly.
        nonce = b"\x07" * 12
        plaintext = DeterministicRandom(b"aes-mix").bytes(1000)
        for key in keys + keys[::-1]:
            ciphertext = aes_ctr_xor(key, nonce, plaintext)
            assert aes_ctr_xor(key, nonce, ciphertext) == plaintext


class TestBatchIngest:
    def _archive(self, policy=CENTURY_SAFE, seed=0):
        return SecureArchive(policy, make_node_fleet(6), DeterministicRandom(seed))

    def test_store_batch_roundtrip_in_input_order(self):
        archive = self._archive()
        items = [
            (f"obj-{i}", DeterministicRandom(i).bytes(500 + 37 * i))
            for i in range(5)
        ]
        receipts = archive.store_batch(items)
        assert [r.object_id for r in receipts] == [oid for oid, _ in items]
        results = archive.retrieve_batch([oid for oid, _ in items])
        assert results == [data for _, data in items]
        # Single-object retrieve agrees with the batch path.
        assert archive.retrieve("obj-3") == items[3][1]

    def test_store_batch_rejects_duplicate_ids(self):
        archive = self._archive()
        with pytest.raises(ParameterError):
            archive.store_batch([("dup", b"a"), ("dup", b"b")])

    def test_batch_deterministic_across_identical_archives(self):
        """Two identically seeded archives batch-storing the same items end
        up with byte-identical shares: the parallel encode phase draws all
        randomness from sequentially derived child seeds, so thread
        scheduling cannot influence the outcome."""
        one, two = self._archive(seed=7), self._archive(seed=7)
        items = [
            (f"obj-{i}", DeterministicRandom(100 + i).bytes(777))
            for i in range(4)
        ]
        one.store_batch(items)
        two.store_batch(items)
        for object_id, _ in items:
            stolen_one = one.steal_at_rest(object_id)
            stolen_two = two.steal_at_rest(object_id)
            assert stolen_one == stolen_two

    def test_batch_metrics_histogram_recorded(self):
        from repro.obs import use_registry

        with use_registry() as registry:
            archive = self._archive()
            archive.store_batch([("a", b"x" * 100), ("b", b"y" * 100)])
            archive.retrieve_batch(["a", "b"])
            histograms = registry.snapshot()["histograms"]
        assert histograms["archive_batch_seconds{op=store}"]["count"] == 1
        assert histograms["archive_batch_seconds{op=retrieve}"]["count"] == 1

    def test_store_large_flows_through_batch(self):
        from repro.obs import use_registry

        with use_registry() as registry:
            archive = self._archive()
            data = DeterministicRandom(b"large").bytes(10_000)
            archive.store_large("doc", data, segment_bytes=3000)
            assert archive.retrieve_large("doc") == data
            counters = registry.snapshot()["counters"]
        assert counters["archive_ops_total{op=store_batch}"] == 1

    def test_shamir_policy_batch_roundtrip(self):
        policy = ArchivePolicy(
            target=ConfidentialityTarget.LONG_TERM, n=5, t=3
        )
        archive = self._archive(policy=policy, seed=3)
        items = [(f"its-{i}", DeterministicRandom(i).bytes(333)) for i in range(3)]
        archive.store_batch(items)
        assert archive.retrieve_batch([oid for oid, _ in items]) == [
            data for _, data in items
        ]
