"""Proxy re-encryption, hash combiners, lost-share recovery, and DKG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.combiners import CombinedHash, chacha_dm_hash
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.proxy import (
    ProxyReEncryption,
    apply_migration_pad,
    keystream_migration_pad,
)
from repro.crypto.registry import BreakTimeline
from repro.errors import KeyManagementError, ParameterError
from repro.secretsharing.dkg import DistributedKeyGeneration
from repro.secretsharing.proactive import ProactiveShareGroup
from repro.secretsharing.shamir import ShamirSecretSharing


@pytest.fixture
def rng():
    return DeterministicRandom(b"extensions")


class TestProxyReEncryption:
    def test_encrypt_decrypt(self, rng):
        pre = ProxyReEncryption()
        alice = pre.generate_keypair(rng)
        ct = pre.encrypt(alice.public, b"delegate me", rng)
        assert pre.decrypt(alice, ct) == b"delegate me"

    def test_wrong_key_garbles(self, rng):
        pre = ProxyReEncryption()
        alice = pre.generate_keypair(rng)
        bob = pre.generate_keypair(rng)
        ct = pre.encrypt(alice.public, b"for alice only", rng)
        assert pre.decrypt(bob, ct) != b"for alice only"

    def test_reencryption_hop(self, rng):
        pre = ProxyReEncryption()
        alice = pre.generate_keypair(rng)
        bob = pre.generate_keypair(rng)
        ct = pre.encrypt(alice.public, b"rotate ownership", rng)
        rekey = pre.rekey(alice, bob)
        ct_bob = pre.reencrypt(rekey, ct)
        assert pre.decrypt(bob, ct_bob) == b"rotate ownership"
        # Alice can no longer decrypt the transformed capsule.
        assert pre.decrypt(alice, ct_bob) != b"rotate ownership"

    def test_proxy_never_sees_plaintext_or_key(self, rng):
        """The re-encrypted body is bit-identical to the stored body: the
        proxy transformed only the capsule."""
        pre = ProxyReEncryption()
        alice = pre.generate_keypair(rng)
        bob = pre.generate_keypair(rng)
        ct = pre.encrypt(alice.public, b"opaque to the proxy", rng)
        ct_bob = pre.reencrypt(pre.rekey(alice, bob), ct)
        assert ct_bob.body == ct.body
        assert ct_bob.capsule != ct.capsule

    def test_single_hop_enforced(self, rng):
        pre = ProxyReEncryption()
        alice, bob, carol = (pre.generate_keypair(rng) for _ in range(3))
        ct = pre.encrypt(alice.public, b"one hop only", rng)
        once = pre.reencrypt(pre.rekey(alice, bob), ct)
        with pytest.raises(KeyManagementError):
            pre.reencrypt(pre.rekey(bob, carol), once)

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_arbitrary_payloads(self, payload):
        rng = DeterministicRandom(len(payload))
        pre = ProxyReEncryption()
        keys = pre.generate_keypair(rng)
        assert pre.decrypt(keys, pre.encrypt(keys.public, payload, rng)) == payload


class TestMigrationPad:
    def test_migrates_between_keys(self):
        old_key, new_key = b"\x01" * 32, b"\x02" * 32
        data = b"stored under the old cipher" * 10
        old_ct = chacha20_xor(old_key, b"\x00" * 12, data)
        pad = keystream_migration_pad(old_key, new_key, len(old_ct))
        new_ct = apply_migration_pad(old_ct, pad)
        assert chacha20_xor(new_key, b"\x00" * 12, new_ct) == data

    def test_pad_is_plaintext_independent(self):
        pad_a = keystream_migration_pad(b"\x01" * 32, b"\x02" * 32, 64)
        pad_b = keystream_migration_pad(b"\x01" * 32, b"\x02" * 32, 64)
        assert pad_a == pad_b  # derived from keys alone

    def test_pad_size_equals_data_size(self):
        """The paper's point survives delegation: pad bytes == data bytes."""
        assert len(keystream_migration_pad(b"\x01" * 32, b"\x02" * 32, 12345)) == 12345

    def test_short_pad_rejected(self):
        with pytest.raises(ParameterError):
            apply_migration_pad(b"\x00" * 10, b"\x00" * 5)

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            keystream_migration_pad(b"\x01" * 32, b"\x02" * 32, -1)


class TestCombinedHash:
    def test_deterministic(self):
        assert chacha_dm_hash(b"abc") == chacha_dm_hash(b"abc")
        assert CombinedHash.digest(b"abc") == CombinedHash.digest(b"abc")

    def test_distinct_inputs_distinct_digests(self):
        seen = {chacha_dm_hash(bytes([i])) for i in range(256)}
        assert len(seen) == 256

    def test_length_extension_padding(self):
        """Strengthened padding: prefixes do not collide with extensions."""
        assert chacha_dm_hash(b"aa") != chacha_dm_hash(b"aa\x00")
        assert chacha_dm_hash(b"") != chacha_dm_hash(b"\x80")

    def test_digest_is_64_bytes(self):
        assert len(CombinedHash.digest(b"x")) == 64

    def test_members_differ(self):
        digest = CombinedHash.digest(b"independence")
        assert digest[:32] != digest[32:]

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_avalanche_rough(self, data):
        base = chacha_dm_hash(data)
        flipped = chacha_dm_hash(data + b"\x01")
        differing = np.unpackbits(
            np.frombuffer(bytes(a ^ b for a, b in zip(base, flipped)), dtype=np.uint8)
        ).sum()
        assert differing > 64  # ~128 expected of 256 bits

    def test_combiner_survival(self):
        timeline = BreakTimeline()
        assert CombinedHash.collision_resistant_at(timeline, 100)
        timeline.schedule_break("sha256", 10)
        assert CombinedHash.collision_resistant_at(timeline, 50)
        timeline.schedule_break("chacha-dm", 60)
        assert not CombinedHash.collision_resistant_at(timeline, 60)


class TestShareRecovery:
    def make_group(self, n=5, t=3):
        rng = DeterministicRandom(b"recovery")
        scheme = ShamirSecretSharing(n, t)
        secret = DeterministicRandom(b"the secret").bytes(256)
        group = ProactiveShareGroup(scheme, scheme.split(secret, rng))
        return scheme, secret, group, rng

    def test_recovered_share_is_correct(self):
        scheme, secret, group, rng = self.make_group()
        original = group.share_of(4).share.payload
        group._holders[4].payload = np.zeros(256, dtype=np.uint8)  # crash
        report = group.recover_share(4, rng)
        assert group.share_of(4).share.payload == original
        assert 4 not in report.helpers

    def test_group_still_reconstructs(self):
        scheme, secret, group, rng = self.make_group()
        group._holders[2].payload = np.zeros(256, dtype=np.uint8)
        group.recover_share(2, rng)
        assert group.reconstruct() == secret

    def test_contributions_are_blinded(self):
        """No single helper's message reveals its share: each contribution
        is masked to uniformity (mean test over fresh runs)."""
        means = []
        for trial in range(30):
            scheme, secret, group, _ = self.make_group()
            rng = DeterministicRandom(trial)
            report = group.recover_share(1, rng)
            first_contribution = next(iter(report.contributions.values()))
            means.append(
                np.frombuffer(first_contribution, dtype=np.uint8).mean()
            )
        assert abs(np.mean(means) - 127.5) < 6.0

    def test_traffic_accounting(self):
        scheme, secret, group, rng = self.make_group()
        report = group.recover_share(3, rng)
        # t contributions + t*(t-1)/2 pad exchanges, all share-sized.
        assert report.messages == 3 + 3
        assert report.bytes_sent == (3 + 3) * 256

    def test_unknown_index_rejected(self):
        scheme, secret, group, rng = self.make_group()
        with pytest.raises(ParameterError):
            group.recover_share(99, rng)

    def test_recovery_after_renewal(self):
        scheme, secret, group, rng = self.make_group()
        group.renew(rng)
        expected = group.share_of(5).share.payload
        group._holders[5].payload = np.zeros(256, dtype=np.uint8)
        group.recover_share(5, rng)
        assert group.share_of(5).share.payload == expected


class TestDkg:
    def test_honest_run(self, rng):
        dkg = DistributedKeyGeneration(5, 3)
        result = dkg.run(rng)
        assert len(result.qualified) == 5 and not result.disqualified
        secret = result.reconstruct_for_test(dkg.vss)
        assert secret == dkg._expected_secret_for_test

    def test_shares_verify_against_combined_commitments(self, rng):
        dkg = DistributedKeyGeneration(4, 2)
        result = dkg.run(rng)
        for share in result.shares.values():
            assert dkg.vss.verify_share(share, result.commitments)

    def test_corrupt_dealers_disqualified(self, rng):
        dkg = DistributedKeyGeneration(5, 3)
        result = dkg.run(rng, corrupt_dealers={2, 4})
        assert set(result.disqualified) == {2, 4}
        assert result.reconstruct_for_test(dkg.vss) == dkg._expected_secret_for_test

    def test_subset_reconstruction(self, rng):
        dkg = DistributedKeyGeneration(6, 3)
        result = dkg.run(rng)
        subset = [result.shares[i] for i in (2, 4, 6)]
        assert dkg.vss.reconstruct(subset) == dkg._expected_secret_for_test

    def test_all_corrupt_fails(self, rng):
        dkg = DistributedKeyGeneration(3, 2)
        with pytest.raises(ParameterError):
            dkg.run(rng, corrupt_dealers={1, 2, 3})

    def test_parameters_validated(self):
        with pytest.raises(ParameterError):
            DistributedKeyGeneration(3, 4)
