"""The policy advisor and proactive renewal for packed sharing."""

import numpy as np
import pytest

from repro.core.advisor import Requirements, recommend
from repro.core.policy import ConfidentialityTarget
from repro.crypto.drbg import DeterministicRandom
from repro.errors import ParameterError
from repro.secretsharing.base import Share
from repro.secretsharing.packed import PackedSecretSharing


class TestAdvisor:
    def test_short_horizon_gets_aont_rs(self):
        rec = recommend(
            Requirements(
                confidentiality_years=10,
                max_storage_overhead=2.0,
                min_loss_tolerance=2,
                providers=6,
            )
        )
        assert rec.feasible
        assert rec.policy.target is ConfidentialityTarget.COMPUTATIONAL
        assert rec.policy.n == 6 and rec.policy.t == 4

    def test_century_horizon_gets_its(self):
        rec = recommend(
            Requirements(
                confidentiality_years=100,
                max_storage_overhead=6.0,
                providers=5,
            )
        )
        assert rec.feasible
        assert rec.policy.target is ConfidentialityTarget.LONG_TERM
        assert "obsolescence" in rec.explain()

    def test_tight_budget_century_gets_packed(self):
        rec = recommend(
            Requirements(
                confidentiality_years=100,
                max_storage_overhead=4.0,
                min_loss_tolerance=1,
                providers=8,
            )
        )
        assert rec.feasible
        assert rec.policy.target is ConfidentialityTarget.LONG_TERM_ECONOMY
        assert rec.policy.pack_width >= 2

    def test_impossible_budget_reports_conflict(self):
        """The paper's trade-off, hit exactly: century confidentiality at
        replication-free cost does not exist."""
        rec = recommend(
            Requirements(
                confidentiality_years=100,
                max_storage_overhead=1.2,
                providers=6,
            )
        )
        assert not rec.feasible
        assert rec.conflicts
        assert "intractable" in rec.explain()

    def test_leakage_requirement_gets_lrss(self):
        rec = recommend(
            Requirements(
                confidentiality_years=100,
                max_storage_overhead=8.0,
                providers=5,
                leakage_resilience=True,
            )
        )
        assert rec.feasible
        assert rec.policy.target is ConfidentialityTarget.LONG_TERM_LEAKAGE_HARDENED

    def test_leakage_with_tight_budget_conflicts(self):
        rec = recommend(
            Requirements(
                confidentiality_years=100,
                max_storage_overhead=3.0,
                providers=5,
                leakage_resilience=True,
            )
        )
        assert not rec.feasible

    def test_computational_budget_conflict(self):
        rec = recommend(
            Requirements(
                confidentiality_years=5,
                max_storage_overhead=1.05,
                min_loss_tolerance=3,
                providers=6,
            )
        )
        assert not rec.feasible  # n/k = 2.0 > 1.05

    def test_requirements_validated(self):
        with pytest.raises(ParameterError):
            Requirements(confidentiality_years=0, max_storage_overhead=2)
        with pytest.raises(ParameterError):
            Requirements(confidentiality_years=1, max_storage_overhead=0.5)
        with pytest.raises(ParameterError):
            Requirements(
                confidentiality_years=1, max_storage_overhead=2, providers=1
            )
        with pytest.raises(ParameterError):
            Requirements(
                confidentiality_years=1,
                max_storage_overhead=2,
                providers=4,
                min_loss_tolerance=4,
            )

    def test_recommended_policies_actually_work(self):
        """End-to-end sanity: every feasible recommendation builds a
        working archive within its own promises."""
        from repro import SecureArchive, make_node_fleet

        cases = [
            Requirements(confidentiality_years=10, max_storage_overhead=2.0, providers=6),
            Requirements(confidentiality_years=100, max_storage_overhead=6.0, providers=5),
            Requirements(confidentiality_years=100, max_storage_overhead=4.0, providers=8),
        ]
        data = DeterministicRandom(b"advisor").bytes(3000)
        for i, requirements in enumerate(cases):
            rec = recommend(requirements)
            assert rec.feasible
            archive = SecureArchive(
                rec.policy, make_node_fleet(requirements.providers + 2),
                DeterministicRandom(i),
            )
            archive.store("doc", data)
            assert archive.retrieve("doc") == data
            assert (
                archive.storage_overhead()
                <= requirements.max_storage_overhead * 1.1 + 0.1
            )


class TestPackedRenewal:
    def make(self):
        return PackedSecretSharing(n=8, t=2, k=3)

    def test_delta_vanishes_at_all_secret_points(self):
        scheme = self.make()
        rng = DeterministicRandom(0)
        delta_rows = scheme.renewal_delta_rows(16, rng)
        from repro.gmath.gf256 import GF256

        for secret_point in scheme.secret_points:
            value = GF256.poly_eval_vec(delta_rows, secret_point)
            assert not value.any(), f"delta does not vanish at {secret_point}"

    def test_delta_degree_matches_scheme(self):
        scheme = self.make()
        delta_rows = scheme.renewal_delta_rows(4, DeterministicRandom(1))
        assert len(delta_rows) == scheme.t + scheme.k  # degree t+k-1

    def test_renewal_preserves_all_secrets(self):
        scheme = self.make()
        rng = DeterministicRandom(2)
        data = rng.bytes(300)
        split = scheme.split(data, rng)
        delta_rows = scheme.renewal_delta_rows(len(split.shares[0].payload), rng)
        renewed = [
            Share(
                scheme="packed",
                index=s.index,
                payload=(
                    np.frombuffer(s.payload, dtype=np.uint8)
                    ^ scheme.evaluate_delta(delta_rows, s.index)
                ).tobytes(),
            )
            for s in split.shares
        ]
        assert scheme.reconstruct(renewed, original_length=len(data)) == data

    def test_renewal_changes_shares(self):
        scheme = self.make()
        rng = DeterministicRandom(3)
        split = scheme.split(b"refresh packed" * 10, rng)
        delta_rows = scheme.renewal_delta_rows(len(split.shares[0].payload), rng)
        delta_at_1 = scheme.evaluate_delta(delta_rows, 1)
        assert delta_at_1.any(), "delta must actually perturb shares"

    def test_mixed_generations_do_not_combine(self):
        scheme = self.make()
        rng = DeterministicRandom(4)
        data = rng.bytes(64)
        split = scheme.split(data, rng)
        delta_rows = scheme.renewal_delta_rows(len(split.shares[0].payload), rng)
        renewed = []
        for s in split.shares:
            renewed.append(
                Share(
                    scheme="packed",
                    index=s.index,
                    payload=(
                        np.frombuffer(s.payload, dtype=np.uint8)
                        ^ scheme.evaluate_delta(delta_rows, s.index)
                    ).tobytes(),
                )
            )
        mixed = list(split.shares)[:3] + renewed[3:5]
        recovered = scheme.reconstruct(mixed, original_length=len(data))
        assert recovered != data

    def test_evaluate_delta_rejects_foreign_point(self):
        scheme = self.make()
        delta_rows = scheme.renewal_delta_rows(4, DeterministicRandom(5))
        with pytest.raises(ParameterError):
            scheme.evaluate_delta(delta_rows, 255)
