"""Correlated-failure availability and timestamp-chain serialization."""

import pytest

from repro.analysis.availability import (
    EncodingAvailability,
    correlated_availability,
)
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.errors import IntegrityError, ParameterError
from repro.integrity.auditor import ChainAuditor
from repro.integrity.timestamp import (
    MerkleChainSigner,
    RsaChainSigner,
    TimestampAuthority,
    TimestampChain,
    deserialize_chain,
    serialize_chain,
)


class TestCorrelatedAvailability:
    def test_matches_independent_when_one_share_per_provider(self):
        encoding = EncodingAvailability("shamir", 5, 3)
        independent = encoding.availability(0.2)
        correlated = correlated_availability(encoding, providers=5, provider_failure_probability=0.2)
        assert correlated == pytest.approx(independent)

    def test_fewer_providers_hurt(self):
        """POTSHARDS' requirement, quantified: the same (5,3) encoding on 2
        providers loses most of its failure tolerance."""
        encoding = EncodingAvailability("shamir", 5, 3)
        five = correlated_availability(encoding, 5, 0.2)
        two = correlated_availability(encoding, 2, 0.2)
        assert two < five

    def test_single_provider_is_all_or_nothing(self):
        encoding = EncodingAvailability("shamir", 5, 3)
        assert correlated_availability(encoding, 1, 0.2) == pytest.approx(0.8)

    def test_two_providers_threshold_math(self):
        # (5,3) over 2 providers: provider0 holds 3 shares, provider1 holds 2.
        # Readable iff provider0 is up (3 >= 3) -- provider1 alone has only 2.
        encoding = EncodingAvailability("shamir", 5, 3)
        p_fail = 0.3
        expected = (1 - p_fail)  # provider0 up
        assert correlated_availability(encoding, 2, p_fail) == pytest.approx(expected)

    def test_parameters_validated(self):
        encoding = EncodingAvailability("x", 4, 2)
        with pytest.raises(ParameterError):
            correlated_availability(encoding, 0, 0.5)
        with pytest.raises(ParameterError):
            correlated_availability(encoding, 2, 1.5)


class TestChainSerialization:
    @pytest.fixture
    def signers(self):
        rng = DeterministicRandom(b"serialize")
        return RsaChainSigner(rng), MerkleChainSigner(rng, height=3)

    def build_chain(self, signers):
        rsa, merkle = signers
        chain = TimestampChain()
        TimestampAuthority(rsa).timestamp_document(chain, b"doc one", epoch=0)
        TimestampAuthority(rsa).timestamp_document(chain, b"doc two", epoch=1)
        TimestampAuthority(merkle).renew_chain(chain, epoch=5)
        return chain

    def test_roundtrip_preserves_links(self, signers):
        chain = self.build_chain(signers)
        restored = deserialize_chain(serialize_chain(chain))
        assert len(restored) == len(chain)
        for original, loaded in zip(chain.links, restored.links):
            assert original == loaded

    def test_restored_chain_still_audits(self, signers):
        rsa, merkle = signers
        chain = self.build_chain(signers)
        restored = deserialize_chain(serialize_chain(chain))
        auditor = ChainAuditor({})
        auditor.register(rsa)
        auditor.register(merkle)
        assert auditor.audit(restored, BreakTimeline(), now_epoch=6).valid

    def test_tampered_serialization_rejected(self, signers):
        chain = self.build_chain(signers)
        blob = serialize_chain(chain)
        tampered = blob.replace('"epoch": 1', '"epoch": 2', 1)
        with pytest.raises(IntegrityError):
            deserialize_chain(tampered)  # linkage breaks on load

    def test_malformed_json_rejected(self):
        with pytest.raises(IntegrityError):
            deserialize_chain("{not json")

    def test_unknown_format_rejected(self):
        with pytest.raises(IntegrityError):
            deserialize_chain('{"format": "something-else", "links": []}')

    def test_empty_chain_roundtrip(self):
        restored = deserialize_chain(serialize_chain(TimestampChain()))
        assert len(restored) == 0