"""Cross-module integration scenarios: the paper's arguments, end to end."""


from repro.adversary.harvest import HarvestingAdversary
from repro.adversary.mobile import MobileAdversary, run_mobile_campaign
from repro.core import ArchivePolicy, ConfidentialityTarget, EpochScheduler, SecureArchive
from repro.core.policy import CENTURY_SAFE, PRACTICAL_COMPUTATIONAL
from repro.crypto.drbg import DeterministicRandom
from repro.crypto.registry import BreakTimeline
from repro.integrity import ChainAuditor
from repro.integrity.timestamp import MerkleChainSigner, RsaChainSigner, TimestampAuthority, TimestampChain
from repro.secretsharing.proactive import ProactiveShareGroup
from repro.secretsharing.shamir import ShamirSecretSharing
from repro.storage.node import make_node_fleet
from repro.systems import ArchiveSafeLT, CloudProviderArchive, Lincos


class TestHndlEndToEnd:
    """Section 1's motivating attack, across the whole stack."""

    def test_cloud_falls_lincos_survives(self):
        timeline = BreakTimeline()
        timeline.schedule_break("aes-256-ctr", 15)
        timeline.schedule_break("toy-dh", 15)
        timeline.schedule_break("chacha20", 15)

        secret_record = b"patient record: highly sensitive" * 4
        cloud = CloudProviderArchive(
            make_node_fleet(2, providers=["aws"]), DeterministicRandom(0)
        )
        lincos = Lincos(make_node_fleet(5), DeterministicRandom(1))
        cloud.store("record", secret_record)
        lincos.store("record", secret_record)

        adversary = HarvestingAdversary(timeline=timeline)
        cloud_haul = cloud.steal_at_rest("record")
        lincos_haul = lincos.steal_at_rest("record", share_indices=[1, 2])
        adversary.harvest(
            "cloud", 0, lambda tl, e: cloud.attempt_recovery("record", cloud_haul, tl, e)
        )
        adversary.harvest(
            "lincos", 0, lambda tl, e: lincos.attempt_recovery("record", lincos_haul, tl, e)
        )

        assert adversary.first_success_epoch("cloud", horizon=30) == 15
        assert adversary.first_success_epoch("lincos", horizon=300) is None

    def test_wire_harvest_tls_vs_qkd(self):
        timeline = BreakTimeline()
        timeline.schedule_break("toy-dh", 10)
        timeline.schedule_break("chacha20", 10)

        cloud = CloudProviderArchive(
            make_node_fleet(2, providers=["aws"]), DeterministicRandom(2)
        )
        lincos = Lincos(make_node_fleet(5), DeterministicRandom(3))
        cloud.store("doc", b"over the wire")
        lincos.store("doc", b"over the wire")

        adversary = HarvestingAdversary(timeline=timeline)
        cloud_wire = cloud.transcript[0].transmission
        lincos_wire = lincos.transcript[0].transmission
        adversary.harvest(
            "tls-wire", 0, lambda tl, e: cloud.transit.break_open(cloud_wire, tl, e)
        )
        adversary.harvest(
            "qkd-wire", 0, lambda tl, e: lincos.transit.break_open(lincos_wire, tl, e)
        )
        assert adversary.first_success_epoch("tls-wire", horizon=20) == 10
        assert adversary.first_success_epoch("qkd-wire", horizon=1000) is None


class TestMobileVsProactiveFullStack:
    def test_renewal_cadence_sweep(self):
        """The proactive-sharing claim: cadence <= budget window defends."""
        scheme = ShamirSecretSharing(5, 3)
        secret = DeterministicRandom(b"century secret").bytes(64)
        outcomes = {}
        for cadence in (None, 1, 4):
            group = ProactiveShareGroup(
                scheme, scheme.split(secret, DeterministicRandom(0))
            )
            adversary = MobileAdversary(budget=1, rng=DeterministicRandom(1))
            outcome = run_mobile_campaign(
                group, adversary, epochs=12, renew_every=cadence,
                rng=DeterministicRandom(2),
            )
            outcomes[cadence] = outcome.compromised
        assert outcomes[None] is True
        assert outcomes[4] is True  # cadence slower than accumulation window
        assert outcomes[1] is False


class TestObsolescenceResponse:
    def test_archivesafelt_wrap_campaign_with_scheduler(self):
        """Scheduler detects the break; ArchiveSafeLT wraps in response."""
        timeline = BreakTimeline()
        timeline.schedule_break("aes-256-ctr", 3)
        system = ArchiveSafeLT(
            make_node_fleet(2, providers=["org"]), DeterministicRandom(4)
        )
        data = DeterministicRandom(b"wrapped").bytes(600)
        system.store("doc", data)

        scheduler = EpochScheduler(timeline=timeline)
        wrap_reports = []

        def respond(epoch, names):
            report = system.respond_to_break(timeline, epoch)
            if report:
                wrap_reports.append(report)

        scheduler.on_break(respond)
        scheduler.advance(5)
        assert len(wrap_reports) == 1
        assert system.retrieve("doc") == data
        assert len(system.receipt("doc").metadata["layers"]) == 3

    def test_chain_renewal_race(self):
        """Integrity chain renewed before the signer breaks stays valid; an
        identical chain renewed after does not."""
        rng = DeterministicRandom(5)
        rsa = RsaChainSigner(rng)
        merkle = MerkleChainSigner(rng, height=3)
        auditor = ChainAuditor({})
        auditor.register(rsa)
        auditor.register(merkle)
        timeline = BreakTimeline()
        timeline.schedule_break("toy-rsa", 10)

        def build(renew_epoch):
            chain = TimestampChain()
            TimestampAuthority(rsa).timestamp_document(chain, b"deed", epoch=0)
            TimestampAuthority(merkle).renew_chain(chain, epoch=renew_epoch)
            return chain

        assert auditor.audit(build(9), timeline, now_epoch=20).valid
        assert not auditor.audit(build(11), timeline, now_epoch=20).valid


class TestFacadeLongRun:
    def test_thirty_epochs_of_maintenance(self):
        archive = SecureArchive(
            CENTURY_SAFE, make_node_fleet(6), DeterministicRandom(6)
        )
        data = DeterministicRandom(b"longrun").bytes(800)
        archive.store("doc", data)
        total_renewal_bytes = 0
        for _ in range(30):
            report = archive.advance_epoch()
            total_renewal_bytes += report.renewal_bytes
        assert archive.retrieve("doc") == data
        assert total_renewal_bytes == 30 * 5 * 800  # n shares x object, each epoch
        assert len(archive.chain) == 31

    def test_mixed_policy_fleet_comparison(self):
        """The trade-off, measured on the facade itself: same data, same
        nodes, different policy, different (cost, security) point."""
        data = DeterministicRandom(b"compare").bytes(1000)
        results = {}
        for label, policy in (
            ("cheap", PRACTICAL_COMPUTATIONAL),
            ("safe", CENTURY_SAFE),
        ):
            archive = SecureArchive(policy, make_node_fleet(8), DeterministicRandom(7))
            archive.store("doc", data)
            results[label] = (
                archive.storage_overhead(),
                archive.at_rest_security.value,
            )
        assert results["cheap"][0] < results["safe"][0]
        assert results["cheap"][1] == "computational"
        assert results["safe"][1] == "information-theoretic"

    def test_paper_conclusion_no_cheap_its(self):
        """No facade policy gives ITS at rest below 2x overhead -- the
        trade-off the paper calls 'seemingly intractable'."""
        data = b"z" * 1000
        for target in ConfidentialityTarget:
            policy = ArchivePolicy(target=target, n=6, t=3, pack_width=2)
            archive = SecureArchive(policy, make_node_fleet(8), DeterministicRandom(8))
            archive.store("doc", data)
            if archive.at_rest_security.value == "information-theoretic":
                assert archive.storage_overhead() >= 2.0
